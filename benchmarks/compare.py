#!/usr/bin/env python
"""Gate on canonical ``BENCH_*.json`` records.

Usage::

    # Re-check a record's own gates (e.g. the >=5x vectorized speedup):
    python benchmarks/compare.py BENCH_inference.json

    # Additionally compare time-like metrics against a committed baseline,
    # failing on regressions beyond the threshold (default 25%):
    python benchmarks/compare.py BENCH_inference.json \
        --baseline baselines/BENCH_inference.json --max-regression 0.25

Exit status: 0 all gates pass, 1 at least one failure, 2 usage error.
Records are produced by ``pytest -m bench`` (see benchmarks/conftest.py).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.benchmarking import BenchRecord, GateFailure  # noqa: E402


def _print_failures(kind: str, failures: list[GateFailure]) -> None:
    for failure in failures:
        print(f"FAIL [{kind}] {failure.message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--baseline",
        help="baseline BENCH_*.json to compare time-like metrics against",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs. the baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-baseline",
        type=float,
        default=None,
        help=(
            "skip regression checks for baseline wall times below this many "
            "seconds (default: repro.benchmarking.MIN_COMPARABLE_BASELINE_S; "
            "sub-threshold timings are noise across machines)"
        ),
    )
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"baseline {args.baseline!r} does not exist", file=sys.stderr)
            return 2
        baseline = BenchRecord.load(args.baseline)

    failed = False
    for record_path in args.records:
        if not Path(record_path).exists():
            print(f"record {record_path!r} does not exist", file=sys.stderr)
            return 2
        record = BenchRecord.load(record_path)
        gate_failures = record.check_gates()
        _print_failures("gate", gate_failures)
        regression_failures = []
        if baseline is not None:
            kwargs = {"max_regression": args.max_regression}
            if args.min_baseline is not None:
                kwargs["min_baseline"] = args.min_baseline
            regression_failures = record.check_regressions(baseline, **kwargs)
            _print_failures("regression", regression_failures)
        if gate_failures or regression_failures:
            failed = True
        else:
            checked = len(record.gates) + (len(record.entries) if baseline else 0)
            print(f"OK {record_path}: {len(record.gates)} gate(s) pass ({checked} checks)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
