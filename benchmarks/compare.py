#!/usr/bin/env python
"""Gate on canonical ``BENCH_*.json`` records.

Usage::

    # Re-check a record's own gates (e.g. the >=5x vectorized speedup):
    python benchmarks/compare.py BENCH_inference.json

    # Additionally compare time-like metrics against a committed baseline,
    # failing on regressions beyond the threshold (default 25%):
    python benchmarks/compare.py BENCH_inference.json \
        --baseline baselines/BENCH_inference.json --max-regression 0.25

    # Gate several records in one invocation, each against the baseline of
    # the same filename under the given directory (records without a
    # committed baseline are checked against their own gates only):
    python benchmarks/compare.py BENCH_*.json \
        --baseline-dir benchmarks/baselines --max-regression 1.0

Exit status: 0 all gates pass, 1 at least one failure, 2 usage error.
``--baseline`` pairs one baseline with one record; passing it alongside
multiple records is a usage error (every record would be gated against the
same — wrong — baseline).  Records are produced by ``pytest -m bench``
(see benchmarks/conftest.py).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a source checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.benchmarking import BenchRecord, GateFailure  # noqa: E402


def _print_failures(kind: str, failures: list[GateFailure]) -> None:
    for failure in failures:
        print(f"FAIL [{kind}] {failure.message}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("records", nargs="+", help="BENCH_*.json files to check")
    parser.add_argument(
        "--baseline",
        help=(
            "baseline BENCH_*.json to compare time-like metrics against "
            "(single record only; use --baseline-dir for several records)"
        ),
    )
    parser.add_argument(
        "--baseline-dir",
        help=(
            "directory of committed baselines; each record is compared "
            "against the file of the same name under it, records without "
            "one are gate-checked only"
        ),
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown vs. the baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-baseline",
        type=float,
        default=None,
        help=(
            "skip regression checks for baseline wall times below this many "
            "seconds (default: repro.benchmarking.MIN_COMPARABLE_BASELINE_S; "
            "sub-threshold timings are noise across machines)"
        ),
    )
    args = parser.parse_args(argv)

    if args.baseline and args.baseline_dir:
        print("--baseline and --baseline-dir are mutually exclusive", file=sys.stderr)
        return 2
    if args.baseline and len(args.records) > 1:
        # One baseline cannot gate several records: every record would be
        # compared against the wrong trajectory.  Match by filename instead.
        print(
            "--baseline pairs one baseline with one record; "
            "use --baseline-dir to gate several records at once",
            file=sys.stderr,
        )
        return 2
    single_baseline = None
    if args.baseline:
        if not Path(args.baseline).exists():
            print(f"baseline {args.baseline!r} does not exist", file=sys.stderr)
            return 2
        single_baseline = BenchRecord.load(args.baseline)
    baseline_dir = None
    if args.baseline_dir:
        baseline_dir = Path(args.baseline_dir)
        if not baseline_dir.is_dir():
            print(f"baseline dir {args.baseline_dir!r} does not exist", file=sys.stderr)
            return 2

    failed = False
    for record_path in args.records:
        if not Path(record_path).exists():
            print(f"record {record_path!r} does not exist", file=sys.stderr)
            return 2
        baseline = single_baseline
        if baseline_dir is not None:
            candidate = baseline_dir / Path(record_path).name
            if candidate.exists():
                baseline = BenchRecord.load(candidate)
            else:
                print(f"note: no baseline for {record_path} under {baseline_dir}; gates only")
        record = BenchRecord.load(record_path)
        gate_failures = record.check_gates()
        _print_failures("gate", gate_failures)
        regression_failures = []
        if baseline is not None:
            kwargs = {"max_regression": args.max_regression}
            if args.min_baseline is not None:
                kwargs["min_baseline"] = args.min_baseline
            regression_failures = record.check_regressions(baseline, **kwargs)
            _print_failures("regression", regression_failures)
        if gate_failures or regression_failures:
            failed = True
        else:
            checked = len(record.gates) + (len(record.entries) if baseline else 0)
            print(f"OK {record_path}: {len(record.gates)} gate(s) pass ({checked} checks)")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
