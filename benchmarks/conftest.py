"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's figures (or prose results) on
a shortened-but-faithful version of the paper's scenario, prints the table
of rows/series the paper reports, and asserts the qualitative *shape* of the
result (who wins, orderings, inflation factors).  Absolute numbers are not
expected to match the paper — the substrate is a simulator, not the authors'
testbed — and the shortened durations are noted in EXPERIMENTS.md alongside
full-length runs.
"""

from __future__ import annotations

import pytest


def print_result_table(text: str) -> None:
    """Print a table so ``pytest -s`` / benchmark output shows the reproduced rows."""
    print()
    print(text)


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`print_result_table` to the benchmarks."""
    return print_result_table
