"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's figures (or prose results) on
a shortened-but-faithful version of the paper's scenario, prints the table
of rows/series the paper reports, and asserts the qualitative *shape* of the
result (who wins, orderings, inflation factors).  Absolute numbers are not
expected to match the paper — the substrate is a simulator, not the authors'
testbed — and the shortened durations are noted in EXPERIMENTS.md alongside
full-length runs.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items) -> None:
    """Mark everything under benchmarks/ with the ``bench`` marker.

    Keeps the tier-1 test run fast: ``pytest -m "not bench"`` (or just the
    default ``tests/`` collection) never picks these up, while
    ``pytest benchmarks/...`` runs them explicitly.
    """
    for item in items:
        item.add_marker(pytest.mark.bench)


def print_result_table(text: str) -> None:
    """Print a table so ``pytest -s`` / benchmark output shows the reproduced rows."""
    print()
    print(text)


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`print_result_table` to the benchmarks."""
    return print_result_table
