"""Shared configuration for the benchmark suite.

Each benchmark regenerates one of the paper's figures (or prose results) on
a shortened-but-faithful version of the paper's scenario, prints the table
of rows/series the paper reports, and asserts the qualitative *shape* of the
result (who wins, orderings, inflation factors).  Absolute numbers are not
expected to match the paper — the substrate is a simulator, not the authors'
testbed — and the shortened durations are noted in EXPERIMENTS.md alongside
full-length runs.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.benchmarking import update_bench_record

#: BENCH_*.json records live at the repository root, next to ROADMAP.md.
REPO_ROOT = Path(__file__).resolve().parent.parent


def pytest_collection_modifyitems(config, items) -> None:
    """Mark everything under benchmarks/ with ``bench``; opt-in to run it.

    Keeps the tier-1 run fast while preserving both benchmark workflows:

    * ``pytest -m bench`` (any mark expression naming ``bench``) runs the
      suite and refreshes the ``BENCH_*.json`` records;
    * ``pytest benchmarks/bench_foo.py`` (an explicit benchmarks/ path on
      the command line) runs that file as before;
    * every other invocation — in particular the tier-1
      ``pytest -x -q`` — deselects the benchmarks.

    The hook receives the whole session's items (tests/ included when both
    test paths are collected together), so it filters to this directory.
    """
    bench_dir = Path(__file__).resolve().parent
    bench_items = []
    for item in items:
        if bench_dir in Path(str(item.fspath)).resolve().parents:
            item.add_marker(pytest.mark.bench)
            bench_items.append(item)
    if not bench_items:
        return
    if "bench" in (config.option.markexpr or ""):
        return  # the user's -m expression decides
    if config.option.keyword:
        return  # a -k expression selects by name; let it decide
    for argument in config.invocation_params.args:
        text = str(argument)
        if text.startswith("-"):
            continue
        try:
            path = Path(text.split("::", 1)[0]).resolve()
        except OSError:  # pragma: no cover - unresolvable CLI token
            continue
        if path == bench_dir or bench_dir in path.parents:
            return  # benchmarks were requested explicitly by path
    config.hook.pytest_deselected(items=bench_items)
    selected = set(map(id, bench_items))
    items[:] = [item for item in items if id(item) not in selected]


def print_result_table(text: str) -> None:
    """Print a table so ``pytest -s`` / benchmark output shows the reproduced rows."""
    print()
    print(text)


@pytest.fixture
def table_printer():
    """Fixture exposing :func:`print_result_table` to the benchmarks."""
    return print_result_table


@pytest.fixture
def bench_record():
    """Write entries into a canonical ``BENCH_<name>.json`` at the repo root.

    Usage inside a benchmark test::

        bench_record(
            "inference",
            entries={"scalar_512": ({"wall_time_s": 1.2}, {"note": "..."})},
            gates={"vectorized_512.speedup_vs_scalar": {"min": 5.0}},
        )

    Entries merge into the existing record, so several tests can contribute
    to one file; see :mod:`repro.benchmarking` for the format and
    ``benchmarks/compare.py`` for the regression gate.
    """

    def _record(name, entries, gates=None):
        path = REPO_ROOT / f"BENCH_{name}.json"
        return update_bench_record(path, name, entries, gates)

    return _record
