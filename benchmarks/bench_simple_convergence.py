"""Benchmark: the §4 prose scenarios (simple configurations).

Scenario A — unknown link speed and initial buffer occupancy: the sender
starts tentatively, infers the parameters, then sends at exactly the link
speed.

Scenario B — cross traffic plus a latency-penalizing utility: the sender
drains the shared buffer before ramping up.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_convergence_scenario, run_drain_scenario
from repro.metrics.summary import format_table


def test_scenario_a_convergence_to_link_speed(benchmark, table_printer):
    result = benchmark.pedantic(
        run_convergence_scenario,
        kwargs={"duration": 90.0},
        iterations=1,
        rounds=1,
    )
    table_printer(format_table(result.rows(), title="§4 scenario A — convergence to the link speed"))

    assert result.converged, "the sender should settle at the true link speed"
    assert result.posterior_true_rate_probability > 0.9, "the true rate should dominate the posterior"
    assert result.early_rate_bps <= result.late_rate_bps + 1e-9, "the start should be tentative"
    assert result.inferred_link_rate_bps == pytest.approx(result.true_link_rate_bps, rel=0.1)


def test_scenario_b_drains_buffer_with_latency_penalty(benchmark, table_printer):
    result = benchmark.pedantic(
        run_drain_scenario,
        kwargs={"duration": 60.0},
        iterations=1,
        rounds=1,
    )
    table_printer(
        format_table(result.rows(), title="§4 scenario B — draining the buffer before sending")
    )

    assert result.penalized_sender_waits_longer, (
        "the latency-penalizing sender should defer its ramp-up"
    )
    assert result.first_send_penalized > 0.5 * result.drain_time, (
        "the deferral should be comparable to the buffer drain time"
    )
    assert result.late_rate_penalized_bps > 0.4 * 12_000.0, (
        "after draining, the sender should still use the link"
    )
