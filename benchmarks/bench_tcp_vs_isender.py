"""Benchmark: the motivating comparison — loss-blind TCP vs. the model-based sender.

On a 12 kbit/s link with 20 % non-congestive stochastic loss (the §4
parameters), NewReno's window collapses while the ISender, whose prior
includes stochastic loss, keeps sending near the link speed.  This is the
behaviour the paper's introduction and related-work sections describe.
"""

from __future__ import annotations

from repro.experiments import run_loss_comparison
from repro.metrics.summary import format_table

BENCH_DURATION = 150.0


def test_tcp_vs_isender_under_stochastic_loss(benchmark, table_printer):
    result = benchmark.pedantic(
        run_loss_comparison,
        kwargs={"duration": BENCH_DURATION},
        iterations=1,
        rounds=1,
    )
    table_printer(
        format_table(
            result.rows(),
            title="Loss-blind TCP vs. model-based sender (20% stochastic loss)",
        )
    )
    table_printer(f"ISender goodput advantage: {result.isender_advantage:.1f}x")

    assert result.isender_goodput_bps > result.tcp_goodput_bps, "the ISender should win"
    assert result.isender_advantage > 1.5, "the win should be substantial"
    assert result.tcp_utilization < 0.6, "loss-blind TCP should fail to fill the link"
    assert result.isender_utilization > 0.4, "the ISender should keep using the link"
    assert result.tcp_timeouts > 0, "TCP should be suffering timeouts from the random loss"
