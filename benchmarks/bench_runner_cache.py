"""Benchmark: warm-rerun speedup of the fingerprint-keyed result cache.

Runs a 4-point Figure-3 α sweep cold (populating a fresh cache directory),
then reruns the identical grid warm.  The warm pass must replay every point
from the cache — zero executions — producing a byte-identical canonical
artifact at a ≥5× wall-clock speedup (measured: orders of magnitude, since
a replay is one key hash plus one small JSON read per point).  Both the
speedup and the replay identity are gated in ``BENCH_cache.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.metrics.summary import ExperimentRow, format_table
from repro.runner import ResultCache, SerialRunner
from repro.runner.scenarios import alpha_sweep_specs

BENCH_ALPHAS = (0.9, 1.0, 2.5, 5.0)
BENCH_DURATION = 30.0
BENCH_SWITCH_INTERVAL = 10.0


@pytest.mark.bench
def test_warm_rerun_replays_cached_grid(table_printer, bench_record, tmp_path):
    specs = alpha_sweep_specs(
        alphas=BENCH_ALPHAS,
        duration=BENCH_DURATION,
        switch_interval=BENCH_SWITCH_INTERVAL,
    )

    started = time.perf_counter()
    cold = SerialRunner(cache=ResultCache(tmp_path)).run(specs)
    cold_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    warm = SerialRunner(cache=ResultCache(tmp_path)).run(specs)
    warm_elapsed = time.perf_counter() - started

    speedup = cold_elapsed / warm_elapsed if warm_elapsed > 0 else float("inf")
    replay_identical = cold.to_json() == warm.to_json()
    all_hits = (warm.cache_hits, warm.cache_misses) == (len(specs), 0)

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="cold",
                    values={
                        "wall (s)": cold_elapsed,
                        "hits": cold.cache_hits,
                        "misses": cold.cache_misses,
                    },
                ),
                ExperimentRow(
                    label="warm",
                    values={
                        "wall (s)": warm_elapsed,
                        "hits": warm.cache_hits,
                        "misses": warm.cache_misses,
                    },
                ),
                ExperimentRow(label="speedup", values={"wall (s)": speedup}),
            ],
            title=f"Result cache — {len(specs)}-point α sweep, cold vs warm rerun",
        )
    )

    assert replay_identical, "warm rerun must replay the cold artifact bit-identically"
    assert all_hits, f"warm rerun executed points: {warm.cache_misses} miss(es)"
    assert speedup >= 5.0, f"expected >= 5x warm-rerun speedup, measured {speedup:.1f}x"

    bench_record(
        "cache",
        entries={
            "cold_4pt": (
                {
                    "wall_time_s": cold_elapsed,
                    "points": len(cold),
                    "cache_misses": cold.cache_misses,
                },
                {"alphas": list(BENCH_ALPHAS), "duration_s": BENCH_DURATION},
            ),
            "warm_4pt": (
                {
                    "wall_time_s": warm_elapsed,
                    "points": len(warm),
                    "cache_hits": warm.cache_hits,
                    "speedup_vs_cold": speedup,
                    "replay_identical": float(replay_identical),
                    "all_points_hit": float(all_hits),
                },
                {"alphas": list(BENCH_ALPHAS), "duration_s": BENCH_DURATION},
            ),
        },
        gates={
            "warm_4pt.speedup_vs_cold": {"min": 5.0},
            "warm_4pt.replay_identical": {"min": 1.0},
            "warm_4pt.all_points_hit": {"min": 1.0},
        },
    )
