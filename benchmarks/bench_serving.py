"""Benchmark: the policy-serving fallback chain, clean and under chaos.

Times the two real serving paths of
:class:`~repro.serving.fallback.DecisionService` — tier 1 (published
policy-table lookup) against tier 2 (live planning on the
signature-reconstructed belief, the path every table miss takes) — and
then replays a seeded chaos plan to measure degraded-mode availability:
the fraction of requests that still received a valid decision while
exceptions and corruption were being injected.

Gates (``BENCH_serving.json``, checked by ``benchmarks/compare.py``):

* ``serving_table.speedup_vs_planner`` ≥ 5 — the tentpole claim that a
  published table answers at least 5× faster than planning live;
* ``serving_chaos.availability`` ≥ 1.0 — under the fault plan, 100 % of
  requests get a valid decision (the degradation ladder never drops one).
"""

from __future__ import annotations

import time

from repro.api.config import SenderConfig
from repro.api.policy import precompute_policy_table
from repro.inference import single_link_prior
from repro.metrics.summary import ExperimentRow, format_table
from repro.runner.faults import FaultPlan
from repro.serving import DecisionService, PolicyTableRegistry, ServingFaultInjector

#: The acceptance floor for the table tier over the live-planning tier.
MIN_TABLE_SPEEDUP = 5.0

#: Lookups timed per path (table lookups are microseconds; planning is not).
TABLE_DECIDES = 2_000
PLANNER_DECIDES = 60


def serving_config() -> SenderConfig:
    return SenderConfig(
        prior=single_link_prior(link_rate_points=2, fill_points=1),
        top_k=4,
        max_hypotheses=32,
        belief_backend="vectorized",
        rollout_backend="vectorized",
        policy="table",
    )


def test_serving_tiers_and_chaos_availability(
    tmp_path, table_printer, bench_record
):
    """Table tier vs. live-planning tier, plus chaos-mode availability."""
    config = serving_config()
    table = precompute_policy_table(
        config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
    )
    registry = PolicyTableRegistry(tmp_path / "registry")
    registry.publish(table)
    fingerprint = config.fingerprint()
    signatures = table.signatures()

    # Tier 1: served table lookups (the full decide path, counters and all).
    table_service = DecisionService(registry, [config])
    started = time.perf_counter()
    for index in range(TABLE_DECIDES):
        served = table_service.decide(fingerprint, signatures[index % len(signatures)])
        assert served.tier == "table"
    table_wall = time.perf_counter() - started

    # Tier 2: the same requests against an empty registry, so every decide
    # reconstructs the belief and plans live — what each table miss costs.
    planner_service = DecisionService(
        PolicyTableRegistry(tmp_path / "empty"), [config], planner_timeout=60.0
    )
    started = time.perf_counter()
    for index in range(PLANNER_DECIDES):
        served = planner_service.decide(
            fingerprint, signatures[index % len(signatures)]
        )
        assert served.tier == "planner"
    planner_wall = time.perf_counter() - started

    table_us = table_wall / TABLE_DECIDES * 1e6
    planner_us = planner_wall / PLANNER_DECIDES * 1e6
    speedup = planner_us / table_us

    # Chaos: seeded exceptions + in-memory corruption over a mixed stream;
    # availability is the fraction of requests answered with a valid
    # decision (the whole point of the degradation ladder: 100%).
    requests = 80
    plan = FaultPlan(seed=11, exception_rate=0.2, corrupt=6)
    chaos_service = DecisionService(
        registry,
        [config],
        planner_timeout=5.0,
        breaker_cooldown=300.0,
        injector=ServingFaultInjector(plan, requests),
    )
    valid = 0
    started = time.perf_counter()
    for index in range(requests):
        served = chaos_service.decide(
            fingerprint, signatures[index % len(signatures)]
        )
        if served.status == "ok" and served.decision.action.delay >= 0.0:
            valid += 1
    chaos_wall = time.perf_counter() - started
    availability = valid / requests
    counters = chaos_service.counters_snapshot()
    non_default = counters["table_hits"] + counters["planner_fallbacks"]

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="tier 1: table lookup",
                    values={"wall_time (s)": table_wall, "us/decide": table_us,
                            "decides": TABLE_DECIDES},
                ),
                ExperimentRow(
                    label="tier 2: live planning",
                    values={"wall_time (s)": planner_wall, "us/decide": planner_us,
                            "decides": PLANNER_DECIDES},
                ),
                ExperimentRow(
                    label="chaos (seeded faults)",
                    values={"wall_time (s)": chaos_wall,
                            "us/decide": chaos_wall / requests * 1e6,
                            "decides": requests},
                ),
            ],
            title=(
                f"Policy serving: table tier {speedup:.0f}x over live planning, "
                f"chaos availability {availability:.0%} "
                f"({non_default}/{requests} off the safe default)"
            ),
        )
    )

    bench_record(
        "serving",
        entries={
            "serving_table": (
                {
                    "wall_time_s": table_wall,
                    "decisions": TABLE_DECIDES,
                    "us_per_decide": table_us,
                    "speedup_vs_planner": speedup,
                },
                {"path": "DecisionService tier 1: registry table lookup"},
            ),
            "serving_planner": (
                {
                    "wall_time_s": planner_wall,
                    "decisions": PLANNER_DECIDES,
                    "us_per_decide": planner_us,
                },
                {"path": "DecisionService tier 2: live planning fallback"},
            ),
            "serving_chaos": (
                {
                    "wall_time_s": chaos_wall,
                    "decisions": requests,
                    "availability": availability,
                    "non_default_fraction": non_default / requests,
                },
                {
                    "path": "DecisionService under seeded FaultPlan",
                    "plan": plan.describe(),
                },
            ),
        },
        gates={
            "serving_table.speedup_vs_planner": {"min": MIN_TABLE_SPEEDUP},
            "serving_chaos.availability": {"min": 1.0},
        },
    )

    assert availability == 1.0, (
        f"{requests - valid} of {requests} chaos requests got no valid decision"
    )
    assert counters["errors"] == 0
    assert non_default >= 0.6 * requests, (
        f"only {non_default}/{requests} chaos requests avoided the safe default"
    )
    assert speedup >= MIN_TABLE_SPEEDUP, (
        f"table tier only {speedup:.1f}x faster than live planning "
        f"(target {MIN_TABLE_SPEEDUP:.0f}x)"
    )
