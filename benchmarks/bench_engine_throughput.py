"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a figure in the paper; they exist so regressions
in the hot paths (the event loop, the queueing pair, the fast link model,
belief updates) show up in benchmark history.
"""

from __future__ import annotations

from repro.elements import Buffer, Collector, Throughput
from repro.inference import AckObservation, BeliefState, GaussianKernel, single_link_prior
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.sim.element import Network
from repro.sim.engine import Simulator
from repro.sim.packet import Packet


def test_event_loop_throughput(benchmark):
    def run_events() -> int:
        sim = Simulator()
        counter = {"fired": 0}

        def tick() -> None:
            counter["fired"] += 1
            if counter["fired"] < 20_000:
                sim.schedule(0.001, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return counter["fired"]

    fired = benchmark(run_events)
    assert fired == 20_000


def test_queueing_chain_throughput(benchmark):
    def run_chain() -> int:
        network = Network(seed=0)
        buffer = Buffer(capacity_bits=1e9, name="buf")
        link = Throughput(rate_bps=1e6, name="link")
        sink = Collector(name="sink")
        buffer.connect(link)
        link.connect(sink)
        network.add(buffer)
        network.start()
        for seq in range(5_000):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        return sink.count()

    delivered = benchmark(run_chain)
    assert delivered == 5_000


def test_link_model_advance_throughput(benchmark):
    params = LinkModelParams(
        link_rate_bps=12_000.0,
        buffer_capacity_bits=96_000.0,
        cross_rate_pps=0.7,
        loss_rate=0.2,
        mean_time_to_switch=100.0,
    )

    def run_model() -> int:
        model = LinkModel(params)
        for seq in range(500):
            model.send_own(seq, 12_000.0, float(seq))
        model.advance(1_000.0)
        return len(model.predictions)

    predictions = benchmark(run_model)
    assert predictions == 500


def test_belief_update_throughput(benchmark):
    prior = single_link_prior(link_rate_points=9, fill_points=3)

    def run_updates() -> int:
        belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.3))
        for seq in range(50):
            time = float(seq)
            belief.record_send(seq, 12_000.0, time)
            belief.update(time + 1.0, [AckObservation(seq=seq, received_at=time + 1.0, ack_at=time + 1.0)])
        return len(belief)

    remaining = benchmark(run_updates)
    assert remaining >= 1
