"""Micro-benchmarks of the simulation substrate itself.

These do not correspond to a figure in the paper; they exist so regressions
in the hot paths (the event loop, the queueing pair, the fast link model,
belief updates) show up in benchmark history.  Each test also contributes
its pytest-benchmark minimum to the canonical ``BENCH_engine.json`` record
checked by ``benchmarks/compare.py`` — no second timing harness.
"""

from __future__ import annotations

from repro.elements import Buffer, Collector, Throughput
from repro.inference import AckObservation, BeliefState, GaussianKernel, single_link_prior
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.sim.element import Network
from repro.sim.engine import Simulator
from repro.sim.packet import Packet

# ---------------------------------------------------------------- workloads


def run_event_loop() -> int:
    """20k self-rescheduling timer events through the bare simulator."""
    sim = Simulator()
    counter = {"fired": 0}

    def tick() -> None:
        counter["fired"] += 1
        if counter["fired"] < 20_000:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return counter["fired"]


def run_queueing_chain() -> int:
    """5k packets through a Buffer → Throughput → Collector chain."""
    network = Network(seed=0)
    buffer = Buffer(capacity_bits=1e9, name="buf")
    link = Throughput(rate_bps=1e6, name="link")
    sink = Collector(name="sink")
    buffer.connect(link)
    link.connect(sink)
    network.add(buffer)
    network.start()
    for seq in range(5_000):
        buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
    network.run()
    return sink.count()


_LINK_MODEL_PARAMS = LinkModelParams(
    link_rate_bps=12_000.0,
    buffer_capacity_bits=96_000.0,
    cross_rate_pps=0.7,
    loss_rate=0.2,
    mean_time_to_switch=100.0,
)


def run_link_model_advance() -> int:
    """500 sends then a long advance through the fast link model."""
    model = LinkModel(_LINK_MODEL_PARAMS)
    for seq in range(500):
        model.send_own(seq, 12_000.0, float(seq))
    model.advance(1_000.0)
    return len(model.predictions)


def run_belief_updates() -> int:
    """50 send/ack/update rounds over a 27-hypothesis belief."""
    prior = single_link_prior(link_rate_points=9, fill_points=3)
    belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.3))
    for seq in range(50):
        at = float(seq)
        belief.record_send(seq, 12_000.0, at)
        belief.update(at + 1.0, [AckObservation(seq=seq, received_at=at + 1.0, ack_at=at + 1.0)])
    return len(belief)


# -------------------------------------------------------------------- benches


def record_engine_timing(bench_record, benchmark, label: str, workload) -> None:
    """Contribute one workload's pytest-benchmark minimum to BENCH_engine.json."""
    bench_record(
        "engine",
        entries={
            label: (
                {"wall_time_s": benchmark.stats.stats.min},
                {"workload": workload.__name__},
            )
        },
    )


def test_event_loop_throughput(benchmark, bench_record):
    fired = benchmark(run_event_loop)
    assert fired == 20_000
    record_engine_timing(bench_record, benchmark, "event_loop_20k", run_event_loop)


def test_queueing_chain_throughput(benchmark, bench_record):
    delivered = benchmark(run_queueing_chain)
    assert delivered == 5_000
    record_engine_timing(bench_record, benchmark, "queueing_chain_5k", run_queueing_chain)


def test_link_model_advance_throughput(benchmark, bench_record):
    predictions = benchmark(run_link_model_advance)
    assert predictions == 500
    record_engine_timing(
        bench_record, benchmark, "link_model_advance_500", run_link_model_advance
    )


def test_belief_update_throughput(benchmark, bench_record):
    remaining = benchmark(run_belief_updates)
    assert remaining >= 1
    record_engine_timing(
        bench_record, benchmark, "belief_update_50_rounds", run_belief_updates
    )
