"""Benchmark: parallel scenario-runner scaling on an 8-point α sweep.

Runs the same eight Figure-3 α points through the serial backend and
through a 4-worker :class:`~repro.runner.backends.ParallelRunner`, checks
the two artifacts are byte-identical (replay equivalence), and reports the
wall-clock speedup.  The ≥ 2.5× speedup assertion only applies where the
hardware can deliver it — on fewer than four usable cores the measured
ratio is reported but not enforced, since forked workers then time-share
one CPU.

A second record covers the §3.3 ``policy="table"`` grid workload: a seed
fan over one table-mode configuration must precompute exactly one policy
table through the shared cache directory, not one per point.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.metrics.summary import ExperimentRow, format_table
from repro.runner import ParallelRunner, SerialRunner, run_specs
from repro.runner.scenarios import alpha_sweep_specs
from repro.runner.spec import grid

#: Eight α points spanning the paper's range (two per paper value).
BENCH_ALPHAS = (0.8, 0.9, 1.0, 1.5, 2.0, 2.5, 3.5, 5.0)
BENCH_DURATION = 60.0
BENCH_SWITCH_INTERVAL = 20.0
BENCH_WORKERS = 4

#: Cores the parallel backend can actually use.
_USABLE_CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count() or 1


@pytest.mark.bench
def test_runner_scaling_8_point_alpha_sweep(table_printer, bench_record):
    specs = alpha_sweep_specs(
        alphas=BENCH_ALPHAS,
        duration=BENCH_DURATION,
        switch_interval=BENCH_SWITCH_INTERVAL,
    )
    assert len(specs) == len(BENCH_ALPHAS)

    started = time.perf_counter()
    serial_store = SerialRunner().run(specs)
    serial_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    parallel_store = ParallelRunner(workers=BENCH_WORKERS).run(specs)
    parallel_elapsed = time.perf_counter() - started

    speedup = serial_elapsed / parallel_elapsed if parallel_elapsed > 0 else float("inf")
    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="serial",
                    values={"wall (s)": serial_elapsed, "points": len(serial_store), "workers": 1},
                ),
                ExperimentRow(
                    label="parallel",
                    values={
                        "wall (s)": parallel_elapsed,
                        "points": len(parallel_store),
                        "workers": BENCH_WORKERS,
                    },
                ),
                ExperimentRow(
                    label="speedup",
                    values={"wall (s)": speedup},
                ),
            ],
            title=f"Runner scaling — 8-point α sweep ({_USABLE_CPUS} usable CPUs)",
        )
    )
    table_printer(format_table(serial_store.rows(), title="Sweep metrics (identical across backends)"))

    # Replay equivalence: the parallel artifact is byte-identical to serial.
    assert serial_store.to_json() == parallel_store.to_json()

    # Canonical BENCH_runner.json record.  The ≥2.5× speedup gate only
    # applies where the hardware can deliver it — on fewer than four usable
    # cores the ratio is recorded but the gate is retracted (None), since
    # forked workers then time-share one CPU and a gate written by an
    # earlier many-core run would otherwise linger in the merged record.
    gates = {
        "parallel_8pt.replay_identical": {"min": 1.0},
        "parallel_8pt.speedup_vs_serial": (
            {"min": 2.5} if _USABLE_CPUS >= BENCH_WORKERS else None
        ),
    }
    bench_record(
        "runner",
        entries={
            "serial_8pt": (
                {"wall_time_s": serial_elapsed, "points": len(serial_store), "workers": 1},
                {"backend": "serial", "alphas": list(BENCH_ALPHAS)},
            ),
            "parallel_8pt": (
                {
                    "wall_time_s": parallel_elapsed,
                    "points": len(parallel_store),
                    "workers": BENCH_WORKERS,
                    "speedup_vs_serial": speedup,
                    "replay_identical": float(
                        serial_store.to_json() == parallel_store.to_json()
                    ),
                    "usable_cpus": _USABLE_CPUS,
                },
                {"backend": "parallel", "alphas": list(BENCH_ALPHAS)},
            ),
        },
        gates=gates,
    )

    if _USABLE_CPUS >= BENCH_WORKERS:
        assert speedup >= 2.5, (
            f"expected >= 2.5x speedup with {BENCH_WORKERS} workers on "
            f"{_USABLE_CPUS} CPUs, measured {speedup:.2f}x"
        )
    else:
        table_printer(
            f"NOTE: only {_USABLE_CPUS} usable CPU(s); {speedup:.2f}x measured, "
            "2.5x assertion requires >= 4 cores"
        )


@pytest.mark.bench
def test_policy_table_seed_fan_shares_one_table(
    table_printer, bench_record, tmp_path, monkeypatch
):
    """§3.3 grid workload: a table-mode seed fan precomputes one table.

    Three seed trials of one ``inference_ablation_point`` configuration run
    with ``policy="table"`` against a shared cache directory.  The pilot
    seed is fixed per configuration, so the sweep must write exactly one
    policy-table artifact and replay it for the remaining points — the
    cross-run/cross-worker reuse PR 4's ROADMAP entry promised.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    base = {"duration": 8.0, "max_hypotheses": 60, "top_k": 8}
    seeds = (0, 1, 2)

    def sweep(policy: str) -> float:
        specs = grid(
            "inference_ablation_point", seeds=seeds, base={**base, "policy": policy}
        )
        started = time.perf_counter()
        store = run_specs(specs)
        assert len(store) == len(seeds)
        return time.perf_counter() - started

    none_elapsed = sweep("none")
    table_elapsed = sweep("table")
    tables_written = len(list((tmp_path / "policy").glob("*.json")))

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="policy=none",
                    values={"wall (s)": none_elapsed, "points": len(seeds)},
                ),
                ExperimentRow(
                    label="policy=table",
                    values={
                        "wall (s)": table_elapsed,
                        "points": len(seeds),
                        "tables": tables_written,
                    },
                ),
            ],
            title="Runner grid — policy-mode seed fan (3 trials, shared cache)",
        )
    )

    assert tables_written == 1, (
        f"expected the seed fan to share one precomputed table, "
        f"found {tables_written}"
    )

    bench_record(
        "runner",
        entries={
            "policy_none_seedfan": (
                {"wall_time_s": none_elapsed, "points": len(seeds)},
                {"policy": "none", "seeds": list(seeds)},
            ),
            "policy_table_seedfan": (
                {
                    "wall_time_s": table_elapsed,
                    "points": len(seeds),
                    "tables_precomputed": float(tables_written),
                },
                {"policy": "table", "seeds": list(seeds)},
            ),
        },
        gates={
            "policy_table_seedfan.tables_precomputed": {"min": 1.0, "max": 1.0},
        },
    )
