"""Benchmark: ablations over the inference engine's approximation knobs.

DESIGN.md calls out three approximations on top of the paper's rejection
sampling: the likelihood kernel, the hypothesis-count cap, and decision
memoization.  This benchmark measures their cost/fidelity trade-off on a
shortened Figure-3 scenario.
"""

from __future__ import annotations

from repro.experiments import run_inference_ablation
from repro.experiments.ablation import AblationConfig
from repro.metrics.summary import format_table

BENCH_CONFIGS = (
    AblationConfig(label="gaussian kernel / 200 hyps"),
    AblationConfig(label="gaussian kernel / 50 hyps", max_hypotheses=50, top_k=8),
    AblationConfig(label="exact (rejection) kernel", kernel="exact", kernel_scale=0.75),
    AblationConfig(label="policy cache", use_policy_cache=True),
)


def test_inference_ablation(benchmark, table_printer):
    result = benchmark.pedantic(
        run_inference_ablation,
        kwargs={"configs": BENCH_CONFIGS, "duration": 50.0},
        iterations=1,
        rounds=1,
    )
    table_printer(format_table(result.rows(), title="Inference ablation (shortened Figure-3 scenario)"))

    outcomes = {outcome.config.label: outcome for outcome in result.outcomes}

    # Every configuration must keep the sender functional.
    for outcome in result.outcomes:
        assert outcome.packets_sent > 5
        assert outcome.goodput_bps > 0

    # The full-size ensemble should identify the true link rate.
    assert outcomes["gaussian kernel / 200 hyps"].posterior_true_link_rate > 0.5
    # The rejection kernel also works here because the prior contains the truth.
    assert outcomes["exact (rejection) kernel"].posterior_true_link_rate > 0.5
    # The small cap is cheaper (fewer hypotheses carried around).
    assert (
        outcomes["gaussian kernel / 50 hyps"].final_hypotheses
        <= outcomes["gaussian kernel / 200 hyps"].final_hypotheses
    )
