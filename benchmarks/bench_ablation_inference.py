"""Benchmark: ablations over the inference engine's approximation knobs.

DESIGN.md calls out three approximations on top of the paper's rejection
sampling: the likelihood kernel, the hypothesis-count cap, and decision
memoization.  This benchmark measures their cost/fidelity trade-off on a
shortened Figure-3 scenario, and pits the scalar belief engine against the
vectorized (NumPy struct-of-arrays) backend at the full 512-hypothesis cap,
emitting the ``BENCH_inference.json`` regression record that
``benchmarks/compare.py`` gates on.
"""

from __future__ import annotations

from repro.api import SenderConfig
from repro.experiments import run_inference_ablation
from repro.experiments.ablation import AblationPoint
from repro.experiments.inference_bench import (
    InferenceBenchConfig,
    run_backend_comparison,
)
from repro.metrics.summary import ExperimentRow, format_table

#: The acceptance floor for the vectorized backend on the update hot path.
MIN_VECTORIZED_SPEEDUP = 5.0

BENCH_CONFIGS = (
    AblationPoint("gaussian kernel / 200 hyps", SenderConfig()),
    AblationPoint("gaussian kernel / 50 hyps", SenderConfig(max_hypotheses=50, top_k=8)),
    AblationPoint("exact (rejection) kernel", SenderConfig(kernel="exact", kernel_scale=0.75)),
    AblationPoint("policy cache", SenderConfig(policy="cache")),
    AblationPoint("vectorized backend / 200 hyps", SenderConfig(belief_backend="vectorized")),
)


def test_inference_ablation(benchmark, table_printer):
    result = benchmark.pedantic(
        run_inference_ablation,
        kwargs={"configs": BENCH_CONFIGS, "duration": 50.0},
        iterations=1,
        rounds=1,
    )
    table_printer(format_table(result.rows(), title="Inference ablation (shortened Figure-3 scenario)"))

    outcomes = {outcome.config.label: outcome for outcome in result.outcomes}

    # Every configuration must keep the sender functional.
    for outcome in result.outcomes:
        assert outcome.packets_sent > 5
        assert outcome.goodput_bps > 0

    # The full-size ensemble should identify the true link rate.
    assert outcomes["gaussian kernel / 200 hyps"].posterior_true_link_rate > 0.5
    # The rejection kernel also works here because the prior contains the truth.
    assert outcomes["exact (rejection) kernel"].posterior_true_link_rate > 0.5
    # The small cap is cheaper (fewer hypotheses carried around).
    assert (
        outcomes["gaussian kernel / 50 hyps"].final_hypotheses
        <= outcomes["gaussian kernel / 200 hyps"].final_hypotheses
    )
    # The vectorized backend reproduces the scalar sender's inference.
    scalar = outcomes["gaussian kernel / 200 hyps"]
    vectorized = outcomes["vectorized backend / 200 hyps"]
    assert vectorized.posterior_true_link_rate > 0.5
    assert vectorized.packets_sent == scalar.packets_sent
    assert vectorized.final_hypotheses == scalar.final_hypotheses


def test_vectorized_backend_speedup(table_printer, bench_record):
    """Scalar vs. vectorized belief updates at the 512-hypothesis cap.

    Measures the inference hot path in isolation (the exact
    ``record_send``/``update`` sequence an ISender issues), asserts the
    tentpole >=5x speedup, and writes the BENCH_inference.json record so
    ``python benchmarks/compare.py BENCH_inference.json`` can gate future
    changes.
    """
    config = InferenceBenchConfig()
    comparison = run_backend_comparison(config, rounds=2)
    scalar, vectorized = comparison.scalar, comparison.vectorized

    rows = [
        ExperimentRow(
            label=result.backend,
            values={
                "wall_time (s)": result.wall_time_s,
                "updates": result.updates_applied,
                "hypotheses": result.final_hypotheses,
                "compacted": result.compacted_away,
                "degenerate": result.degenerate_updates,
            },
        )
        for result in (scalar, vectorized)
    ]
    table_printer(
        format_table(
            rows,
            title=(
                f"Belief update hot path at {config.max_hypotheses} hypotheses "
                f"(speedup {comparison.speedup:.1f}x)"
            ),
        )
    )

    bench_record(
        "inference",
        entries={
            "scalar_512": (
                {
                    "wall_time_s": scalar.wall_time_s,
                    "updates": scalar.updates_applied,
                    "final_hypotheses": scalar.final_hypotheses,
                },
                {"backend": "scalar", "max_hypotheses": config.max_hypotheses},
            ),
            "vectorized_512": (
                {
                    "wall_time_s": vectorized.wall_time_s,
                    "updates": vectorized.updates_applied,
                    "final_hypotheses": vectorized.final_hypotheses,
                    "speedup_vs_scalar": comparison.speedup,
                    "max_weight_divergence": comparison.max_weight_divergence,
                },
                {"backend": "vectorized", "max_hypotheses": config.max_hypotheses},
            ),
        },
        gates={
            "vectorized_512.speedup_vs_scalar": {"min": MIN_VECTORIZED_SPEEDUP},
            "vectorized_512.max_weight_divergence": {"max": 1e-9},
        },
    )

    # Both backends walked the identical workload...
    assert vectorized.updates_applied == scalar.updates_applied
    assert vectorized.final_hypotheses == scalar.final_hypotheses
    assert comparison.posteriors_match, (
        f"posterior divergence {comparison.max_weight_divergence:g} exceeds tolerance"
    )
    # ...and the array backend clears the tentpole speedup target.
    assert comparison.speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized backend only {comparison.speedup:.1f}x faster "
        f"(target {MIN_VECTORIZED_SPEEDUP:.0f}x)"
    )
