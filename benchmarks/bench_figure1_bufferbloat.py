"""Benchmark: Figure 1 — RTT of a TCP download over a bufferbloated cellular link.

Regenerates the RTT-vs-time series of the paper's Figure 1 on the synthetic
cellular link (deep buffer, variable rate, link-layer loss hiding) and
checks its shape: the RTT starts near the base propagation delay and
inflates by well over an order of magnitude as the loss-blind TCP download
fills the buffer.
"""

from __future__ import annotations

from repro.experiments import run_figure1
from repro.metrics.summary import format_table
from repro.viz import ascii_plot

#: Shortened duration used by the benchmark (the paper's trace covers ~250 s).
BENCH_DURATION = 150.0


def test_figure1_rtt_inflation(benchmark, table_printer):
    result = benchmark.pedantic(
        run_figure1,
        kwargs={"duration": BENCH_DURATION},
        iterations=1,
        rounds=1,
    )

    table_printer(format_table(result.rows(window=25.0), title="Figure 1 — RTT during a TCP download (synthetic LTE)"))
    table_printer(
        ascii_plot(
            {"rtt (s)": result.rtt},
            title="Figure 1 — round-trip time vs. time (log scale)",
            y_label="RTT",
            logy=True,
            height=14,
        )
    )

    # Shape checks corresponding to the paper's observations.
    assert result.rtt.min() < 5.0 * result.base_rtt, "RTT should start near the base RTT"
    assert result.max_rtt > 1.0, "the bloated buffer should push RTT above one second"
    assert result.inflation_factor > 10.0, "RTT should inflate by over an order of magnitude"
    assert result.link_layer_retransmissions > 0, "loss must be hidden by the link layer"
    # The sender keeps the link busy (bufferbloat, not starvation).
    assert result.throughput_bps > 100_000.0
