"""Benchmark: Figure 1 — RTT of a TCP download over a bufferbloated cellular link.

Regenerates the RTT-vs-time series of the paper's Figure 1 on the synthetic
cellular link (deep buffer, variable rate, link-layer loss hiding) and
checks its shape: the RTT starts near the base propagation delay and
inflates by well over an order of magnitude as the loss-blind TCP download
fills the buffer.
"""

from __future__ import annotations

import pytest

from repro.metrics.summary import format_table
from repro.runner import ScenarioSpec, SerialRunner

#: Shortened duration used by the benchmark (the paper's trace covers ~250 s).
BENCH_DURATION = 150.0

#: The benchmark as a scenario point executed via the registry, so the exact
#: same run is reproducible from the runner CLI:
#: ``python -m repro.runner run figure1 --set duration=150 --seed 7``.
BENCH_SPEC = ScenarioSpec(scenario="figure1", params={"duration": BENCH_DURATION}, seed=7)


@pytest.mark.bench
def test_figure1_rtt_inflation(benchmark, table_printer):
    store = benchmark.pedantic(
        SerialRunner().run,
        args=([BENCH_SPEC],),
        iterations=1,
        rounds=1,
    )

    table_printer(
        format_table(store.rows(), title="Figure 1 — RTT during a TCP download (synthetic LTE)")
    )

    # Shape checks corresponding to the paper's observations.
    [metrics] = (result.metrics for result in store)
    assert metrics["min_rtt_s"] < 5.0 * metrics["base_rtt_s"], "RTT should start near the base RTT"
    assert metrics["max_rtt_s"] > 1.0, "the bloated buffer should push RTT above one second"
    assert metrics["inflation_factor"] > 10.0, "RTT should inflate by over an order of magnitude"
    assert metrics["link_layer_retransmissions"] > 0, "loss must be hidden by the link layer"
    # The sender keeps the link busy (bufferbloat, not starvation).
    assert metrics["throughput_bps"] > 100_000.0
