"""Benchmark: the §3.3 precomputed policy table vs. live planning.

Precomputes a :class:`~repro.api.policy.PolicyTable` for the Figure-3
default sender configuration (pilot run + burst-grid sweep through the
vectorized rollout lanes), verifies on a **held-out run** that every table
hit reproduces the live planner's decision at the table's signature
resolution, then times the steady-state decide path — table lookup vs.
uncached planning — and emits the ``BENCH_policy.json`` regression record
that ``benchmarks/compare.py`` gates on.

The fidelity gate requires every checked hit to agree with live planning
(within the documented 1e-9 relative delay tolerance — the signature
rounds weights to 3 decimals, so derived delays may differ in the last
ulp); the speedup gate mirrors the other engine benches' ≥5× floor.
"""

from __future__ import annotations

from repro.experiments.policy_bench import PolicyBenchConfig, run_policy_comparison
from repro.metrics.summary import ExperimentRow, format_table

#: The acceptance floor for the precomputed-policy decide path.
MIN_TABLE_SPEEDUP = 5.0


def test_policy_table_speedup_and_fidelity(table_printer, bench_record):
    """Precomputed Figure-3 policy table: held-out fidelity + lookup speedup."""
    config = PolicyBenchConfig()
    comparison = run_policy_comparison(config, rounds=3)

    table_us = comparison.table_wall_time_s / comparison.table_decides * 1e6
    live_us = comparison.live_wall_time_s / comparison.live_decides * 1e6
    rows = [
        ExperimentRow(
            label="live planning",
            values={
                "wall_time (s)": comparison.live_wall_time_s,
                "us/decide": live_us,
                "decides": comparison.live_decides,
            },
        ),
        ExperimentRow(
            label="policy table",
            values={
                "wall_time (s)": comparison.table_wall_time_s,
                "us/decide": table_us,
                "decides": comparison.table_decides,
            },
        ),
    ]
    table_printer(
        format_table(
            rows,
            title=(
                f"Policy table vs. live planning ({comparison.table_entries} "
                f"precomputed entries, steady-state speedup {comparison.speedup:.0f}x, "
                f"held-out hit rate {comparison.hit_rate:.0%})"
            ),
        )
    )

    bench_record(
        "policy",
        entries={
            "live_figure3": (
                {
                    "wall_time_s": comparison.live_wall_time_s,
                    "decisions": comparison.live_decides,
                },
                {"path": "uncached ExpectedUtilityPlanner.decide"},
            ),
            "table_figure3": (
                {
                    "wall_time_s": comparison.table_wall_time_s,
                    "decisions": comparison.table_decides,
                    "speedup_vs_live": comparison.speedup,
                    "table_entries": comparison.table_entries,
                    "heldout_hit_rate": comparison.hit_rate,
                    "heldout_checked": comparison.heldout_checked,
                    "decisions_match": float(comparison.decisions_match),
                },
                {"path": "precomputed PolicyTable lookup (steady state)"},
            ),
        },
        gates={
            "table_figure3.speedup_vs_live": {"min": MIN_TABLE_SPEEDUP},
            "table_figure3.decisions_match": {"min": 1.0},
        },
    )

    # The precompute produced a usable table and the held-out run used it...
    assert comparison.table_entries > 20
    assert comparison.heldout_hits > 10
    # ...every hit reproduced the live planner's decision at the table's
    # signature resolution...
    assert comparison.decisions_match, (
        f"{len(comparison.mismatches)} of {comparison.heldout_checked} table "
        f"hits diverged from live planning: {comparison.mismatches[:5]}"
    )
    # ...and the steady-state decide path clears the tentpole speedup floor.
    assert comparison.speedup >= MIN_TABLE_SPEEDUP, (
        f"policy-table lookup only {comparison.speedup:.1f}x faster than live "
        f"planning (target {MIN_TABLE_SPEEDUP:.0f}x)"
    )
