"""Benchmark: the planner's (action × hypothesis) rollout fan-out.

Times repeated ``ExpectedUtilityPlanner.decide`` calls — ``top_k=24``
hypotheses × the default 9-delay action grid, 216 rollouts per decision —
on a loaded decision state (converged 512-hypothesis belief plus a queued
send burst), once per rollout backend, and emits the ``BENCH_planner.json``
regression record that ``benchmarks/compare.py`` gates on.

The scalar backend clones and event-steps one ``LinkModel`` per lane; the
vectorized backend advances every lane through one masked event frontier
(``repro.inference.vectorized.rollout``).  The gate mirrors PR 2's
inference gate: the batched engine must stay ≥5× the scalar oracle, and
the two backends' expected utilities must agree to the documented 1e-9
relative tolerance with an identical chosen action.
"""

from __future__ import annotations

from repro.experiments.planner_bench import PlannerBenchConfig, run_planner_comparison
from repro.metrics.summary import ExperimentRow, format_table

#: The acceptance floor for the batched rollout engine on the decide path.
MIN_VECTORIZED_SPEEDUP = 5.0

#: Documented cross-backend tolerance (relative) on expected utilities.
MAX_UTILITY_DIVERGENCE = 1e-9


def test_planner_rollout_speedup(table_printer, bench_record):
    """Scalar vs. vectorized planner fan-out at top_k=24 × 9 actions."""
    config = PlannerBenchConfig()
    comparison = run_planner_comparison(config, rounds=3)
    scalar, vectorized = comparison.scalar, comparison.vectorized

    per_decide_ms = 1000.0 / config.decisions
    rows = [
        ExperimentRow(
            label=result.rollout_backend,
            values={
                "wall_time (s)": result.wall_time_s,
                "ms/decide": result.wall_time_s * per_decide_ms,
                "rollouts": result.rollouts_performed,
                "top_k": result.hypotheses_evaluated,
            },
        )
        for result in (scalar, vectorized)
    ]
    table_printer(
        format_table(
            rows,
            title=(
                f"Planner fan-out at top_k={config.top_k} × default action grid "
                f"(speedup {comparison.speedup:.1f}x)"
            ),
        )
    )

    bench_record(
        "planner",
        entries={
            "scalar_topk24": (
                {
                    "wall_time_s": scalar.wall_time_s,
                    "decisions": scalar.decisions,
                    "rollouts": scalar.rollouts_performed,
                },
                {"rollout_backend": "scalar", "top_k": config.top_k},
            ),
            "vectorized_topk24": (
                {
                    "wall_time_s": vectorized.wall_time_s,
                    "decisions": vectorized.decisions,
                    "rollouts": vectorized.rollouts_performed,
                    "speedup_vs_scalar": comparison.speedup,
                    "max_utility_divergence": comparison.max_utility_divergence,
                    "decisions_match": float(comparison.decisions_match),
                },
                {"rollout_backend": "vectorized", "top_k": config.top_k},
            ),
        },
        gates={
            "vectorized_topk24.speedup_vs_scalar": {"min": MIN_VECTORIZED_SPEEDUP},
            "vectorized_topk24.max_utility_divergence": {"max": MAX_UTILITY_DIVERGENCE},
            "vectorized_topk24.decisions_match": {"min": 1.0},
        },
    )

    # Both backends evaluated the identical fan-out...
    assert vectorized.rollouts_performed == scalar.rollouts_performed
    assert vectorized.hypotheses_evaluated == scalar.hypotheses_evaluated == config.top_k
    # ...agreed on the decision...
    assert comparison.decisions_match, (
        f"backends disagree: scalar delay {scalar.chosen_delay!r} "
        f"vs vectorized {vectorized.chosen_delay!r}"
    )
    assert comparison.max_utility_divergence <= MAX_UTILITY_DIVERGENCE
    # ...and the batched engine clears the tentpole speedup target.
    assert comparison.speedup >= MIN_VECTORIZED_SPEEDUP, (
        f"vectorized rollout only {comparison.speedup:.1f}x faster "
        f"(target {MIN_VECTORIZED_SPEEDUP:.0f}x)"
    )
