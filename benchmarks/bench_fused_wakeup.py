"""Benchmark: the fused wake-up kernel and the batched sender pool.

Two records back the fused engine's perf bar:

* ``BENCH_planner.json`` gains ``vectorized_wakeup`` / ``fused_wakeup`` —
  the full ISender wake-up loop body (``record_send`` → ``update`` →
  ``decide``) at the 512-hypothesis cap in the paper's deep-buffer
  regime, where the fused frontier drains whole departure runs in one
  pass.  Gate: fused ≥1.5× the unfused vectorized path, identical chosen
  action, expected utilities within the documented 1e-9 relative
  tolerance (measured 0: the fused belief's posterior is bit-identical).
* ``BENCH_engine.json`` gains ``per_sender_vectorized_64`` /
  ``pooled_fused_64`` — 64 senders deciding via one
  ``BatchedSenderPool.decide_all`` (sender × action × hypothesis) frontier
  vs the per-sender vectorized decide loop.  Gate: ≥5× aggregate with
  every sender's decision unchanged.
"""

from __future__ import annotations

from repro.experiments.fused_bench import (
    FusedWakeupConfig,
    PoolBenchConfig,
    run_fused_wakeup_comparison,
    run_pool_comparison,
)
from repro.metrics.summary import ExperimentRow, format_table

#: The acceptance floor for the fused kernel on the full wake-up path.
MIN_FUSED_SPEEDUP = 1.5

#: The acceptance floor for the pooled 64-sender aggregate decide.
MIN_POOL_SPEEDUP = 5.0

#: Documented cross-backend tolerance (relative) on expected utilities.
MAX_UTILITY_DIVERGENCE = 1e-9


def test_fused_wakeup_speedup(table_printer, bench_record):
    """Fused vs unfused-vectorized full wake-ups on the deep-buffer state."""
    config = FusedWakeupConfig()
    comparison = run_fused_wakeup_comparison(config, rounds=4)
    vectorized, fused = comparison.vectorized, comparison.fused

    per_wake_ms = 1000.0 / config.decisions
    table_printer(
        format_table(
            [
                ExperimentRow(
                    label=result.backend,
                    values={
                        "wall_time (s)": result.wall_time_s,
                        "ms/wakeup": result.wall_time_s * per_wake_ms,
                        "wakeups": result.wakeups,
                    },
                )
                for result in (vectorized, fused)
            ],
            title=(
                f"Full wake-up at {config.max_hypotheses} hypotheses, "
                f"{config.burst}-packet standing queue "
                f"(speedup {comparison.speedup:.2f}x)"
            ),
        )
    )

    bench_record(
        "planner",
        entries={
            "vectorized_wakeup": (
                {
                    "wall_time_s": vectorized.wall_time_s,
                    "wakeups": vectorized.wakeups,
                },
                {"backend": "vectorized", "burst": config.burst},
            ),
            "fused_wakeup": (
                {
                    "wall_time_s": fused.wall_time_s,
                    "wakeups": fused.wakeups,
                    "speedup_vs_vectorized": comparison.speedup,
                    "max_utility_divergence": comparison.max_utility_divergence,
                    "decisions_match": float(comparison.decisions_match),
                },
                {"backend": "fused", "burst": config.burst},
            ),
        },
        gates={
            "fused_wakeup.speedup_vs_vectorized": {"min": MIN_FUSED_SPEEDUP},
            "fused_wakeup.max_utility_divergence": {"max": MAX_UTILITY_DIVERGENCE},
            "fused_wakeup.decisions_match": {"min": 1.0},
        },
    )

    assert comparison.decisions_match, (
        f"backends disagree: vectorized delay {vectorized.chosen_delay!r} "
        f"vs fused {fused.chosen_delay!r}"
    )
    assert comparison.max_utility_divergence <= MAX_UTILITY_DIVERGENCE
    assert comparison.speedup >= MIN_FUSED_SPEEDUP, (
        f"fused wake-up only {comparison.speedup:.2f}x faster "
        f"(target {MIN_FUSED_SPEEDUP:.1f}x)"
    )


def test_pooled_decide_speedup(table_printer, bench_record):
    """64-sender pooled decide_all vs the per-sender vectorized loop."""
    config = PoolBenchConfig()
    comparison = run_pool_comparison(config)
    per_sender, pooled = comparison.per_sender, comparison.pooled

    per_pass_ms = 1000.0 / config.passes
    table_printer(
        format_table(
            [
                ExperimentRow(
                    label=result.strategy,
                    values={
                        "wall_time (s)": result.wall_time_s,
                        "ms/pass": result.wall_time_s * per_pass_ms,
                        "senders": result.senders,
                    },
                )
                for result in (per_sender, pooled)
            ],
            title=(
                f"Aggregate decide over {config.senders} senders "
                f"(speedup {comparison.speedup:.2f}x)"
            ),
        )
    )

    bench_record(
        "engine",
        entries={
            "per_sender_vectorized_64": (
                {
                    "wall_time_s": per_sender.wall_time_s,
                    "passes": per_sender.passes,
                    "senders": per_sender.senders,
                },
                {"strategy": "per_sender_loop", "rollout_backend": "vectorized"},
            ),
            "pooled_fused_64": (
                {
                    "wall_time_s": pooled.wall_time_s,
                    "passes": pooled.passes,
                    "senders": pooled.senders,
                    "speedup_vs_per_sender": comparison.speedup,
                    "decisions_match": float(comparison.decisions_match),
                },
                {"strategy": "pooled_decide_all", "rollout_backend": "fused"},
            ),
        },
        gates={
            "pooled_fused_64.speedup_vs_per_sender": {"min": MIN_POOL_SPEEDUP},
            "pooled_fused_64.decisions_match": {"min": 1.0},
        },
    )

    assert comparison.decisions_match, "pooled decisions diverged from per-sender"
    assert comparison.speedup >= MIN_POOL_SPEEDUP, (
        f"pooled decide_all only {comparison.speedup:.2f}x faster "
        f"(target {MIN_POOL_SPEEDUP:.0f}x)"
    )
