"""Benchmark: Figure 3 — varying the priority (α) given to cross traffic.

Regenerates the paper's main result on a shortened version of the §4
scenario (the on/off half-period is 40 s instead of 100 s so the benchmark
completes quickly; EXPERIMENTS.md records a full 300 s run) and checks the
four qualitative claims the paper makes about the figure.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_figure3
from repro.metrics.summary import format_table
from repro.runner import SerialRunner
from repro.viz import ascii_plot

BENCH_ALPHAS = (0.9, 1.0, 2.5, 5.0)
BENCH_SWITCH_INTERVAL = 40.0
BENCH_DURATION = 120.0


@pytest.mark.bench
def test_figure3_alpha_sweep(benchmark, table_printer):
    result = benchmark.pedantic(
        run_figure3,
        kwargs={
            "alphas": BENCH_ALPHAS,
            "duration": BENCH_DURATION,
            "switch_interval": BENCH_SWITCH_INTERVAL,
            # The sweep executes through the scenario-runner backend; swap in
            # a ParallelRunner to fan the α points out over worker processes.
            "runner": SerialRunner(),
        },
        iterations=1,
        rounds=1,
    )

    table_printer(
        format_table(
            result.rows(),
            title="Figure 3 — results of varying priority to cross traffic",
        )
    )
    table_printer(
        ascii_plot(
            result.series(),
            title="Figure 3 — sequence number vs. time",
            y_label="packets acked",
            height=16,
        )
    )

    claims = result.check_claims()
    table_printer(f"qualitative claims: {claims}")

    assert claims["starts_slowly"], "every sender should start slowly while uncertain"
    assert claims["link_speed_when_cross_off"], (
        "non-deferential senders should reach the link speed while cross traffic is off"
    )
    assert claims["deference_monotone_in_alpha"], "higher alpha should mean fewer packets sent"
    assert claims["only_alpha_below_one_overflows"], "only alpha < 1 should overflow the buffer"
