"""Benchmarks for the trace-corpus subsystem.

Three gated records in ``BENCH_corpus.json``:

* ``warm_sweep`` — a corpus-trace sweep rerun against a warm
  :class:`~repro.runner.cache.ResultCache` must replay byte-identically at
  a ≥5× wall-clock speedup (corpus points are keyed by trace *digest*, so
  a rerun over the same corpus entries is all cache hits);
* ``contention_128`` — a 128-flow ``many_flow_contention`` point completes
  and reports a Jain's index in (0, 1];
* ``round_trip`` — ingesting the committed mahimahi fixture and describing
  it preserves the trace digest exactly through store, manifest, and blob.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.corpus import CorpusStore, load_trace_path
from repro.metrics.summary import ExperimentRow, format_table
from repro.runner import ResultCache, SerialRunner
from repro.runner.scenarios import corpus_sweep_specs, many_flow_specs

FIXTURE = Path(__file__).parent.parent / "tests" / "data" / "mahimahi_small.trace"

BENCH_SWEEP_DURATION = 20.0
BENCH_CONTENTION_FLOWS = 128
BENCH_CONTENTION_DURATION = 8.0


def seed_corpus(root: Path) -> CorpusStore:
    store = CorpusStore(root)
    store.register_generator("bench-onoff", "markov_onoff", {"duration": 40.0}, seed=1)
    store.register_generator("bench-crowd", "flash_crowd", {"duration": 40.0}, seed=2)
    return store


@pytest.mark.bench
def test_corpus_sweep_warm_rerun(table_printer, bench_record, tmp_path):
    store = seed_corpus(tmp_path / "corpus")
    specs = corpus_sweep_specs(
        traces=store.names(),
        seeds=(0, 1),
        duration=BENCH_SWEEP_DURATION,
        corpus_dir=str(store.root),
    )

    started = time.perf_counter()
    cold = SerialRunner(cache=ResultCache(tmp_path / "cache")).run(specs)
    cold_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    warm = SerialRunner(cache=ResultCache(tmp_path / "cache")).run(specs)
    warm_elapsed = time.perf_counter() - started

    speedup = cold_elapsed / warm_elapsed if warm_elapsed > 0 else float("inf")
    replay_identical = cold.to_json() == warm.to_json()
    all_hits = (warm.cache_hits, warm.cache_misses) == (len(specs), 0)

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="cold",
                    values={"wall (s)": cold_elapsed, "misses": cold.cache_misses},
                ),
                ExperimentRow(
                    label="warm",
                    values={"wall (s)": warm_elapsed, "hits": warm.cache_hits},
                ),
                ExperimentRow(label="speedup", values={"wall (s)": speedup}),
            ],
            title=f"Corpus sweep — {len(specs)} digest-keyed points, cold vs warm",
        )
    )

    assert replay_identical, "warm corpus rerun must replay bit-identically"
    assert all_hits, f"warm corpus rerun executed points: {warm.cache_misses} miss(es)"
    assert speedup >= 5.0, f"expected >= 5x warm-rerun speedup, measured {speedup:.1f}x"

    bench_record(
        "corpus",
        entries={
            "warm_sweep": (
                {
                    "cold_wall_time_s": cold_elapsed,
                    "warm_wall_time_s": warm_elapsed,
                    "points": len(warm),
                    "speedup_vs_cold": speedup,
                    "replay_identical": float(replay_identical),
                    "all_points_hit": float(all_hits),
                },
                {"traces": store.names(), "duration_s": BENCH_SWEEP_DURATION},
            ),
        },
        gates={
            "warm_sweep.speedup_vs_cold": {"min": 5.0},
            "warm_sweep.replay_identical": {"min": 1.0},
            "warm_sweep.all_points_hit": {"min": 1.0},
        },
    )


@pytest.mark.bench
def test_128_flow_contention_reports_fairness(table_printer, bench_record):
    specs = many_flow_specs(
        flow_counts=(BENCH_CONTENTION_FLOWS,),
        seeds=(0,),
        duration=BENCH_CONTENTION_DURATION,
        isender_flows=1,
    )

    started = time.perf_counter()
    store = SerialRunner().run(specs)
    elapsed = time.perf_counter() - started
    metrics = store.results[0].metrics

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label=f"{BENCH_CONTENTION_FLOWS} flows",
                    values={
                        "wall (s)": elapsed,
                        "jain": metrics["jain_index"],
                        "util": metrics["utilization"],
                        "drops": metrics["buffer_drops"],
                    },
                ),
            ],
            title="Many-flow contention — 128 flows through one shared bottleneck",
        )
    )

    assert 0.0 < metrics["jain_index"] <= 1.0

    bench_record(
        "corpus",
        entries={
            "contention_128": (
                {
                    "wall_time_s": elapsed,
                    "jain_index": metrics["jain_index"],
                    "utilization": metrics["utilization"],
                    "total_goodput_bps": metrics["total_goodput_bps"],
                },
                {
                    "flows": BENCH_CONTENTION_FLOWS,
                    "duration_s": BENCH_CONTENTION_DURATION,
                },
            ),
        },
        gates={
            "contention_128.jain_index": {"min": 0.01, "max": 1.0},
        },
    )


@pytest.mark.bench
def test_ingest_describe_round_trip(table_printer, bench_record, tmp_path):
    parsed = load_trace_path(FIXTURE)

    started = time.perf_counter()
    store = CorpusStore(tmp_path)
    entry = store.ingest(FIXTURE, name="fixture")
    described = store.describe("fixture")
    loaded = store.get("fixture")
    elapsed = time.perf_counter() - started

    digest_preserved = (
        parsed.digest == entry["digest"] == described["digest"] == loaded.digest
    )

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="ingest+describe",
                    values={
                        "wall (s)": elapsed,
                        "samples": float(described["samples"]),
                        "digest ok": float(digest_preserved),
                    },
                ),
            ],
            title="Corpus round trip — mahimahi fixture through the store",
        )
    )

    assert digest_preserved, "round trip must preserve the trace digest exactly"

    bench_record(
        "corpus",
        entries={
            "round_trip": (
                {
                    "wall_time_s": elapsed,
                    "samples": float(described["samples"]),
                    "digest_preserved": float(digest_preserved),
                },
                {"fixture": FIXTURE.name},
            ),
        },
        gates={
            "round_trip.digest_preserved": {"min": 1.0},
        },
    )
