"""Benchmark: what supervision and journalling cost on a healthy sweep.

Fault tolerance is only free to *enable* if a clean sweep barely notices
it: the supervised path forks one process per point (instead of a pooled
worker per core) and journals every state transition.  This benchmark runs
the same 64-point grid through the plain parallel fan-out and through the
supervised path with a journal, and gates the overhead at <=10%.

A second entry runs the grid under the issue's chaos plan — 10% injected
exceptions, 2 worker kills, 1 hang, 1 corrupted cache entry — and gates
that every fault recovers: all 64 points present, zero quarantined, and an
artifact byte-identical to the clean run.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.metrics.summary import ExperimentRow, format_table
from repro.runner import (
    FaultPlan,
    ParallelRunner,
    ResultCache,
    Supervision,
    grid,
)

#: Oversubscribing a small container just measures scheduler contention,
#: not supervision cost, so size the fan-out to the machine.
BENCH_WORKERS = min(4, os.cpu_count() or 1)
BENCH_DURATION = 30.0
#: 4 loss rates x 16 seeds = 64 points, each ~0.15s of simulation.
BENCH_LOSSES = (0.0, 0.02, 0.05, 0.1)
BENCH_SEEDS = 16


def _bench_specs():
    return grid(
        "single_link_tcp",
        seeds=BENCH_SEEDS,
        base={"duration": BENCH_DURATION},
        loss_rate=BENCH_LOSSES,
    )


@pytest.mark.bench
def test_supervision_overhead_and_chaos_recovery(table_printer, bench_record, tmp_path):
    specs = _bench_specs()

    started = time.perf_counter()
    plain = ParallelRunner(workers=BENCH_WORKERS).run(specs)
    plain_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    supervised = ParallelRunner(
        workers=BENCH_WORKERS,
        supervision=Supervision(max_retries=2),
        journal_dir=tmp_path / "journal-root",
    ).run(specs)
    supervised_elapsed = time.perf_counter() - started

    overhead = supervised_elapsed / plain_elapsed if plain_elapsed > 0 else float("inf")
    supervised_identical = supervised.to_json() == plain.to_json()

    plan = FaultPlan(
        seed=11, exception_rate=0.1, kills=2, hangs=1, corrupt=1, hang_seconds=60.0
    )
    started = time.perf_counter()
    chaos = ParallelRunner(
        workers=BENCH_WORKERS,
        cache=ResultCache(tmp_path / "cache"),
        supervision=Supervision(max_retries=3, point_timeout=10.0, fault_plan=plan),
    ).run(specs)
    chaos_elapsed = time.perf_counter() - started
    chaos_identical = chaos.to_json() == plain.to_json()

    table_printer(
        format_table(
            [
                ExperimentRow(
                    label="plain parallel",
                    values={"wall (s)": plain_elapsed, "points": len(plain)},
                ),
                ExperimentRow(
                    label="supervised+journal",
                    values={
                        "wall (s)": supervised_elapsed,
                        "points": len(supervised),
                        "overhead": overhead,
                    },
                ),
                ExperimentRow(
                    label="chaos plan",
                    values={
                        "wall (s)": chaos_elapsed,
                        "points": len(chaos),
                        "retries": chaos.retries,
                        "quarantined": len(chaos.quarantined),
                    },
                ),
            ],
            title=(
                f"Fault-tolerant runner — {len(specs)}-point sweep, "
                f"{BENCH_WORKERS} workers"
            ),
        )
    )

    assert supervised_identical, "supervised clean run must match the plain artifact"
    assert chaos_identical, "recovered chaos run must match the plain artifact"
    assert not chaos.quarantined, f"chaos run quarantined {len(chaos.quarantined)} point(s)"
    assert overhead <= 1.10, f"supervision overhead {overhead:.2f}x exceeds the 10% budget"

    bench_record(
        "faults",
        entries={
            "clean_64pt": (
                {
                    "wall_time_s": plain_elapsed,
                    "points": len(plain),
                },
                {"workers": BENCH_WORKERS, "duration_s": BENCH_DURATION},
            ),
            "supervised_64pt": (
                {
                    "wall_time_s": supervised_elapsed,
                    "points": len(supervised),
                    "overhead_vs_plain": overhead,
                    "replay_identical": float(supervised_identical),
                },
                {"workers": BENCH_WORKERS, "max_retries": 2},
            ),
            "chaos_64pt": (
                {
                    "wall_time_s": chaos_elapsed,
                    "points": len(chaos),
                    "retries": chaos.retries,
                    "quarantined": float(len(chaos.quarantined)),
                    "recovered_identical": float(chaos_identical),
                },
                {"workers": BENCH_WORKERS, "fault_plan": plan.describe()},
            ),
        },
        gates={
            "supervised_64pt.overhead_vs_plain": {"max": 1.10},
            "supervised_64pt.replay_identical": {"min": 1.0},
            "chaos_64pt.quarantined": {"max": 0.0},
            "chaos_64pt.recovered_identical": {"min": 1.0},
            "chaos_64pt.points": {"min": 64.0},
        },
    )
