"""Integration-style tests for the ISender element (the paper's sender)."""

from __future__ import annotations

import pytest

from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner, ISender, ThroughputUtility
from repro.errors import ConfigurationError
from repro.inference import BeliefState, GaussianKernel, single_link_prior
from repro.topology import figure2_network, single_link_network


def build_sender(network, link_points=5, alpha=0.0, stop_time=None, use_policy_cache=False):
    prior = single_link_prior(
        link_rate_low=8_000.0,
        link_rate_high=16_000.0,
        link_rate_points=link_points,
        fill_points=1,
    )
    belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.25))
    planner = ExpectedUtilityPlanner(
        AlphaWeightedUtility(alpha=alpha, discount_timescale=20.0), top_k=8
    )
    sender = ISender(
        belief,
        planner,
        network.sender_receiver,
        stop_time=stop_time,
        use_policy_cache=use_policy_cache,
    )
    sender.connect(network.entry)
    network.network.add(sender)
    return sender


class TestConstruction:
    def test_validation(self):
        network = single_link_network()
        prior = single_link_prior(link_rate_points=2, fill_points=1)
        belief = BeliefState.from_prior(prior)
        planner = ExpectedUtilityPlanner(ThroughputUtility())
        with pytest.raises(ConfigurationError):
            ISender(belief, planner, network.sender_receiver, packet_bits=0)
        with pytest.raises(ConfigurationError):
            ISender(belief, planner, network.sender_receiver, max_sends_per_wake=0)

    def test_policy_slot(self):
        """policy= installs the decider; combining it with the old flag fails."""
        from repro.core.policy import PolicyCache

        network = single_link_network()
        prior = single_link_prior(link_rate_points=2, fill_points=1)
        belief = BeliefState.from_prior(prior)
        planner = ExpectedUtilityPlanner(ThroughputUtility())
        cache = PolicyCache(planner)
        sender = ISender(belief, planner, network.sender_receiver, policy=cache)
        assert sender.policy is cache
        with pytest.raises(ConfigurationError, match="not both"):
            ISender(
                belief,
                planner,
                network.sender_receiver,
                policy=cache,
                use_policy_cache=True,
            )


class TestScenarioA:
    """The §4 prose result: converge to sending at exactly the link speed."""

    def test_converges_to_link_speed(self):
        network = single_link_network(link_rate_bps=12_000.0)
        sender = build_sender(network)
        network.network.run(until=60.0)
        late_rate = network.sender_receiver.throughput_bps(40.0, 60.0)
        assert late_rate == pytest.approx(12_000.0, rel=0.1)

    def test_infers_true_link_rate(self):
        network = single_link_network(link_rate_bps=12_000.0)
        sender = build_sender(network)
        network.network.run(until=30.0)
        assert sender.belief.map_estimate().params["link_rate_bps"] == pytest.approx(12_000.0)

    def test_starts_tentatively_when_uncertain(self):
        network = single_link_network(link_rate_bps=12_000.0)
        sender = build_sender(network)
        network.network.run(until=60.0)
        early_rate = network.sender_receiver.throughput_bps(0.0, 10.0)
        late_rate = network.sender_receiver.throughput_bps(40.0, 60.0)
        assert early_rate <= late_rate + 1e-9

    def test_does_not_overflow_known_buffer(self):
        network = single_link_network(link_rate_bps=12_000.0, buffer_capacity_bits=48_000.0)
        sender = build_sender(network)
        network.network.run(until=60.0)
        assert network.buffer.drop_count == 0

    def test_sequence_series_is_monotone(self):
        network = single_link_network()
        sender = build_sender(network)
        network.network.run(until=30.0)
        series = sender.sequence_series()
        counts = [count for _, count in series]
        assert counts == sorted(counts)
        assert sender.packets_acked == len(series)

    def test_acks_track_sends_without_loss(self):
        network = single_link_network(loss_rate=0.0)
        sender = build_sender(network)
        network.network.run(until=40.0)
        # Every packet sent at least a service time before the end is acked.
        assert sender.packets_acked >= sender.packets_sent - 2
        assert sender.delivery_rate() > 0.9


class TestLossyPath:
    def test_keeps_sending_under_stochastic_loss(self):
        network = single_link_network(link_rate_bps=12_000.0, loss_rate=0.2, seed=4)
        prior = single_link_prior(
            link_rate_low=8_000.0,
            link_rate_high=16_000.0,
            link_rate_points=5,
            loss_rate=0.2,
            fill_points=1,
        )
        belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.25))
        planner = ExpectedUtilityPlanner(ThroughputUtility(discount_timescale=20.0), top_k=8)
        sender = ISender(belief, planner, network.sender_receiver)
        sender.connect(network.entry)
        network.network.add(sender)
        network.network.run(until=120.0)
        goodput = network.sender_receiver.throughput_bps(30.0, 120.0)
        # A loss-blind TCP collapses here; the model-based sender should keep
        # well over half of the lossy capacity (0.8 * link rate).
        assert goodput > 0.5 * 0.8 * 12_000.0

    def test_stop_time_halts_transmissions(self):
        network = single_link_network()
        sender = build_sender(network, stop_time=10.0)
        network.network.run(until=30.0)
        assert all(record.sent_at <= 10.0 for record in sender.sent)


class TestDecisionLog:
    def test_decisions_are_recorded(self):
        network = single_link_network()
        sender = build_sender(network)
        network.network.run(until=20.0)
        assert sender.decisions
        assert all(record.hypotheses >= 1 for record in sender.decisions)
        sent_decisions = [record for record in sender.decisions if record.sent_seq is not None]
        assert len(sent_decisions) >= sender.packets_sent

    def test_policy_cache_mode_runs(self):
        network = single_link_network()
        sender = build_sender(network, use_policy_cache=True)
        network.network.run(until=20.0)
        assert sender.packets_sent > 5


class TestFigure2Integration:
    def test_alpha_one_shares_with_cross_traffic(self):
        network = figure2_network(cross_gate="none", loss_rate=0.0, seed=2)
        from repro.inference import figure3_prior

        prior = figure3_prior(
            link_rate_points=3,
            cross_fraction_points=3,
            loss_points=1,
            loss_high=0.0,
            buffer_points=2,
            fill_points=1,
        )
        belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.4))
        planner = ExpectedUtilityPlanner(
            AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0), top_k=12
        )
        sender = ISender(belief, planner, network.sender_receiver)
        sender.connect(network.entry)
        network.network.add(sender)
        network.network.run(until=90.0)
        own = network.sender_receiver.throughput_bps(30.0, 90.0)
        cross = network.cross_receiver.throughput_bps(30.0, 90.0, flow="cross")
        # Cross traffic offers 70% of the link; an alpha=1 sender roughly
        # fills what remains without starving it.
        assert cross > 0.5 * 0.7 * 12_000.0
        assert 0.1 * 12_000.0 < own < 0.6 * 12_000.0
        assert network.buffer.drop_count <= 2
