"""Tests for parameter grids, priors, observations, and likelihood kernels."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.inference import (
    AckObservation,
    ExactMatchKernel,
    GaussianKernel,
    ParameterGrid,
    ParameterSpec,
    figure3_prior,
    single_link_prior,
    uniform_grid,
)
from repro.inference.prior import Prior


class TestUniformGrid:
    def test_inclusive_endpoints(self):
        assert uniform_grid(0.0, 10.0, 3) == (0.0, 5.0, 10.0)

    def test_single_point(self):
        assert uniform_grid(2.0, 8.0, 1) == (2.0,)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_grid(0.0, 1.0, 0)
        with pytest.raises(ConfigurationError):
            uniform_grid(5.0, 1.0, 3)

    @given(
        low=st.floats(min_value=-100, max_value=100),
        span=st.floats(min_value=0.0, max_value=100),
        count=st.integers(min_value=1, max_value=20),
    )
    def test_property_count_and_bounds(self, low, span, count):
        values = uniform_grid(low, low + span, count)
        assert len(values) == count
        assert values[0] == pytest.approx(low)
        if count > 1:
            assert values[-1] == pytest.approx(low + span)
        assert list(values) == sorted(values)


class TestParameterSpec:
    def test_uniform_weights_sum_to_one(self):
        spec = ParameterSpec("x", (1.0, 2.0, 3.0, 4.0))
        assert sum(spec.normalized_weights()) == pytest.approx(1.0)
        assert spec.size == 4

    def test_explicit_weights_normalized(self):
        spec = ParameterSpec("x", (1.0, 2.0), weights=(3.0, 1.0))
        assert spec.normalized_weights() == pytest.approx((0.75, 0.25))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", ())
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", (1.0,), weights=(1.0, 2.0))
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", (1.0, 2.0), weights=(-1.0, 2.0))
        with pytest.raises(ConfigurationError):
            ParameterSpec("x", (1.0, 2.0), weights=(0.0, 0.0))


class TestParameterGrid:
    def test_size_is_product(self):
        grid = ParameterGrid.from_dict({"a": [1, 2, 3], "b": [1, 2]})
        assert grid.size == 6
        assert grid.names == ("a", "b")

    def test_combinations_cover_product_and_sum_to_one(self):
        grid = ParameterGrid.from_dict({"a": [1, 2], "b": [10, 20]})
        combos = list(grid.combinations())
        assert len(combos) == 4
        assert sum(prob for _, prob in combos) == pytest.approx(1.0)
        assignments = [tuple(sorted(assignment.items())) for assignment, _ in combos]
        assert len(set(assignments)) == 4

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            ParameterGrid(specs=(ParameterSpec("a", (1.0,)), ParameterSpec("a", (2.0,))))

    def test_spec_lookup_and_with_spec(self):
        grid = ParameterGrid.from_dict({"a": [1, 2]})
        assert grid.spec("a").values == (1, 2)
        with pytest.raises(KeyError):
            grid.spec("missing")
        extended = grid.with_spec(ParameterSpec("b", (5.0,)))
        assert extended.size == 2
        replaced = extended.with_spec(ParameterSpec("a", (9.0,)))
        assert replaced.spec("a").values == (9.0,)


class TestPriors:
    def test_figure3_prior_contains_paper_true_values(self):
        prior = figure3_prior(link_rate_points=4, cross_fraction_points=4, loss_points=3, buffer_points=4)
        assert prior.contains_value("link_rate_bps", 12_000.0)
        assert prior.contains_value("cross_fraction", 0.7)
        assert prior.contains_value("loss_rate", 0.2)
        assert prior.contains_value("buffer_capacity_bits", 96_000.0)

    def test_figure3_prior_probabilities_sum_to_one(self):
        prior = figure3_prior(link_rate_points=3, cross_fraction_points=2, loss_points=2, buffer_points=2, fill_points=2)
        combos = list(prior.combinations())
        assert len(combos) == prior.size
        assert sum(prob for _, prob in combos) == pytest.approx(1.0)

    def test_figure3_prior_resolves_relative_parameters(self):
        prior = figure3_prior(link_rate_points=2, cross_fraction_points=2, loss_points=1, buffer_points=1, fill_points=2)
        for assignment, _ in prior.combinations():
            assert assignment["cross_rate_pps"] == pytest.approx(
                assignment["cross_fraction"] * assignment["link_rate_bps"] / assignment["cross_packet_bits"]
            )
            assert assignment["initial_fill_bits"] <= assignment["buffer_capacity_bits"] + 1e-9
            assert assignment["mean_time_to_switch"] == pytest.approx(100.0)

    def test_figure3_prior_gate_uncertainty_doubles_support(self):
        base = figure3_prior(link_rate_points=2, cross_fraction_points=2, loss_points=1, buffer_points=1, fill_points=1)
        with_gate = figure3_prior(
            link_rate_points=2,
            cross_fraction_points=2,
            loss_points=1,
            buffer_points=1,
            fill_points=1,
            include_gate_uncertainty=True,
        )
        assert with_gate.size == 2 * base.size

    def test_single_link_prior(self):
        prior = single_link_prior(link_rate_points=3, fill_points=2)
        assert prior.size == 6
        for assignment, _ in prior.combinations():
            assert "link_rate_bps" in assignment
            assert "initial_fill_bits" in assignment

    def test_prior_contains_value_false_for_missing(self):
        prior = single_link_prior(link_rate_points=3)
        assert not prior.contains_value("link_rate_bps", 123.456)


class TestObservations:
    def test_report_delay(self):
        ack = AckObservation(seq=4, received_at=2.0, ack_at=2.5)
        assert ack.report_delay == pytest.approx(0.5)

    def test_frozen(self):
        ack = AckObservation(seq=4, received_at=2.0, ack_at=2.0)
        with pytest.raises(AttributeError):
            ack.seq = 5  # type: ignore[misc]


class TestKernels:
    def test_exact_kernel_accepts_within_tolerance(self):
        kernel = ExactMatchKernel(tolerance=0.01)
        assert kernel.log_weight(0.0) == 0.0
        assert kernel.log_weight(0.005) == 0.0
        assert kernel.log_weight(0.02) == float("-inf")

    def test_exact_kernel_validation(self):
        with pytest.raises(ConfigurationError):
            ExactMatchKernel(tolerance=-1.0)

    def test_gaussian_kernel_shape(self):
        kernel = GaussianKernel(sigma=0.5)
        assert kernel.log_weight(0.0) == 0.0
        assert kernel.log_weight(0.5) == pytest.approx(-0.5)
        assert kernel.log_weight(-0.5) == pytest.approx(-0.5)
        assert kernel.log_weight(10.0) == float("-inf")

    def test_gaussian_kernel_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianKernel(sigma=0.0)
        with pytest.raises(ConfigurationError):
            GaussianKernel(sigma=1.0, hard_cutoff_sigmas=0.0)

    @given(error=st.floats(min_value=-2.0, max_value=2.0))
    def test_property_gaussian_monotone_in_absolute_error(self, error):
        kernel = GaussianKernel(sigma=1.0)
        assert kernel.log_weight(error) <= kernel.log_weight(0.0)
        assert kernel.log_weight(error) == pytest.approx(kernel.log_weight(-error))
