"""Tests for :mod:`repro.diagnostics`: scorer, fingerprinter, triage, history.

The tentpole assertions live in ``TestStageLocalization``: a deliberately
perturbed vectorized kernel stage (via ``inject_stage_perturbation``) must
be bisected to exactly that stage, and the stage must be named by the
top-ranked cause — for every injectable stage, from one seed, through both
the API and the ``python -m repro.diagnostics`` CLI.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.benchmarking import BenchRecord
from repro.diagnostics import (
    CAUSE_BACKEND_DRIFT,
    CAUSE_CACHE_STALENESS,
    CAUSE_ENVIRONMENT_NOISE,
    CAUSE_SIGNATURE_COLLISION,
    BayesianScorer,
    CauseHypothesis,
    Evidence,
    INJECTABLE_STAGES,
    analyze_history,
    backend_config,
    bisect_cached_sweep,
    compare_traces,
    diagnose_divergence,
    inject_stage_perturbation,
    replay_trace,
    scan_signature_collisions,
    seeded_events,
    triage,
)
from repro.diagnostics.__main__ import main as diagnostics_main
from repro.runner import ResultCache, grid
from repro.runner.results import PointResult

REPO_ROOT = Path(__file__).resolve().parent.parent

SCALAR = backend_config("scalar", "scalar")
VECTORIZED = backend_config("vectorized", "vectorized")
FUSED = backend_config("fused", "fused")


# ----------------------------------------------------------------- evidence


class TestBayesianScorer:
    def test_no_evidence_returns_prior(self):
        assert BayesianScorer.compute_posterior(0.3, [], []) == pytest.approx(0.3)

    def test_support_raises_and_refute_lowers(self):
        supported = BayesianScorer.compute_posterior(
            0.3, [Evidence("e", "s", 0.8)], []
        )
        refuted = BayesianScorer.compute_posterior(0.3, [], [Evidence("e", "s", 0.8)])
        assert supported > 0.3 > refuted

    def test_half_confidence_is_uninformative(self):
        posterior = BayesianScorer.compute_posterior(
            0.4, [Evidence("e", "s", 0.5)], [Evidence("f", "s", 0.5)]
        )
        assert posterior == pytest.approx(0.4)

    def test_posterior_is_clamped_away_from_certainty(self):
        strong = [Evidence(str(i), "s", 0.99) for i in range(20)]
        assert BayesianScorer.compute_posterior(0.5, strong, []) <= 0.99
        assert BayesianScorer.compute_posterior(0.5, [], strong) >= 0.01

    def test_confidence_outside_unit_interval_rejected(self):
        with pytest.raises(ValueError, match="confidence"):
            Evidence("e", "s", 1.0)
        with pytest.raises(ValueError, match="confidence"):
            Evidence("e", "s", 0.0)

    def test_score_ranks_descending_and_fills_posteriors(self):
        likely = CauseHypothesis("likely", "", prior=0.2)
        likely.support("seen", "test", 0.9)
        unlikely = CauseHypothesis("unlikely", "", prior=0.2)
        unlikely.refute("unseen", "test", 0.9)
        ranked = BayesianScorer().rank([unlikely, likely])
        assert [cause.name for cause in ranked] == ["likely", "unlikely"]
        assert ranked[0].posterior > ranked[0].prior > ranked[1].posterior


# -------------------------------------------------------------- divergence


class TestDifferentialReplay:
    def test_backends_match_without_perturbation(self):
        report = diagnose_divergence(SCALAR, VECTORIZED, seed=0)
        assert not report.diverged
        assert report.divergence is None
        assert report.top_cause.name == (
            "no backend divergence (environment noise elsewhere)"
        )
        assert "agree at every" in report.render()

    def test_replay_is_deterministic(self):
        events = seeded_events(7)
        first = replay_trace(VECTORIZED, events)
        second = replay_trace(VECTORIZED, events)
        assert compare_traces(first, second) is None

    def test_seeded_events_cover_all_event_kinds(self):
        kinds = {kind for seed in range(10) for kind, _ in seeded_events(seed)}
        assert kinds == {"send", "update", "decide"}

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="injectable"):
            with inject_stage_perturbation("normalize"):
                pass


class TestStageLocalization:
    """The acceptance criterion: a known fault is named by the top cause."""

    @pytest.mark.parametrize("stage", INJECTABLE_STAGES)
    def test_perturbed_stage_is_top_ranked_cause(self, stage):
        with inject_stage_perturbation(stage):
            report = diagnose_divergence(SCALAR, VECTORIZED, seed=0)
        assert report.diverged
        assert report.divergence.stage == stage
        assert f"'{stage}'" in report.top_cause.name
        assert not report.order_sensitive
        # Kernel stages surface during updates, rollout during decides.
        expected_kind = "decide" if stage == "rollout" else "update"
        assert report.divergence.event_kind == expected_kind
        assert f"'{stage}'" in report.render()

    def test_perturbation_is_fully_restored_on_exit(self):
        with inject_stage_perturbation("score"):
            assert diagnose_divergence(SCALAR, VECTORIZED, seed=0).diverged
        assert not diagnose_divergence(SCALAR, VECTORIZED, seed=0).diverged

    def test_divergence_localizes_rows(self):
        with inject_stage_perturbation("score"):
            report = diagnose_divergence(SCALAR, VECTORIZED, seed=0)
        # Every row's likelihood was shifted, so every finite row differs.
        assert report.divergence.rows
        assert report.divergence.path.startswith(".log_likelihoods")


class TestFusedStageLocalization:
    """The fused engine keeps the full stage-hook surface: perturbations
    localize against it exactly as against the unfused vectorized engine."""

    def test_fused_matches_scalar_without_perturbation(self):
        report = diagnose_divergence(SCALAR, FUSED, seed=0)
        assert not report.diverged

    @pytest.mark.parametrize("stage", INJECTABLE_STAGES)
    def test_perturbed_stage_is_top_ranked_cause_vs_fused(self, stage):
        with inject_stage_perturbation(stage):
            report = diagnose_divergence(SCALAR, FUSED, seed=0)
        assert report.diverged
        assert report.divergence.stage == stage
        assert f"'{stage}'" in report.top_cause.name


# ------------------------------------------------------------------- triage


def _parity_record(value: float) -> BenchRecord:
    record = BenchRecord(name="equiv")
    record.record("backends", {"divergence_max": value})
    record.gate("backends", "divergence_max", maximum=1e-9)
    return record


def _timed_record(wall_time: float) -> BenchRecord:
    record = BenchRecord(name="perf")
    record.record("sweep", {"wall_time_s": wall_time})
    return record


class TestTriage:
    def test_no_evidence_returns_priors(self):
        report = triage()
        assert {cause.name for cause in report.causes} == {
            CAUSE_BACKEND_DRIFT,
            CAUSE_SIGNATURE_COLLISION,
            CAUSE_CACHE_STALENESS,
            CAUSE_ENVIRONMENT_NOISE,
        }
        for cause in report.causes:
            assert cause.posterior == pytest.approx(cause.prior)

    def test_failed_parity_gate_implicates_backend_drift(self):
        report = triage(records={"BENCH_equiv.json": _parity_record(1.0)})
        assert report.top_cause.name == CAUSE_BACKEND_DRIFT
        assert any("gate failure" in note for note in report.notes)

    def test_wall_time_regression_with_passing_gates_reads_as_noise(self):
        report = triage(
            records={"BENCH_perf.json": _timed_record(2.0)},
            baselines={"BENCH_perf.json": _timed_record(1.0)},
        )
        assert report.top_cause.name == CAUSE_ENVIRONMENT_NOISE

    def test_wrong_schema_cache_entries_implicate_staleness(self, tmp_path):
        slot = tmp_path / "results" / "ab"
        slot.mkdir(parents=True)
        (slot / "abcd.json").write_text('{"schema": 999}')
        (slot / "abce.json").write_text("{ not json")
        report = triage(cache_dir=tmp_path)
        assert report.top_cause.name == CAUSE_CACHE_STALENESS

    def test_invalid_cache_counters_implicate_staleness(self):
        report = triage(cache_counters={"hits": 5, "misses": 1, "invalid": 3})
        assert report.top_cause.name == CAUSE_CACHE_STALENESS
        clean = triage(cache_counters={"hits": 5, "misses": 1, "invalid": 0})
        staleness = next(
            cause for cause in clean.causes if cause.name == CAUSE_CACHE_STALENESS
        )
        assert staleness.posterior < staleness.prior

    def test_matching_differential_replays_refute_drift(self):
        report = triage(fuzz_seeds=range(2))
        drift = next(
            cause for cause in report.causes if cause.name == CAUSE_BACKEND_DRIFT
        )
        assert drift.posterior < drift.prior
        assert report.divergence is None

    def test_injected_drift_dominates_the_ranking(self):
        with inject_stage_perturbation("score"):
            report = triage(fuzz_seeds=range(2))
        assert report.top_cause.name == CAUSE_BACKEND_DRIFT
        assert report.divergence is not None and report.divergence.diverged
        assert "'score'" in report.render()


class TestSignatureCollisionScan:
    def test_coarse_resolution_aliases_distinct_decisions(self):
        # At a deliberately absurd backlog resolution, seeded replays are
        # known to alias belief states that decide differently.
        found = scan_signature_collisions(
            VECTORIZED, range(8), queue_resolution_bits=1e9
        )
        assert found
        first = found[0]
        assert first["delays"][0] != first["delays"][1]

    def test_default_resolution_is_collision_free_on_fuzz_seeds(self):
        assert scan_signature_collisions(VECTORIZED, range(4)) == []

    def test_collisions_feed_the_triage_ranking(self):
        report = triage(
            collision_seeds=range(8),
            collision_config=VECTORIZED,
            collision_resolution_bits=1e9,
        )
        assert report.top_cause.name == CAUSE_SIGNATURE_COLLISION


# ------------------------------------------------------------ bench history


class TestBenchHistory:
    def test_synthetic_regression_is_flagged(self):
        report = analyze_history(
            records={"BENCH_perf.json": _timed_record(2.0), "BENCH_ok.json": _timed_record(0.1)},
            baselines={
                "BENCH_perf.json": _timed_record(1.0),
                "BENCH_ok.json": _timed_record(0.1),
            },
        )
        assert report.flagged == ["BENCH_perf.json"]
        flagged = next(r for r in report.records if r.name == "BENCH_perf.json")
        assert flagged.regression_failures
        assert flagged.deltas[0].change == pytest.approx(1.0)  # 2x slower
        assert "FLAGGED" in report.render()

    def test_record_without_baseline_checks_gates_only(self):
        report = analyze_history(records={"BENCH_equiv.json": _parity_record(1.0)})
        record = report.records[0]
        assert not record.has_baseline
        assert record.gate_failures and not record.regression_failures
        assert report.flagged == ["BENCH_equiv.json"]

    def test_clean_history_is_quiet(self):
        report = analyze_history(
            records={"BENCH_perf.json": _timed_record(1.0)},
            baselines={"BENCH_perf.json": _timed_record(1.0)},
        )
        assert report.flagged == []
        assert "no record regressed" in report.render()


class TestSweepBisect:
    def test_misses_localize_to_the_changed_axis(self, tmp_path):
        specs = grid(
            "single_link_tcp",
            seeds=(0, 1),
            base={"duration": 2.0},
            loss_rate=(0.0, 0.05),
        )
        cache = ResultCache(tmp_path)
        for spec in specs:
            if spec.params["loss_rate"] == 0.0:
                cache.store_point(
                    cache.point_key(spec),
                    PointResult(spec=spec, metrics={"x": 1.0}, wall_time=0.1),
                )
        bisection = bisect_cached_sweep(ResultCache(tmp_path), specs)
        assert len(bisection.hits) == 2
        assert len(bisection.misses) == 2
        assert bisection.localized
        assert bisection.suspect_axes == {"loss_rate": [0.05]}
        assert "loss_rate" in bisection.render()

    def test_full_hit_and_full_miss_sweeps(self, tmp_path):
        specs = grid("single_link_tcp", base={"duration": 2.0}, loss_rate=(0.0, 0.05))
        cold = bisect_cached_sweep(ResultCache(tmp_path), specs)
        assert not cold.hits and len(cold.misses) == 2
        assert not cold.localized
        assert "global identity change" in cold.render()
        cache = ResultCache(tmp_path)
        for spec in specs:
            cache.store_point(
                cache.point_key(spec),
                PointResult(spec=spec, metrics={"x": 1.0}, wall_time=0.1),
            )
        warm = bisect_cached_sweep(ResultCache(tmp_path), specs)
        assert not warm.misses and len(warm.hits) == 2
        assert "no region changed" in warm.render()


# ---------------------------------------------------------------------- CLI


class TestDiagnosticsCli:
    def test_module_entry_names_perturbed_stage(self):
        """Acceptance: the CLI self-test localizes an injected fault."""
        env_path = str(REPO_ROOT / "src")
        result = subprocess.run(
            [sys.executable, "-m", "repro.diagnostics", "divergence", "--perturb", "score"],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
        )
        assert result.returncode == 1, result.stdout + result.stderr
        top_line = next(
            line for line in result.stdout.splitlines() if line.strip().startswith("1.")
        )
        assert "'score'" in top_line

    def test_divergence_clean_run_exits_zero(self, capsys):
        assert diagnostics_main(["divergence", "--seed", "1"]) == 0
        assert "agree at every" in capsys.readouterr().out

    def test_bench_history_flags_fabricated_regression(self, tmp_path, capsys):
        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        _timed_record(1.0).write(base_dir / "BENCH_perf.json")
        record_path = tmp_path / "BENCH_perf.json"
        _timed_record(2.0).write(record_path)
        code = diagnostics_main(
            ["bench-history", str(record_path), "--baseline-dir", str(base_dir)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FLAGGED" in out and "+100.0%" in out

    def test_bench_history_clean_exits_zero(self, tmp_path, capsys):
        record_path = tmp_path / "BENCH_perf.json"
        _timed_record(1.0).write(record_path)
        code = diagnostics_main(
            ["bench-history", str(record_path), "--baseline", str(record_path)]
        )
        assert code == 0
        assert "no record regressed" in capsys.readouterr().out

    def test_triage_cli_over_committed_records(self, capsys):
        records = sorted(str(path) for path in REPO_ROOT.glob("BENCH_*.json"))
        if not records:
            pytest.skip("no committed BENCH_*.json records")
        code = diagnostics_main(
            ["triage", *records, "--baseline-dir", str(REPO_ROOT / "benchmarks" / "baselines")]
        )
        assert code == 0
        assert "ranked causes" in capsys.readouterr().out
