"""Tests for the ``many_flow_contention`` scenario and its determinism.

The headline guarantee: a seeded contention point is *byte-identical*
across the serial, parallel, and async execution backends — many-flow
fairness numbers are a property of the spec, never of the machinery that
ran it.
"""

from __future__ import annotations

import json

import pytest

from repro.corpus import CorpusStore
from repro.errors import ConfigurationError
from repro.runner import ScenarioSpec, run_specs
from repro.runner.registry import DEFAULT_REGISTRY
from repro.runner.scenarios import many_flow_contention, many_flow_specs


def run_point(**params):
    spec = ScenarioSpec("many_flow_contention", params=params)
    return DEFAULT_REGISTRY.run_point(spec)


class TestScenarioValidation:
    def test_rejects_bad_flow_counts(self):
        with pytest.raises(ConfigurationError):
            many_flow_contention(flows=0)
        with pytest.raises(ConfigurationError):
            many_flow_contention(flows=4, isender_flows=5)
        with pytest.raises(ConfigurationError):
            many_flow_contention(flows=4, isender_flows=-1)

    def test_rejects_unknown_mix(self):
        with pytest.raises(ConfigurationError, match="unknown sender kind"):
            many_flow_contention(flows=4, mix="reno,vegas")
        with pytest.raises(ConfigurationError, match="at least one sender"):
            many_flow_contention(flows=4, isender_flows=0, mix="")

    def test_all_isender_flows_need_no_mix(self):
        metrics = run_point(
            flows=2, isender_flows=2, mix="", duration=4.0, policy="none"
        )
        assert metrics["isender_flows"] == 2.0
        assert metrics["goodput_baseline_bps"] == 0.0


class TestScenarioMetrics:
    def test_baseline_contention_point(self):
        metrics = run_point(flows=8, isender_flows=0, duration=8.0)
        assert metrics["flows"] == 8.0
        assert 0.0 < metrics["jain_index"] <= 1.0
        assert metrics["total_goodput_bps"] > 0.0
        assert 0.0 < metrics["utilization"] <= 1.0
        assert metrics["min_flow_goodput_bps"] <= metrics["max_flow_goodput_bps"]
        assert metrics["demux_ignored"] == 0

    def test_per_flow_metrics_opt_in(self):
        base = run_point(flows=4, isender_flows=0, duration=4.0)
        assert not any(key.startswith("flow_") for key in base)
        detailed = run_point(
            flows=4, isender_flows=0, duration=4.0, per_flow_metrics=True
        )
        per_flow = [key for key in detailed if key.startswith("flow_")]
        assert len(per_flow) == 4
        assert sum(detailed[key] for key in per_flow) == pytest.approx(
            detailed["total_goodput_bps"]
        )

    def test_runs_over_a_corpus_trace(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.register_generator(
            "steady", "diurnal", {"duration": 30.0, "jitter": 0.0}, seed=0
        )
        metrics = run_point(
            flows=4,
            isender_flows=0,
            duration=8.0,
            trace="steady",
            corpus_dir=str(tmp_path),
        )
        assert metrics["total_goodput_bps"] > 0.0

    def test_config_fingerprint_tracks_trace_content(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.register_generator("a", "diurnal", {"duration": 30.0}, seed=0)
        store.register_generator("b", "diurnal", {"duration": 30.0}, seed=0)
        store.register_generator("c", "diurnal", {"duration": 30.0}, seed=5)
        entry = DEFAULT_REGISTRY.get("many_flow_contention")

        def fingerprint(trace):
            return entry.config_fingerprint(
                {"trace": trace, "corpus_dir": str(tmp_path), "isender_flows": 0}
            )

        # Same content under different names keys identically; different
        # content (another seed) does not.
        assert fingerprint("a") == fingerprint("b")
        assert fingerprint("a") != fingerprint("c")


class TestCrossBackendDeterminism:
    def test_64_flow_point_is_byte_identical_across_backends(self):
        """The issue's contract: serial, parallel, and async runs of one
        seeded 64-flow contention point serialize to identical bytes."""
        specs = many_flow_specs(
            flow_counts=(64,), seeds=(7,), duration=6.0, isender_flows=0
        )
        outputs = {
            backend: run_specs(specs, backend=backend, workers=2).to_json()
            for backend in ("serial", "parallel", "async")
        }
        assert outputs["serial"] == outputs["parallel"] == outputs["async"]

    def test_repeat_runs_are_identical(self):
        specs = many_flow_specs(flow_counts=(16,), seeds=(3,), duration=4.0)
        first = run_specs(specs).to_json()
        second = run_specs(specs).to_json()
        assert first == second


class TestSenderPoolByteIdentity:
    """Satellite contract: driving the ISender flows through the fused
    :class:`~repro.api.pool.BatchedSenderPool` must be *byte-identical* to
    building N independent senders via ``build_components`` — the pool may
    change how components are constructed and batched, never what any flow
    observes or decides."""

    FUSED_PARAMS = dict(
        isender_flows=4,
        belief_backend="fused",
        rollout_backend="fused",
        policy="cache",
    )

    def test_64_flow_pooled_equals_independent(self):
        kwargs = dict(seed=7, duration=3.0, flows=64, **self.FUSED_PARAMS)
        independent = many_flow_contention(**kwargs, sender_pool=False)
        pooled = many_flow_contention(**kwargs, sender_pool=True)
        assert json.dumps(pooled, sort_keys=True) == json.dumps(
            independent, sort_keys=True
        )

    def test_64_flow_pooled_point_is_byte_identical_across_backends(self):
        specs = many_flow_specs(
            flow_counts=(64,),
            seeds=(7,),
            duration=3.0,
            sender_pool=True,
            **self.FUSED_PARAMS,
        )
        outputs = {
            backend: run_specs(specs, backend=backend, workers=2).to_json()
            for backend in ("serial", "parallel", "async")
        }
        assert outputs["serial"] == outputs["parallel"] == outputs["async"]

    def test_pool_requires_isender_flows(self):
        with pytest.raises(ConfigurationError, match="at least one ISender"):
            many_flow_contention(flows=4, isender_flows=0, sender_pool=True)

    def test_pool_rejects_scalar_belief_backend(self):
        with pytest.raises(ConfigurationError, match="row-ensemble"):
            many_flow_contention(
                flows=2, isender_flows=1, duration=1.0, sender_pool=True
            )
