"""The §3.3 policy-table subsystem: semantics, serialization, fidelity.

``PolicyTable`` must behave like ``PolicyCache`` on the decide path (hit /
miss / learn / evict), survive a JSON round trip keyed by the config
fingerprint, and — precomputed for the Figure-3 default configuration —
reproduce the live planner's decisions on a held-out run at the table's
signature resolution.
"""

from __future__ import annotations

import pytest

from repro.api import PolicyTable, SenderConfig, build_sender, precompute_policy_table
from repro.core import ExpectedUtilityPlanner, ISender
from repro.core.utility import ThroughputUtility
from repro.errors import ConfigurationError
from repro.inference import BeliefState, GaussianKernel, Hypothesis, figure3_prior
from repro.topology.presets import figure2_network


def make_belief() -> BeliefState:
    hypotheses = [
        Hypothesis.from_params(
            {"link_rate_bps": rate, "buffer_capacity_bits": 96_000.0}
        )
        for rate in (10_000.0, 14_000.0)
    ]
    return BeliefState(hypotheses, kernel=GaussianKernel(sigma=0.3))


def make_planner(**kwargs) -> ExpectedUtilityPlanner:
    kwargs.setdefault("top_k", 2)
    return ExpectedUtilityPlanner(ThroughputUtility(), **kwargs)


class TestPolicyTableSemantics:
    def test_hit_miss_and_learning(self):
        table = PolicyTable(make_planner())
        belief = make_belief()
        first = table.decide(belief, now=0.0)
        second = table.decide(belief, now=0.0)
        assert (table.hits, table.misses) == (1, 1)
        assert second is first
        belief.record_send(0, 12_000, 0.0)
        third = table.decide(belief, now=0.0)
        assert (table.hits, table.misses) == (1, 2)
        assert third is not first

    def test_learn_false_keeps_table_frozen(self):
        table = PolicyTable(make_planner(), learn=False)
        belief = make_belief()
        table.decide(belief, now=0.0)
        table.decide(belief, now=0.0)
        assert table.size == 0
        assert (table.hits, table.misses) == (0, 2)

    def test_seed_fills_without_touching_counters(self):
        table = PolicyTable(make_planner())
        belief = make_belief()
        table.seed(belief, now=0.0)
        assert table.size == 1
        assert (table.hits, table.misses) == (0, 0)
        table.decide(belief, now=0.0)
        assert (table.hits, table.misses) == (1, 0)

    def test_eviction_drops_oldest_entry_first(self):
        table = PolicyTable(make_planner(), max_entries=2)
        beliefs = []
        for sends in range(3):
            belief = make_belief()
            for seq in range(sends):
                belief.record_send(seq, 12_000, 0.0)
            beliefs.append(belief)
            table.decide(belief, now=0.0)
        assert table.size == 2
        table.decide(beliefs[0], now=0.0)  # evicted -> miss
        assert table.misses == 4
        table.decide(beliefs[2], now=0.0)  # newest -> hit
        assert table.hits == 1

    def test_decide_without_planner_rejected_on_miss(self):
        table = PolicyTable(top_k=2)
        with pytest.raises(ConfigurationError, match="no fallback planner"):
            table.decide(make_belief(), now=0.0)

    def test_needs_planner_or_top_k(self):
        with pytest.raises(ConfigurationError, match="planner or an explicit top_k"):
            PolicyTable()

    def test_key_is_backend_invariant(self):
        """Scalar and vectorized beliefs hit the same table entries."""
        prior = figure3_prior(
            link_rate_points=2, cross_fraction_points=2, loss_points=2,
            buffer_points=2, fill_points=1,
        )
        table = PolicyTable(make_planner(top_k=4))
        for backend in ("scalar", "vectorized"):
            belief = BeliefState.from_prior(
                prior, kernel=GaussianKernel(sigma=0.3), backend=backend
            )
            belief.record_send(0, 12_000.0, 0.0)
            belief.update(1.0)
            table.decide(belief, 1.0)
        assert (table.hits, table.misses) == (1, 1)


class TestPolicyTableSerialization:
    def build_table(self) -> tuple[SenderConfig, PolicyTable]:
        config = SenderConfig(
            prior=figure3_prior(
                link_rate_points=2, cross_fraction_points=2, loss_points=2,
                buffer_points=2, fill_points=1,
            ),
            belief_backend="vectorized",
            rollout_backend="vectorized",
            policy="table",
        )
        table = precompute_policy_table(config, pilot_duration=10.0, seed=2)
        return config, table

    def test_json_round_trip_preserves_entries(self, tmp_path):
        config, table = self.build_table()
        path = table.to_json(tmp_path / "policy.json")
        loaded = PolicyTable.from_json(path, expected_fingerprint=config.fingerprint())
        assert loaded.size == table.size
        assert loaded.top_k == table.top_k
        assert loaded.queue_resolution_bits == table.queue_resolution_bits
        assert set(loaded._cache) == set(table._cache)
        for key, decision in table._cache.items():
            restored = loaded._cache[key]
            assert restored.action == decision.action
            assert restored.horizon == decision.horizon
            assert restored.hypotheses_evaluated == decision.hypotheses_evaluated
            assert restored.expected_utilities == decision.expected_utilities

    def test_round_trip_preserves_max_entries(self, tmp_path):
        """Regression test: the eviction cap must survive serialization.

        ``to_payload`` used to drop ``max_entries``, so a table precomputed
        with a small cap reloaded at the 65,536 default and grew unbounded
        under runtime learning.
        """
        table = PolicyTable(make_planner(), max_entries=7)
        path = table.to_json(tmp_path / "policy.json")
        loaded = PolicyTable.from_json(path)
        assert loaded.max_entries == 7
        # Artifacts written before the cap was persisted omit the key and
        # were all produced with the construction default.
        payload = table.to_payload()
        del payload["max_entries"]
        legacy = PolicyTable.from_payload(payload)
        assert legacy.max_entries == 65_536

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        _, table = self.build_table()
        path = table.to_json(tmp_path / "policy.json")
        with pytest.raises(ConfigurationError, match="fingerprint"):
            PolicyTable.from_json(path, expected_fingerprint="deadbeefdeadbeef")

    def test_loaded_table_serves_live_beliefs(self, tmp_path):
        """A deserialized table hits on signatures its precompute covered."""
        config, table = self.build_table()
        path = table.to_json(tmp_path / "policy.json")
        loaded = PolicyTable.from_json(path, expected_fingerprint=config.fingerprint())
        network = figure2_network(switch_interval=30.0, seed=7)
        sender = build_sender(config, network, policy_table=loaded)
        assert sender.policy is loaded
        network.network.run(until=10.0)
        assert loaded.hits > 0

    def test_precompute_requires_a_prior(self):
        with pytest.raises(ConfigurationError, match="needs a prior"):
            precompute_policy_table(SenderConfig(policy="table"))

    def test_build_sender_rejects_table_for_different_config(self):
        """A stamped table refuses to serve a config it wasn't computed for."""
        from dataclasses import replace

        config, table = self.build_table()
        other = replace(config, alpha=5.0)
        network = figure2_network(switch_interval=30.0, seed=7)
        with pytest.raises(ConfigurationError, match="fingerprint"):
            build_sender(other, network, policy_table=table)

    def test_fingerprint_covers_explicitly_passed_prior(self):
        """precompute over an explicit prior stamps that prior's identity."""
        prior = figure3_prior(
            link_rate_points=2, cross_fraction_points=2, loss_points=2,
            buffer_points=2, fill_points=1,
        )
        config = SenderConfig(
            belief_backend="vectorized", rollout_backend="vectorized",
            policy="table",
        )
        table = precompute_policy_table(config, prior, pilot_duration=5.0, seed=2)
        assert table.fingerprint == config.with_prior(prior).fingerprint()
        assert table.fingerprint != config.fingerprint()


class TestFigure3HeldOutFidelity:
    """The acceptance criterion: the precomputed table reproduces the live
    planner's decisions on a held-out run at the signature resolution."""

    def test_heldout_decisions_match_live_planner(self):
        from repro.experiments.policy_bench import (
            PolicyBenchConfig,
            run_policy_comparison,
        )

        config = PolicyBenchConfig(
            pilot_duration=30.0,
            heldout_duration=20.0,
            table_decides=50,
            live_decides=3,
        )
        comparison = run_policy_comparison(config, rounds=1)
        assert comparison.heldout_hits > 5, "held-out run barely used the table"
        assert comparison.decisions_match, (
            f"{len(comparison.mismatches)} table hits diverged from live "
            f"planning: {comparison.mismatches[:5]}"
        )
        # The lookup path must already beat live planning handily even in
        # this shortened tier-1 variant (the bench pins the real >=5x gate).
        assert comparison.speedup > 5.0
