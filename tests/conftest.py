"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim.element import Network
from repro.sim.engine import Simulator
from repro.sim.random import RngRegistry


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator starting at time zero."""
    return Simulator()


@pytest.fixture
def network() -> Network:
    """A fresh network container with a fixed seed."""
    return Network(seed=12345)


@pytest.fixture
def rng_registry() -> RngRegistry:
    """A seeded random-stream registry."""
    return RngRegistry(seed=7)
