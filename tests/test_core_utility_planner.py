"""Tests for utility functions, the action grid, the planner, and the policy cache."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    Action,
    ActionGrid,
    AlphaWeightedUtility,
    ExpectedUtilityPlanner,
    LatencyPenaltyUtility,
    PolicyCache,
    ThroughputUtility,
)
from repro.core.utility import ExponentialDiscount
from repro.errors import ConfigurationError, UtilityError
from repro.inference import BeliefState, GaussianKernel, Hypothesis, single_link_prior
from repro.inference.hypothesis import RolloutOutcome


def outcome_with(own=(), cross=(), cross_drops=(), backlog=0.0, horizon=10.0):
    return RolloutOutcome(
        decision_time=0.0,
        action_delay=0.0,
        horizon=horizon,
        own_deliveries=list(own),
        cross_deliveries=list(cross),
        cross_drops=list(cross_drops),
        final_cross_backlog_bits=backlog,
    )


class TestExponentialDiscount:
    def test_validation(self):
        with pytest.raises(UtilityError):
            ExponentialDiscount(0.0)

    def test_now_is_undiscounted(self):
        assert ExponentialDiscount(10.0).factor(5.0, 5.0) == pytest.approx(1.0)

    def test_future_is_discounted(self):
        discount = ExponentialDiscount(10.0)
        assert discount.factor(15.0, 5.0) == pytest.approx(pytest.approx(0.3678794), rel=1e-5)

    def test_past_is_clamped(self):
        assert ExponentialDiscount(10.0).factor(0.0, 5.0) == pytest.approx(1.0)

    @given(lag=st.floats(min_value=0.0, max_value=100.0))
    def test_property_factor_in_unit_interval_and_decreasing(self, lag):
        discount = ExponentialDiscount(7.0)
        factor = discount.factor(lag, 0.0)
        assert 0.0 < factor <= 1.0
        assert discount.factor(lag + 1.0, 0.0) <= factor


class TestAlphaWeightedUtility:
    def test_validation(self):
        with pytest.raises(UtilityError):
            AlphaWeightedUtility(alpha=-1.0)
        with pytest.raises(UtilityError):
            AlphaWeightedUtility(latency_penalty=-0.1)

    def test_own_bits_rewarded(self):
        utility = AlphaWeightedUtility(alpha=0.0, discount_timescale=1e9)
        value = utility.evaluate(outcome_with(own=[(1.0, 12_000, 1.0)]))
        assert value == pytest.approx(12_000)

    def test_survival_scales_reward(self):
        utility = AlphaWeightedUtility(alpha=0.0, discount_timescale=1e9)
        value = utility.evaluate(outcome_with(own=[(1.0, 12_000, 0.8)]))
        assert value == pytest.approx(9_600)

    def test_delay_discounts_reward(self):
        utility = AlphaWeightedUtility(alpha=0.0, discount_timescale=10.0)
        sooner = utility.evaluate(outcome_with(own=[(1.0, 12_000, 1.0)]))
        later = utility.evaluate(outcome_with(own=[(5.0, 12_000, 1.0)]))
        assert sooner > later

    def test_alpha_weights_cross_traffic(self):
        outcome = outcome_with(cross=[(1.0, 12_000, 1.0)])
        low = AlphaWeightedUtility(alpha=0.5, discount_timescale=1e9).evaluate(outcome)
        high = AlphaWeightedUtility(alpha=2.0, discount_timescale=1e9).evaluate(outcome)
        assert high == pytest.approx(4.0 * low)

    def test_latency_penalty_charges_lateness_backlog_and_drops(self):
        utility = AlphaWeightedUtility(alpha=1.0, discount_timescale=1e9, latency_penalty=1.0)
        base = outcome_with(cross=[(2.0, 12_000, 1.0)], horizon=10.0)
        with_backlog = outcome_with(cross=[(2.0, 12_000, 1.0)], backlog=12_000, horizon=10.0)
        with_drop = outcome_with(
            cross=[(2.0, 12_000, 1.0)], cross_drops=[(1.0, 12_000)], horizon=10.0
        )
        assert utility.evaluate(with_backlog) < utility.evaluate(base)
        assert utility.evaluate(with_drop) < utility.evaluate(base)

    def test_throughput_and_latency_presets(self):
        assert ThroughputUtility().alpha == 0.0
        assert LatencyPenaltyUtility().latency_penalty > 0.0

    @given(alpha=st.floats(min_value=0.0, max_value=10.0))
    def test_property_more_cross_value_never_hurts(self, alpha):
        utility = AlphaWeightedUtility(alpha=alpha, discount_timescale=20.0)
        small = outcome_with(cross=[(1.0, 1_000, 1.0)])
        large = outcome_with(cross=[(1.0, 2_000, 1.0)])
        assert utility.evaluate(large) >= utility.evaluate(small)


class TestActions:
    def test_action_validation(self):
        with pytest.raises(ConfigurationError):
            Action(delay=-1.0)

    def test_send_now_flag(self):
        assert Action(0.0).send_now
        assert not Action(0.5).send_now

    def test_grid_scales_with_service_time(self):
        grid = ActionGrid(multiples=(0.0, 1.0, 2.0))
        actions = grid.actions(service_time=0.5)
        assert [a.delay for a in actions] == pytest.approx([0.0, 0.5, 1.0])

    def test_grid_max_delay_cap(self):
        grid = ActionGrid(multiples=(0.0, 10.0), max_delay=2.0)
        actions = grid.actions(service_time=1.0)
        assert [a.delay for a in actions] == pytest.approx([0.0, 2.0])

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError):
            ActionGrid(multiples=())
        with pytest.raises(ConfigurationError):
            ActionGrid(multiples=(-1.0,))
        with pytest.raises(ConfigurationError):
            ActionGrid(max_delay=0.0)
        with pytest.raises(ConfigurationError):
            ActionGrid().actions(service_time=0.0)

    def test_grid_deduplicates_and_sorts(self):
        grid = ActionGrid(multiples=(2.0, 0.0, 2.0, 1.0))
        actions = grid.actions(service_time=1.0)
        assert [a.delay for a in actions] == pytest.approx([0.0, 1.0, 2.0])


def make_belief(points=3):
    prior = single_link_prior(
        link_rate_low=10_000.0, link_rate_high=14_000.0, link_rate_points=points, fill_points=1
    )
    return BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.3))


class TestPlanner:
    def test_validation(self):
        utility = ThroughputUtility()
        with pytest.raises(ConfigurationError):
            ExpectedUtilityPlanner(utility, packet_bits=0)
        with pytest.raises(ConfigurationError):
            ExpectedUtilityPlanner(utility, top_k=0)
        with pytest.raises(ConfigurationError):
            ExpectedUtilityPlanner(utility, horizon=0.0)
        with pytest.raises(ConfigurationError):
            ExpectedUtilityPlanner(utility, horizon_service_multiples=0.0)

    def test_decision_contains_all_candidate_delays(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=3)
        decision = planner.decide(make_belief(), now=0.0)
        assert len(decision.expected_utilities) == len(ActionGrid.DEFAULT_MULTIPLES)
        assert decision.hypotheses_evaluated == 3
        assert decision.horizon > 0

    def test_empty_link_sends_now(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=3)
        decision = planner.decide(make_belief(), now=0.0)
        assert decision.send_now

    def test_busy_link_defers(self):
        belief = make_belief(points=1)
        # Put three packets into every hypothesis: the link is busy for three
        # service times, so sending again immediately buys nothing.
        for seq in range(3):
            belief.record_send(seq, 12_000, 0.0)
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=1)
        decision = planner.decide(belief, now=0.0)
        assert not decision.send_now
        assert decision.delay > 0

    def test_fixed_horizon_is_respected(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), horizon=7.5, top_k=1)
        decision = planner.decide(make_belief(points=1), now=0.0)
        assert decision.horizon == pytest.approx(7.5)

    def test_rollout_counter_increases(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=2)
        planner.decide(make_belief(), now=0.0)
        assert planner.rollouts_performed == 2 * len(ActionGrid.DEFAULT_MULTIPLES)


class TestPolicyCache:
    def test_cache_hits_on_repeated_belief(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=2)
        cache = PolicyCache(planner)
        belief = make_belief()
        first = cache.decide(belief, now=0.0)
        second = cache.decide(belief, now=0.0)
        assert cache.hits == 1
        assert cache.misses == 1
        assert first.delay == second.delay

    def test_cache_misses_on_different_belief_state(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=2)
        cache = PolicyCache(planner)
        belief = make_belief()
        cache.decide(belief, now=0.0)
        belief.record_send(0, 12_000, 0.0)
        cache.decide(belief, now=0.0)
        assert cache.misses == 2

    def test_cache_size_and_clear(self):
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=2)
        cache = PolicyCache(planner)
        cache.decide(make_belief(), now=0.0)
        assert cache.size == 1
        cache.clear()
        assert cache.size == 0

    @pytest.mark.parametrize("rollout_backend", ["scalar", "vectorized"])
    def test_hit_miss_semantics_per_rollout_backend(self, rollout_backend):
        planner = ExpectedUtilityPlanner(
            ThroughputUtility(), top_k=2, rollout_backend=rollout_backend
        )
        cache = PolicyCache(planner)
        belief = make_belief()
        first = cache.decide(belief, now=0.0)
        second = cache.decide(belief, now=0.0)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second is first  # the cached Decision object itself
        belief.record_send(0, 12_000, 0.0)
        third = cache.decide(belief, now=0.0)
        assert (cache.hits, cache.misses) == (1, 2)
        assert third is not first

    @pytest.mark.parametrize("rollout_backend", ["scalar", "vectorized"])
    def test_cached_decisions_keep_their_diagnostics(self, rollout_backend):
        planner = ExpectedUtilityPlanner(
            ThroughputUtility(), top_k=3, rollout_backend=rollout_backend
        )
        cache = PolicyCache(planner)
        belief = make_belief()
        cache.decide(belief, now=0.0)
        cached = cache.decide(belief, now=0.0)
        assert cache.hits == 1
        assert cached.hypotheses_evaluated == 3
        assert cached.horizon > 0
        assert len(cached.expected_utilities) == len(ActionGrid.DEFAULT_MULTIPLES)
        # The cache does not re-run the fan-out on a hit.
        assert planner.rollouts_performed == 3 * len(ActionGrid.DEFAULT_MULTIPLES)

    @pytest.mark.parametrize("rollout_backend", ["scalar", "vectorized"])
    def test_eviction_drops_oldest_entry_first(self, rollout_backend):
        planner = ExpectedUtilityPlanner(
            ThroughputUtility(), top_k=2, rollout_backend=rollout_backend
        )
        cache = PolicyCache(planner, max_entries=2)
        beliefs = []
        for sends in range(3):
            belief = make_belief()
            for seq in range(sends):
                belief.record_send(seq, 12_000, 0.0)
            beliefs.append(belief)
            cache.decide(belief, now=0.0)
        assert cache.size == 2  # capped
        assert cache.misses == 3
        # The oldest key (zero sends) was evicted: deciding it again misses...
        cache.decide(beliefs[0], now=0.0)
        assert cache.misses == 4
        # ...while the newest entries still hit.
        cache.decide(beliefs[2], now=0.0)
        assert cache.hits == 1

    @pytest.mark.parametrize("cap", [1, 2])
    def test_store_update_in_place_never_evicts_at_capacity(self, cap):
        """Re-storing an existing key at the size cap must not evict.

        Regression test: ``_store`` used to evict whenever the cache was
        full, so updating an entry in place at ``max_entries`` pushed an
        unrelated cached decision out (and at ``max_entries=1`` evicted
        the very entry being updated before re-inserting it).
        """
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=2)
        cache = PolicyCache(planner, max_entries=cap)
        sentinels = {("key", index): object() for index in range(cap)}
        for key, decision in sentinels.items():
            cache._store(key, decision)
        assert cache.size == cap
        # Update the newest key in place: nothing may be evicted.
        replacement = object()
        cache._store(("key", cap - 1), replacement)
        assert cache.size == cap
        assert set(cache._cache) == set(sentinels)
        assert cache._cache[("key", cap - 1)] is replacement
        # A genuinely new key at capacity still evicts the oldest.
        cache._store(("key", cap), object())
        assert cache.size == cap
        assert ("key", 0) not in cache._cache

    def test_cache_key_is_backend_invariant(self):
        """Scalar and vectorized beliefs produce the same cache key."""
        from repro.inference import figure3_prior

        prior = figure3_prior(
            link_rate_points=2, cross_fraction_points=2, loss_points=2,
            buffer_points=2, fill_points=1,
        )
        keys = []
        for backend in ("scalar", "vectorized"):
            belief = BeliefState.from_prior(
                prior, kernel=GaussianKernel(sigma=0.3), backend=backend
            )
            belief.record_send(0, 12_000, 0.0)
            belief.update(1.0)
            keys.append(belief.decision_signature(4, 3_000.0))
        assert keys[0] == keys[1]
