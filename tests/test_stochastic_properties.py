"""Statistical-property tests for the stochastic elements.

Under a fixed seed the empirical behaviour of LOSS, JITTER, and
INTERMITTENT must sit within tight tolerances of their configured
parameters — the properties the paper's inference engine relies on when it
treats these elements as likelihood terms.
"""

from __future__ import annotations

import math

import pytest

from repro.elements.collector import Collector
from repro.elements.intermittent import Intermittent
from repro.elements.jitter import Jitter
from repro.elements.loss import Loss
from repro.sim.element import Network
from repro.sim.packet import Packet


def _feed(element, sim, count: int, packet_bits: float = 8_000.0) -> None:
    for seq in range(count):
        element.receive(Packet(seq=seq, flow="probe", size_bits=packet_bits, created_at=sim.now))


class TestLossRates:
    @pytest.mark.parametrize("rate", [0.05, 0.2, 0.5])
    def test_empirical_rate_matches_configured(self, rate):
        network = Network(seed=42)
        loss = Loss(rate=rate, name="loss-under-test")
        sink = Collector(name="sink")
        loss.connect(sink)
        network.add(loss)

        trials = 20_000
        _feed(loss, network.sim, trials)

        observed = loss.observed_loss_rate
        # Three-sigma band of a binomial with n=20k.
        sigma = math.sqrt(rate * (1.0 - rate) / trials)
        assert abs(observed - rate) < 3.0 * sigma + 1e-12
        assert loss.drop_count + loss.pass_count == trials

    def test_zero_and_one_are_exact(self):
        network = Network(seed=1)
        never = Loss(rate=0.0, name="never")
        always = Loss(rate=1.0, name="always")
        sink_a, sink_b = Collector(name="sink-a"), Collector(name="sink-b")
        never.connect(sink_a)
        always.connect(sink_b)
        network.add(never, always)

        _feed(never, network.sim, 500)
        _feed(always, network.sim, 500)
        assert never.drop_count == 0
        assert always.drop_count == 500

    def test_same_seed_same_drops_different_seed_different_drops(self):
        def drops(seed: int) -> int:
            network = Network(seed=seed)
            loss = Loss(rate=0.3, name="loss-under-test")
            loss.connect(Collector(name="sink"))
            network.add(loss)
            _feed(loss, network.sim, 2_000)
            return loss.drop_count

        assert drops(7) == drops(7)
        assert drops(7) != drops(8)


class TestJitterProbability:
    @pytest.mark.parametrize("probability", [0.1, 0.5])
    def test_empirical_jitter_fraction(self, probability):
        network = Network(seed=13)
        jitter = Jitter(delay=0.05, probability=probability, name="jitter-under-test")
        sink = Collector(name="sink")
        jitter.connect(sink)
        network.add(jitter)

        trials = 20_000
        _feed(jitter, network.sim, trials)

        observed = jitter.jittered_count / trials
        sigma = math.sqrt(probability * (1.0 - probability) / trials)
        assert abs(observed - probability) < 3.0 * sigma + 1e-12
        assert jitter.jittered_count + jitter.untouched_count == trials

    def test_jittered_packets_are_delayed_by_configured_amount(self):
        network = Network(seed=13)
        jitter = Jitter(delay=0.5, probability=1.0, name="always-jitter")
        sink = Collector(name="sink")
        jitter.connect(sink)
        network.add(jitter)

        jitter.receive(Packet(seq=0, flow="probe", size_bits=8_000.0, created_at=0.0))
        assert sink.count("probe") == 0  # held back until the delay elapses
        network.run()
        assert sink.count("probe") == 1
        assert network.sim.now == pytest.approx(0.5)


class RecordingIntermittent(Intermittent):
    """Intermittent gate that records the time of every switch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.switch_log: list[float] = []

    def _switch(self) -> None:
        self.switch_log.append(self.sim.now)
        super()._switch()


class TestIntermittentSwitching:
    def test_mean_dwell_time_matches_configuration(self):
        mean = 2.0
        network = Network(seed=21)
        gate = RecordingIntermittent(mean_time_to_switch=mean, name="gate-under-test")
        network.add(gate)
        horizon = 6_000.0
        network.run(until=horizon)

        dwells = [
            later - earlier for earlier, later in zip(gate.switch_log, gate.switch_log[1:])
        ]
        assert len(dwells) > 1_000
        observed_mean = sum(dwells) / len(dwells)
        # Exponential dwell: sd of the sample mean is mean/sqrt(n).
        assert abs(observed_mean - mean) < 4.0 * mean / math.sqrt(len(dwells))

    def test_dwell_times_look_memoryless(self):
        network = Network(seed=22)
        gate = RecordingIntermittent(mean_time_to_switch=1.5, name="gate-under-test")
        network.add(gate)
        network.run(until=4_500.0)

        dwells = [
            later - earlier for earlier, later in zip(gate.switch_log, gate.switch_log[1:])
        ]
        mean = sum(dwells) / len(dwells)
        variance = sum((dwell - mean) ** 2 for dwell in dwells) / (len(dwells) - 1)
        # An exponential's coefficient of variation is 1.
        assert 0.9 < math.sqrt(variance) / mean < 1.1

    def test_switch_probability_matches_empirical_dwell_cdf(self):
        mean = 2.0
        network = Network(seed=23)
        gate = RecordingIntermittent(mean_time_to_switch=mean, name="gate-under-test")
        network.add(gate)
        network.run(until=6_000.0)

        dwells = [
            later - earlier for earlier, later in zip(gate.switch_log, gate.switch_log[1:])
        ]
        for interval in (0.5, 1.0, 3.0):
            predicted = gate.switch_probability(interval)
            empirical = sum(1 for dwell in dwells if dwell <= interval) / len(dwells)
            assert abs(predicted - empirical) < 0.04
