"""Tests for the BUFFER + THROUGHPUT queueing pair and the DELAY element."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.elements import Buffer, Collector, Delay, Throughput
from repro.errors import ConfigurationError
from repro.sim.element import Network
from repro.sim.packet import Packet


def make_chain(network, capacity_bits=48_000, rate_bps=12_000, initial_fill=0.0):
    """Buffer -> Throughput -> Collector attached to ``network``."""
    buffer = Buffer(capacity_bits=capacity_bits, initial_fill_bits=initial_fill, name="buf")
    link = Throughput(rate_bps=rate_bps, name="link")
    sink = Collector(name="sink")
    buffer.connect(link)
    link.connect(sink)
    network.add(buffer)
    return buffer, link, sink


class TestThroughput:
    def test_single_packet_takes_serialization_time(self, network):
        link = Throughput(rate_bps=12_000, name="link")
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        link.receive(Packet(seq=0, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert sink.count() == 1
        assert sink.packets[0].delivered_at == pytest.approx(1.0)

    def test_back_to_back_packets_queue_internally(self, network):
        link = Throughput(rate_bps=12_000, name="link")
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(3):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        deliveries = [p.delivered_at for p in sink.packets]
        assert deliveries == pytest.approx([1.0, 2.0, 3.0])
        assert link.packets_transmitted == 3
        assert link.bits_transmitted == pytest.approx(36_000)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            Throughput(rate_bps=0)

    def test_idle_flag(self, network):
        link = Throughput(rate_bps=1_000, name="link")
        link.connect(Collector(name="sink"))
        network.add(link)
        network.start()
        assert link.idle
        link.receive(Packet(seq=0, flow="f", size_bits=1_000))
        assert not link.idle
        network.run()
        assert link.idle


class TestBuffer:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Buffer(capacity_bits=0)
        with pytest.raises(ConfigurationError):
            Buffer(capacity_bits=100, initial_fill_bits=200)

    def test_packets_flow_through_fifo(self, network):
        buffer, link, sink = make_chain(network)
        network.start()
        for seq in range(3):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert [p.seq for p in sink.packets] == [0, 1, 2]
        assert buffer.drop_count == 0

    def test_tail_drop_when_full(self, network):
        # Capacity of 24,000 bits holds two 12,000-bit packets in the queue;
        # one more is in service at the link, so the 4th and later arrivals
        # of an instantaneous burst are dropped.
        buffer, link, sink = make_chain(network, capacity_bits=24_000)
        network.start()
        for seq in range(6):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        assert buffer.drop_count == 3
        network.run()
        assert sink.count() == 3
        assert [p.seq for p in sink.packets] == [0, 1, 2]
        dropped_seqs = [p.seq for p in buffer.dropped_packets]
        assert dropped_seqs == [3, 4, 5]

    def test_occupancy_tracks_queue(self, network):
        buffer, link, sink = make_chain(network, capacity_bits=48_000)
        network.start()
        assert buffer.occupancy_bits == 0
        for seq in range(3):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        # One packet is in service, two remain queued.
        assert buffer.occupancy_packets == 2
        assert buffer.occupancy_bits == pytest.approx(24_000)
        network.run()
        assert buffer.occupancy_bits == 0
        assert buffer.peak_occupancy_bits >= 24_000

    def test_initial_fill_delays_first_packet(self, network):
        # 24,000 bits of background fill ahead of us on a 12,000 bit/s link
        # delays our first packet by 2 seconds of drain plus its own
        # serialization time.
        buffer, link, sink = make_chain(network, capacity_bits=96_000, initial_fill=24_000)
        network.start()
        buffer.receive(Packet(seq=0, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        ours = [p for p in sink.packets if p.flow == "f"]
        assert len(ours) == 1
        assert ours[0].delivered_at == pytest.approx(3.0)
        background = [p for p in sink.packets if p.flow == "background"]
        assert sum(p.size_bits for p in background) == pytest.approx(24_000)

    def test_pass_through_without_draining_link(self, network):
        buffer = Buffer(capacity_bits=12_000, name="buf")
        sink = Collector(name="sink")
        buffer.connect(sink)
        network.add(buffer)
        network.start()
        for seq in range(5):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000))
        assert sink.count() == 5
        assert buffer.drop_count == 0

    def test_queued_flows_breakdown(self, network):
        buffer, link, sink = make_chain(network, capacity_bits=48_000)
        network.start()
        buffer.receive(Packet(seq=0, flow="a", size_bits=12_000))
        buffer.receive(Packet(seq=1, flow="b", size_bits=12_000))
        buffer.receive(Packet(seq=2, flow="b", size_bits=12_000))
        assert buffer.queued_flows() == {"b": 2}


class TestDelay:
    def test_fixed_delay(self, network):
        delay = Delay(delay=0.5, name="delay")
        sink = Collector(name="sink")
        delay.connect(sink)
        network.add(delay)
        network.start()
        delay.receive(Packet(seq=0, flow="f", sent_at=0.0))
        network.run()
        assert sink.packets[0].delivered_at == pytest.approx(0.5)

    def test_zero_delay_is_synchronous(self, network):
        delay = Delay(delay=0.0, name="delay")
        sink = Collector(name="sink")
        delay.connect(sink)
        network.add(delay)
        network.start()
        delay.receive(Packet(seq=0, flow="f"))
        assert sink.count() == 1

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigurationError):
            Delay(delay=-1.0)

    def test_preserves_order(self, network):
        delay = Delay(delay=0.25, name="delay")
        sink = Collector(name="sink")
        delay.connect(sink)
        network.add(delay)
        network.start()
        network.sim.schedule(0.0, delay.receive, Packet(seq=0, flow="f"))
        network.sim.schedule(0.1, delay.receive, Packet(seq=1, flow="f"))
        network.run()
        assert [p.seq for p in sink.packets] == [0, 1]


class TestQueueingProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1_000, max_value=20_000), min_size=1, max_size=20),
        capacity=st.integers(min_value=10_000, max_value=200_000),
    )
    def test_conservation_delivered_plus_dropped_equals_offered(self, sizes, capacity):
        network = Network(seed=1)
        buffer = Buffer(capacity_bits=capacity, name="buf")
        link = Throughput(rate_bps=10_000, name="link")
        sink = Collector(name="sink")
        buffer.connect(link)
        link.connect(sink)
        network.add(buffer)
        network.start()
        for seq, size in enumerate(sizes):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=size, sent_at=0.0))
        network.run()
        assert sink.count() + buffer.drop_count == len(sizes)
        delivered_bits = sum(p.size_bits for p in sink.packets)
        dropped_bits = sum(p.size_bits for p in buffer.dropped_packets)
        assert delivered_bits + dropped_bits == pytest.approx(sum(sizes))

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.integers(min_value=1_000, max_value=20_000), min_size=1, max_size=20),
    )
    def test_occupancy_never_exceeds_capacity(self, sizes):
        capacity = 50_000
        network = Network(seed=1)
        buffer = Buffer(capacity_bits=capacity, name="buf")
        link = Throughput(rate_bps=5_000, name="link")
        buffer.connect(link)
        link.connect(Collector(name="sink"))
        network.add(buffer)
        network.start()
        for seq, size in enumerate(sizes):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=size, sent_at=0.0))
            assert buffer.occupancy_bits <= capacity + 1e-6
        network.run()
        assert buffer.occupancy_bits == 0
