"""Cache housekeeping suite: GC pruning, quarantine handling, CLI surface.

Covers the :meth:`~repro.runner.cache.ResultCache.gc` age/size pruning and
quarantine sweep, the ``python -m repro.runner cache`` subcommand built on
them, and the policy-table quarantine fix: a corrupt cached table must be
*moved* to ``quarantine/`` (the ResultCache convention) and counted, never
silently overwritten in place.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.api.config import SenderConfig
from repro.api.policy import (
    load_or_precompute_policy_table,
    policy_table_cache_path,
    table_quarantine_count,
)
from repro.inference import single_link_prior
from repro.runner import ResultCache, grid, run_specs
from repro.runner.cli import main as cli_main

#: Cheap built-in grid used to populate caches (sub-second per point).
SPECS = grid("single_link_tcp", base={"duration": 2.0}, loss_rate=(0.0, 0.05))


def populate(cache_dir: Path) -> ResultCache:
    cache = ResultCache(cache_dir)
    run_specs(SPECS, cache=cache)
    return cache


def age_files(cache: ResultCache, seconds: float) -> None:
    """Back-date every artifact so age-based pruning has something to cut."""
    stamp = time.time() - seconds
    for path in cache.artifact_files():
        os.utime(path, (stamp, stamp))


class TestResultCacheGC:
    def test_stats_counts_entries_and_quarantine(self, tmp_path):
        cache = populate(tmp_path)
        stats = cache.stats()
        assert stats.entries == len(SPECS)
        assert stats.bytes > 0
        assert stats.quarantined == 0

        quarantine = tmp_path / "quarantine"
        quarantine.mkdir()
        (quarantine / "bad.json").write_text("{broken")
        stats = cache.stats()
        assert stats.quarantined == 1
        assert stats.quarantined_bytes > 0

    def test_age_prune_removes_only_old_entries(self, tmp_path):
        cache = populate(tmp_path)
        age_files(cache, seconds=10 * 86_400)
        # A fresh entry written now must survive a 5-day cutoff.
        fresh = run_specs(
            grid("single_link_tcp", base={"duration": 2.0}, loss_rate=(0.1,)),
            cache=cache,
        )
        assert len(fresh) == 1

        report = cache.gc(max_age_s=5 * 86_400)
        assert not report.dry_run
        assert len(report.removed) == len(SPECS)
        assert report.freed_bytes > 0
        assert cache.stats().entries == 1

    def test_size_prune_removes_oldest_first(self, tmp_path):
        cache = populate(tmp_path)
        paths = sorted(cache.artifact_files(), key=lambda p: p.stat().st_mtime)
        # Make the first artifact clearly the oldest.
        stamp = time.time() - 3_600
        os.utime(paths[0], (stamp, stamp))
        total = sum(path.stat().st_size for path in cache.artifact_files())
        keep = total - paths[0].stat().st_size

        report = cache.gc(max_total_bytes=keep)
        assert [path.name for path in report.removed] == [paths[0].name]
        assert cache.stats().entries == len(SPECS) - 1

    def test_dry_run_touches_nothing(self, tmp_path):
        cache = populate(tmp_path)
        age_files(cache, seconds=10 * 86_400)
        report = cache.gc(max_age_s=0.0, dry_run=True)
        assert report.dry_run
        assert len(report.removed) == len(SPECS)
        assert cache.stats().entries == len(SPECS)  # nothing actually pruned

    def test_quarantine_sweep(self, tmp_path):
        cache = populate(tmp_path)
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir()
        (quarantine / "old-corruption.json").write_text("{broken")

        untouched = cache.gc(max_age_s=10 * 86_400)
        assert untouched.quarantine_removed == []
        assert (quarantine / "old-corruption.json").exists()

        swept = cache.gc(sweep_quarantine=True)
        assert len(swept.quarantine_removed) == 1
        assert swept.quarantine_freed_bytes > 0
        assert not (quarantine / "old-corruption.json").exists()
        assert cache.stats().entries == len(SPECS)  # artifacts untouched

    def test_corpus_blobs_prune_but_manifest_survives(self, tmp_path):
        """Corpus trace blobs are regenerable artifacts; the manifest is not."""
        from repro.corpus import CorpusStore

        cache = populate(tmp_path)
        store = CorpusStore(tmp_path / "corpus")
        store.register_generator("mk", "markov_onoff", {"duration": 10.0}, seed=1)
        store.register_generator("dd", "diurnal", {"duration": 10.0}, seed=2)

        stats = cache.stats()
        assert stats.corpus_entries == 2
        assert stats.corpus_bytes > 0
        # Result entries and corpus blobs are counted separately.
        assert stats.entries == len(SPECS)

        age_files(cache, seconds=10 * 86_400)
        for path in cache.corpus_files():
            stamp = time.time() - 10 * 86_400
            os.utime(path, (stamp, stamp))
        report = cache.gc(max_age_s=5 * 86_400)
        assert len(report.removed) == len(SPECS) + 2
        assert cache.corpus_manifest_path().exists()
        assert cache.stats().corpus_entries == 0

        # The store transparently rebuilds a pruned generator blob.
        rebuilt = store.get("mk")
        assert rebuilt.digest == store.digest_of("mk")
        assert cache.stats().corpus_entries == 1

    def test_corpus_manifest_survives_total_prune(self, tmp_path):
        from repro.corpus import CorpusStore

        cache = ResultCache(tmp_path)
        store = CorpusStore(tmp_path / "corpus")
        store.register_generator("mk", "markov_onoff", {"duration": 10.0}, seed=1)
        cache.gc(max_age_s=0.0, max_total_bytes=0, sweep_quarantine=True)
        assert cache.corpus_manifest_path().exists()
        assert store.names() == ["mk"]

    def test_journal_is_never_pruned(self, tmp_path):
        """The sweep journal records history, not regenerable artifacts."""
        cache = populate(tmp_path)
        journal_dir = tmp_path / "journal"
        journal_dir.mkdir(exist_ok=True)
        marker = journal_dir / "sweep-abc123.jsonl"
        marker.write_text('{"event": "point_done"}\n')
        stamp = time.time() - 365 * 86_400
        os.utime(marker, (stamp, stamp))

        cache.gc(max_age_s=0.0, max_total_bytes=0, sweep_quarantine=True)
        assert marker.exists()


class TestCacheCli:
    def test_list_reports_stats(self, tmp_path, capsys):
        populate(tmp_path)
        assert cli_main(["cache", "--cache-dir", str(tmp_path), "list"]) == 0
        output = capsys.readouterr().out
        assert f"cache: {tmp_path}" in output
        assert f"entries: {len(SPECS)}" in output
        assert "quarantined: 0" in output

    def test_list_reports_corpus_traces(self, tmp_path, capsys):
        from repro.corpus import CorpusStore

        populate(tmp_path)
        CorpusStore(tmp_path / "corpus").register_generator(
            "mk", "markov_onoff", {"duration": 10.0}, seed=1
        )
        assert cli_main(["cache", "--cache-dir", str(tmp_path), "list"]) == 0
        output = capsys.readouterr().out
        assert "corpus traces: 1" in output
        assert "manifest never pruned" in output

    def test_prune_by_age_and_quarantine(self, tmp_path, capsys):
        cache = populate(tmp_path)
        age_files(cache, seconds=10 * 86_400)
        quarantine = tmp_path / "quarantine"
        quarantine.mkdir()
        (quarantine / "bad.json").write_text("{broken")

        code = cli_main(
            [
                "cache", "--cache-dir", str(tmp_path), "prune",
                "--max-age-days", "5", "--sweep-quarantine",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert f"removed: {len(SPECS)} entr(ies)" in output
        assert "quarantine removed: 1 file(s)" in output
        assert cache.stats().entries == 0
        assert cache.stats().quarantined == 0

    def test_prune_dry_run_leaves_cache_alone(self, tmp_path, capsys):
        cache = populate(tmp_path)
        age_files(cache, seconds=10 * 86_400)
        code = cli_main(
            [
                "cache", "--cache-dir", str(tmp_path), "prune",
                "--max-age-days", "0", "--dry-run",
            ]
        )
        assert code == 0
        assert "would remove" in capsys.readouterr().out
        assert cache.stats().entries == len(SPECS)

    def test_prune_without_criteria_is_a_usage_error(self, tmp_path, capsys):
        populate(tmp_path)
        assert cli_main(["cache", "--cache-dir", str(tmp_path), "prune"]) == 2
        assert "at least one criterion" in capsys.readouterr().err

    def test_missing_cache_dir_exits_2(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert cli_main(["cache", "list"]) == 2
        assert "no cache directory" in capsys.readouterr().err


class TestPolicyTableQuarantine:
    """The satellite fix: corrupt cached tables are quarantined, not
    silently recomputed over."""

    def fast_config(self) -> SenderConfig:
        return SenderConfig(
            prior=single_link_prior(link_rate_points=2, fill_points=1),
            top_k=4,
            max_hypotheses=32,
            belief_backend="vectorized",
            rollout_backend="vectorized",
            policy="table",
        )

    PRECOMPUTE = dict(pilot_duration=5.0, burst_levels=(0, 2), seed=2)

    def test_corrupt_cached_table_is_moved_to_quarantine(self, tmp_path):
        config = self.fast_config()
        table = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.PRECOMPUTE
        )
        assert not table.loaded_from_cache
        path = policy_table_cache_path(tmp_path, config, self.PRECOMPUTE)
        assert path.exists()

        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write
        before = table_quarantine_count()

        healed = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.PRECOMPUTE
        )
        assert not healed.loaded_from_cache  # recomputed, not trusted
        assert healed.size == table.size
        assert table_quarantine_count() == before + 1
        quarantined = tmp_path / "quarantine" / path.name
        assert quarantined.exists()
        assert quarantined.read_bytes() == data[: len(data) // 2]
        assert path.exists()  # the healed recompute wrote a fresh artifact

    def test_fingerprint_mismatch_is_quarantined_too(self, tmp_path):
        config = self.fast_config()
        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.PRECOMPUTE)
        path = policy_table_cache_path(tmp_path, config, self.PRECOMPUTE)
        text = path.read_text().replace(config.fingerprint(), "f" * 16)
        path.write_text(text)
        before = table_quarantine_count()

        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.PRECOMPUTE)
        assert table_quarantine_count() == before + 1
        assert (tmp_path / "quarantine" / path.name).exists()

    def test_clean_reload_does_not_quarantine(self, tmp_path):
        config = self.fast_config()
        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.PRECOMPUTE)
        before = table_quarantine_count()
        reloaded = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.PRECOMPUTE
        )
        assert reloaded.loaded_from_cache
        assert table_quarantine_count() == before
        assert not (tmp_path / "quarantine").exists()
