"""Property-based invariants of :class:`~repro.inference.belief.BeliefState`.

Seeded stdlib-:mod:`random` exploration (no third-party fuzzing dependency)
of the invariants every belief backend must hold at *every* point of *any*
update trajectory — not just the endpoints the equivalence suites compare:

* weights come back normalized (sum 1) and non-negative after each
  evolve/score/compact/prune cycle;
* the ensemble never exceeds ``max_hypotheses``, whatever forking does;
* ``effective_sample_size`` stays within ``[1, len]`` and ``entropy``
  within ``[0, ln(len)]``;
* ``top(k)`` is weight-sorted and consistent with ``map_estimate``;
* ``decision_signature`` is a pure function of the belief: repeated calls
  and no-op round trips (a zero-elapsed update with no acknowledgements)
  leave it unchanged — the property the policy cache/table keys rely on.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.inference import BeliefState, GaussianKernel, figure3_prior

#: Random trajectories explored per backend.
TRAJECTORIES = 12

#: Queue resolution used for the signature-stability checks.
RESOLUTION_BITS = 3_000.0

PACKET_BITS = 12_000.0

BACKENDS = ("scalar", "vectorized")


def build_belief(backend: str, max_hypotheses: int) -> BeliefState:
    return BeliefState.from_prior(
        figure3_prior(
            link_rate_points=2,
            cross_fraction_points=2,
            loss_points=2,
            buffer_points=2,
            fill_points=1,
        ),
        backend=backend,
        kernel=GaussianKernel(sigma=0.5),
        max_hypotheses=max_hypotheses,
        on_degenerate="keep",
    )


def random_step(rng: random.Random, belief: BeliefState, now: float, seq: int):
    """Apply one random send-or-update step; returns the new (now, seq)."""
    if rng.random() < 0.5:
        belief.record_send(seq, PACKET_BITS, now)
        return now + rng.uniform(0.05, 0.8), seq + 1
    now += rng.uniform(0.2, 4.0)
    acks = []
    from repro.inference import AckObservation

    for pending in sorted(set(range(seq)) - belief.acked_seqs):
        if rng.random() < 0.4:
            acks.append(
                AckObservation(
                    seq=pending,
                    received_at=now - rng.uniform(0.0, 0.3),
                    ack_at=now,
                )
            )
    belief.update(now, acks)
    return now, seq


def assert_invariants(belief: BeliefState, max_hypotheses: int, context: str):
    weights = belief.weights
    assert len(belief) >= 1, context
    if belief.updates_applied > 0:
        # The cap is enforced by the update cycle's prune; the raw prior may
        # legitimately exceed it until the first update runs.
        assert len(belief) <= max_hypotheses, context
    assert len(weights) == len(belief), context
    assert all(weight >= 0.0 for weight in weights), context
    assert sum(weights) == pytest.approx(1.0, abs=1e-9), context

    ess = belief.effective_sample_size()
    assert 1.0 - 1e-9 <= ess <= len(belief) + 1e-9, context
    entropy = belief.entropy()
    assert -1e-12 <= entropy <= math.log(len(belief)) + 1e-9, context

    top = belief.top(len(belief))
    top_weights = [weight for _, weight in top]
    assert top_weights == sorted(top_weights, reverse=True), context
    assert belief.map_estimate().params == top[0][0].params, context

    marginal = belief.posterior_marginal("link_rate_bps")
    assert sum(marginal.values()) == pytest.approx(1.0, abs=1e-9), context


class TestBeliefInvariants:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_invariants_hold_along_random_trajectories(self, backend):
        for trajectory in range(TRAJECTORIES):
            rng = random.Random(1_000 + trajectory)
            max_hypotheses = rng.choice((4, 16, 48))
            belief = build_belief(backend, max_hypotheses)
            now, seq = 0.0, 0
            for step in range(rng.randint(3, 7)):
                now, seq = random_step(rng, belief, now, seq)
                assert_invariants(
                    belief,
                    max_hypotheses,
                    f"backend={backend} trajectory={trajectory} step={step}",
                )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_weights_renormalize_even_when_degenerate(self, backend):
        from repro.inference import AckObservation, ExactMatchKernel

        belief = BeliefState.from_prior(
            figure3_prior(link_rate_points=2, fill_points=1),
            backend=backend,
            kernel=ExactMatchKernel(tolerance=1e-6),
            max_hypotheses=32,
            on_degenerate="keep",
        )
        belief.record_send(0, PACKET_BITS, 0.0)
        # An impossibly early ack rejects every hypothesis (degenerate keep).
        belief.update(0.05, [AckObservation(seq=0, received_at=0.05, ack_at=0.05)])
        assert belief.degenerate_updates >= 1
        assert_invariants(belief, 32, f"backend={backend} degenerate")


class TestDecisionSignatureStability:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_signature_is_pure_and_survives_noop_round_trips(self, backend):
        for trajectory in range(TRAJECTORIES):
            rng = random.Random(2_000 + trajectory)
            belief = build_belief(backend, max_hypotheses=32)
            now, seq = 0.0, 0
            for _ in range(rng.randint(2, 5)):
                now, seq = random_step(rng, belief, now, seq)
            # Settle at `now` so the round trip below is genuinely no-op —
            # a trajectory ending in a send still has time to make up.
            belief.update(now, [])
            top_k = rng.choice((1, 4, 8))
            context = f"backend={backend} trajectory={trajectory}"

            signature = belief.decision_signature(top_k, RESOLUTION_BITS)
            # Pure: recomputing must not perturb or depend on hidden state.
            assert belief.decision_signature(top_k, RESOLUTION_BITS) == signature, context

            # No-op round trip: zero elapsed time, no acknowledgements.
            updates_before = belief.updates_applied
            belief.update(now, [])
            assert belief.updates_applied == updates_before + 1, context
            assert belief.decision_signature(top_k, RESOLUTION_BITS) == signature, context

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_signature_is_hashable_and_resolution_sensitive(self, backend):
        belief = build_belief(backend, max_hypotheses=32)
        belief.record_send(0, PACKET_BITS, 0.0)
        belief.update(1.0, [])
        signature = belief.decision_signature(4, RESOLUTION_BITS)
        hash(signature)  # usable as a cache/table key
        assert len(signature) <= 4
        # A full-ensemble signature refines the truncated one.
        wide = belief.decision_signature(len(belief), RESOLUTION_BITS)
        assert wide[: len(signature)] == signature
