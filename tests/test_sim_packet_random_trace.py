"""Unit tests for packets, random streams, and tracing."""

from __future__ import annotations

import pytest

from repro.sim.packet import Packet
from repro.sim.random import RngRegistry
from repro.sim.trace import TraceRecorder
from repro.units import (
    DEFAULT_PACKET_BITS,
    bytes_to_bits,
    bits_to_bytes,
    from_ms,
    kbps,
    mbps,
    packets_to_bits,
    to_ms,
    transmission_time,
)


class TestPacket:
    def test_defaults(self):
        packet = Packet(seq=1, flow="isender")
        assert packet.size_bits == DEFAULT_PACKET_BITS
        assert packet.in_flight
        assert packet.delay is None

    def test_delay_uses_sent_at_when_available(self):
        packet = Packet(seq=0, flow="f", created_at=1.0, sent_at=2.0)
        packet.delivered_at = 5.0
        assert packet.delay == pytest.approx(3.0)

    def test_delay_falls_back_to_created_at(self):
        packet = Packet(seq=0, flow="f", created_at=1.0)
        packet.delivered_at = 4.0
        assert packet.delay == pytest.approx(3.0)

    def test_mark_dropped(self):
        packet = Packet(seq=0, flow="f")
        packet.mark_dropped(3.0, "buffer")
        assert not packet.in_flight
        assert packet.drop_reason == "buffer"

    def test_unique_uids(self):
        a = Packet(seq=0, flow="f")
        b = Packet(seq=0, flow="f")
        assert a.uid != b.uid

    def test_copy_is_independent(self):
        original = Packet(seq=3, flow="f")
        original.meta["key"] = "value"
        duplicate = original.copy()
        duplicate.meta["key"] = "changed"
        assert original.meta["key"] == "value"
        assert duplicate.seq == 3

    def test_size_bytes(self):
        packet = Packet(seq=0, flow="f", size_bits=8000)
        assert packet.size_bytes == pytest.approx(1000)


class TestRngRegistry:
    def test_same_name_same_stream_object(self, rng_registry):
        assert rng_registry.stream("a") is rng_registry.stream("a")

    def test_different_names_different_sequences(self, rng_registry):
        a = [rng_registry.stream("a").random() for _ in range(5)]
        b = [rng_registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproducible_across_registries(self):
        first = RngRegistry(seed=99).stream("loss").random()
        second = RngRegistry(seed=99).stream("loss").random()
        assert first == second

    def test_different_seed_differs(self):
        first = RngRegistry(seed=1).stream("loss").random()
        second = RngRegistry(seed=2).stream("loss").random()
        assert first != second

    def test_spawn_is_deterministic(self):
        parent = RngRegistry(seed=5)
        child_a = parent.spawn("trial-1").stream("x").random()
        child_b = RngRegistry(seed=5).spawn("trial-1").stream("x").random()
        assert child_a == child_b

    def test_names_lists_created_streams(self, rng_registry):
        rng_registry.stream("b")
        rng_registry.stream("a")
        assert list(rng_registry.names()) == ["a", "b"]


class TestTraceRecorder:
    def test_records_and_filters_by_kind(self):
        trace = TraceRecorder()
        trace.record(1.0, "buffer", "enqueue", seq=1)
        trace.record(2.0, "buffer", "drop", seq=2)
        assert len(trace) == 2
        assert [row.get("seq") for row in trace.filter(kind="drop")] == [2]

    def test_kind_filter_drops_unwanted(self):
        trace = TraceRecorder(kinds={"drop"})
        trace.record(1.0, "buffer", "enqueue", seq=1)
        trace.record(2.0, "buffer", "drop", seq=2)
        assert len(trace) == 1

    def test_series_extraction(self):
        trace = TraceRecorder()
        trace.record(1.0, "buffer", "enqueue", occupancy=10)
        trace.record(2.0, "buffer", "enqueue", occupancy=20)
        assert trace.series("enqueue", "occupancy") == [(1.0, 10), (2.0, 20)]

    def test_listener_invoked(self):
        trace = TraceRecorder()
        seen = []
        trace.add_listener(lambda row: seen.append(row.kind))
        trace.record(0.0, "x", "ping")
        assert seen == ["ping"]

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(0.0, "x", "ping")
        trace.clear()
        assert len(trace) == 0


class TestUnits:
    def test_byte_bit_roundtrip(self):
        assert bits_to_bytes(bytes_to_bits(1500)) == pytest.approx(1500)

    def test_rate_helpers(self):
        assert kbps(12) == pytest.approx(12_000)
        assert mbps(1.5) == pytest.approx(1_500_000)

    def test_time_helpers(self):
        assert from_ms(250) == pytest.approx(0.25)
        assert to_ms(0.25) == pytest.approx(250)

    def test_transmission_time(self):
        assert transmission_time(12_000, 12_000) == pytest.approx(1.0)

    def test_transmission_time_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            transmission_time(100, 0)

    def test_packets_to_bits(self):
        assert packets_to_bits(2) == pytest.approx(24_000)
