"""Differential fuzz: random event sequences through both engine pairs.

``tests/test_inference_vectorized.py`` pins scalar↔vectorized equivalence
on handcrafted regimes; this suite hammers the same contract with seeded
*random* send/acknowledgement sequences — ≥50 per backend pair, generated
with stdlib :mod:`random` so every failure reproduces from its seed alone:

* **belief pair** — each sequence replays through a scalar and a
  vectorized :class:`~repro.inference.belief.BeliefState`; posteriors,
  latent-state signatures, and bookkeeping counters must agree at the
  documented 1e-9 tolerance;
* **rollout pair** — from each sequence's final posterior, a scalar-rollout
  and a vectorized-rollout :class:`~repro.core.planner.ExpectedUtilityPlanner`
  must choose the same action with expected utilities within 1e-9
  relative (the float tolerance ``np.exp`` introduces), on *either*
  belief backend.

The sequence generator produces the awkward cases the handcrafted suite
under-samples: interleaved sends, reordered and simultaneous acks, long
silent gaps that charge packets to loss, and bursts that overflow small
ensemble caps.
"""

from __future__ import annotations

import random

import pytest

from repro.core.planner import ExpectedUtilityPlanner
from repro.core.utility import AlphaWeightedUtility
from repro.inference import (
    AckObservation,
    BeliefState,
    GaussianKernel,
    figure3_prior,
)

#: Seeded sequences per backend pair (the issue floor is 50).
SEQUENCE_COUNT = 55

#: Shared equivalence tolerance, matching the documented backend contract.
TOLERANCE = 1e-9

PACKET_BITS = 12_000.0

#: One-shot guard: the first equivalence failure prints a stage-bisection
#: triage report; later failures in the same session stay quiet.
_TRIAGE_PRINTED = False


def _triage_on_failure(seed: int) -> None:
    """Print a diagnostics report naming the first diverging kernel stage.

    Runs at most once per session, on the first equivalence failure, so a
    red differential run localizes itself without a manual repro: the
    report bisects the same seeded script to the stage (fork / advance /
    score / compact / prune, or a rollout-frontier stage) where the
    backends first disagree and ranks the candidate causes.
    """
    global _TRIAGE_PRINTED
    if _TRIAGE_PRINTED:
        return
    _TRIAGE_PRINTED = True
    from repro.diagnostics import backend_config, diagnose_divergence

    report = diagnose_divergence(
        backend_config("scalar", "scalar"),
        backend_config("vectorized", "vectorized"),
        seed=seed,
    )
    print(f"\n[repro.diagnostics] differential failure at seed {seed}:")
    print(report.render())


def _prior():
    """A small but fully featured prior: forking, loss, buffer uncertainty."""
    return figure3_prior(
        link_rate_points=2,
        cross_fraction_points=2,
        loss_points=2,
        buffer_points=2,
        fill_points=2,
    )


def random_sequence(seed: int) -> list[tuple[str, tuple]]:
    """A reproducible send/update script derived entirely from ``seed``.

    Time only moves forward; every ack references a real outstanding send,
    arrives no earlier than the send and no later than the update that
    observes it, and no sequence number is acknowledged twice.
    """
    rng = random.Random(seed)
    events: list[tuple[str, tuple]] = []
    now = 0.0
    seq = 0
    outstanding: list[tuple[int, float]] = []
    for _ in range(rng.randint(4, 8)):
        if rng.random() < 0.55:
            events.append(("send", (seq, PACKET_BITS, now)))
            outstanding.append((seq, now))
            seq += 1
            now += rng.uniform(0.05, 0.9)
        else:
            now += rng.uniform(0.3, 6.0)  # occasionally long: loss charging
            acks = []
            for entry in list(outstanding):
                if rng.random() < 0.6:
                    sent_seq, sent_at = entry
                    at = min(now, sent_at + rng.uniform(0.2, 2.5))
                    acks.append(
                        AckObservation(seq=sent_seq, received_at=at, ack_at=at)
                    )
                    outstanding.remove(entry)
            rng.shuffle(acks)  # update order must not matter
            events.append(("update", (now, acks)))
    now += rng.uniform(0.5, 2.0)
    events.append(("update", (now, [])))
    return events


def _replay(seed: int, backend: str, max_hypotheses: int = 48):
    """One belief of the given backend driven through the seeded script."""
    belief = BeliefState.from_prior(
        _prior(),
        backend=backend,
        kernel=GaussianKernel(sigma=0.5),
        max_hypotheses=max_hypotheses,
        on_degenerate="keep",
    )
    for kind, args in random_sequence(seed):
        if kind == "send":
            belief.record_send(*args)
        else:
            belief.update(*args)
    return belief


def replay_pair(seed: int, max_hypotheses: int = 48):
    """One scalar and one vectorized belief driven through the same script."""
    events = random_sequence(seed)
    scalar = _replay(seed, "scalar", max_hypotheses)
    vectorized = _replay(seed, "vectorized", max_hypotheses)
    return scalar, vectorized, events


def assert_posteriors_equivalent(scalar, vectorized, seed: int) -> None:
    context = f"seed={seed}"
    assert len(scalar) == len(vectorized), context
    assert scalar.updates_applied == vectorized.updates_applied, context
    assert scalar.degenerate_updates == vectorized.degenerate_updates, context
    assert scalar.compacted_away == vectorized.compacted_away, context
    assert scalar.acked_seqs == vectorized.acked_seqs, context
    for expected, actual in zip(scalar.weights, vectorized.weights):
        assert actual == pytest.approx(expected, abs=TOLERANCE), context
    assert vectorized.effective_sample_size() == pytest.approx(
        scalar.effective_sample_size(), rel=TOLERANCE
    ), context
    assert vectorized.entropy() == pytest.approx(
        scalar.entropy(), abs=TOLERANCE
    ), context
    marginal_s = scalar.posterior_marginal("link_rate_bps")
    marginal_v = vectorized.posterior_marginal("link_rate_bps")
    assert set(marginal_s) == set(marginal_v), context
    for value, mass in marginal_s.items():
        assert marginal_v[value] == pytest.approx(mass, abs=TOLERANCE), context
    for (s_hyp, s_w), (v_hyp, v_w) in zip(
        scalar.top(len(scalar)), vectorized.top(len(vectorized))
    ):
        assert s_hyp.params == v_hyp.params, context
        assert s_hyp.signature() == v_hyp.signature(), context
        assert v_w == pytest.approx(s_w, abs=TOLERANCE), context


def assert_posteriors_bit_identical(vectorized, fused, seed: int) -> None:
    """The fused backend's bar against vectorized is *bit*-identity, not 1e-9."""
    context = f"seed={seed}"
    assert len(vectorized) == len(fused), context
    assert vectorized.updates_applied == fused.updates_applied, context
    assert vectorized.degenerate_updates == fused.degenerate_updates, context
    assert vectorized.compacted_away == fused.compacted_away, context
    assert vectorized.acked_seqs == fused.acked_seqs, context
    for expected, actual in zip(vectorized.weights, fused.weights):
        assert float(actual).hex() == float(expected).hex(), context
    for (v_hyp, v_w), (f_hyp, f_w) in zip(
        vectorized.top(len(vectorized)), fused.top(len(fused))
    ):
        assert v_hyp.params == f_hyp.params, context
        assert v_hyp.signature() == f_hyp.signature(), context
        assert float(f_w).hex() == float(v_w).hex(), context


def assert_decisions_equivalent(reference, candidate, seed: int) -> None:
    context = f"seed={seed}"
    assert candidate.action.delay == reference.action.delay, context
    assert candidate.hypotheses_evaluated == reference.hypotheses_evaluated, context
    assert candidate.horizon == pytest.approx(reference.horizon, rel=TOLERANCE), context
    assert set(candidate.expected_utilities) == set(
        reference.expected_utilities
    ), context
    for delay, value in reference.expected_utilities.items():
        assert candidate.expected_utilities[delay] == pytest.approx(
            value, rel=TOLERANCE, abs=TOLERANCE
        ), context


def _planner(rollout_backend: str) -> ExpectedUtilityPlanner:
    return ExpectedUtilityPlanner(
        AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0),
        packet_bits=PACKET_BITS,
        top_k=8,
        rollout_backend=rollout_backend,
    )


class TestDifferentialBeliefBackends:
    def test_seeded_random_sequences_stay_equivalent(self):
        degenerate_seen = 0
        compaction_seen = 0
        for seed in range(SEQUENCE_COUNT):
            scalar, vectorized, _ = replay_pair(seed)
            try:
                assert_posteriors_equivalent(scalar, vectorized, seed)
            except AssertionError:
                _triage_on_failure(seed)
                raise
            degenerate_seen += scalar.degenerate_updates
            compaction_seen += scalar.compacted_away
        # The generator must actually exercise the hard paths, not skirt them.
        assert degenerate_seen > 0
        assert compaction_seen > 0

    def test_tiny_cap_prune_pressure_stays_equivalent(self):
        for seed in range(0, SEQUENCE_COUNT, 5):
            scalar, vectorized, _ = replay_pair(seed, max_hypotheses=5)
            assert len(scalar) <= 5
            try:
                assert_posteriors_equivalent(scalar, vectorized, seed)
            except AssertionError:
                _triage_on_failure(seed)
                raise


class TestDifferentialRolloutBackends:
    def test_seeded_random_posteriors_decide_identically(self):
        """Scalar vs vectorized rollout, from every random final posterior.

        The vectorized engine is exercised from both belief backends — it
        packs lanes straight from ensemble rows on the vectorized belief
        and through ``export_state()`` on the scalar one — and both must
        reproduce the scalar oracle's decision.
        """
        for seed in range(SEQUENCE_COUNT):
            scalar, vectorized, events = replay_pair(seed)
            now = events[-1][1][0]
            reference = _planner("scalar").decide(scalar, now)
            try:
                assert_decisions_equivalent(
                    reference, _planner("vectorized").decide(vectorized, now), seed
                )
                assert_decisions_equivalent(
                    reference, _planner("vectorized").decide(scalar, now), seed
                )
            except AssertionError:
                _triage_on_failure(seed)
                raise


class TestFusedBackend:
    """The fused engine's equivalence bar: bit-identical posteriors vs the
    unfused vectorized backend, 1e-9-rel utilities vs the scalar oracle."""

    def test_fused_posteriors_bit_identical_to_vectorized(self):
        compaction_seen = 0
        for seed in range(SEQUENCE_COUNT):
            vectorized = _replay(seed, "vectorized")
            fused = _replay(seed, "fused")
            try:
                assert_posteriors_bit_identical(vectorized, fused, seed)
            except AssertionError:
                _triage_on_failure(seed)
                raise
            compaction_seen += fused.compacted_away
        # The fused np.unique compaction must actually merge rows somewhere,
        # or the bit-identity above proved nothing about it.
        assert compaction_seen > 0

    def test_fused_posteriors_equivalent_to_scalar(self):
        for seed in range(0, SEQUENCE_COUNT, 5):
            scalar = _replay(seed, "scalar")
            fused = _replay(seed, "fused")
            try:
                assert_posteriors_equivalent(scalar, fused, seed)
            except AssertionError:
                _triage_on_failure(seed)
                raise

    def test_fused_tiny_cap_prune_pressure_bit_identical(self):
        for seed in range(0, SEQUENCE_COUNT, 5):
            vectorized = _replay(seed, "vectorized", max_hypotheses=5)
            fused = _replay(seed, "fused", max_hypotheses=5)
            assert len(fused) <= 5
            try:
                assert_posteriors_bit_identical(vectorized, fused, seed)
            except AssertionError:
                _triage_on_failure(seed)
                raise

    def test_fused_decisions_match_scalar_and_vectorized(self):
        """Fused decides agree with the scalar oracle at 1e-9 — and with the
        unfused vectorized engine *bit-exactly* (the fused kernel skips the
        ``RolloutLanes`` repack but must run the identical arithmetic)."""
        for seed in range(SEQUENCE_COUNT):
            scalar = _replay(seed, "scalar")
            vectorized = _replay(seed, "vectorized")
            fused = _replay(seed, "fused")
            now = random_sequence(seed)[-1][1][0]
            reference = _planner("scalar").decide(scalar, now)
            unfused = _planner("vectorized").decide(vectorized, now)
            fused_decision = _planner("fused").decide(fused, now)
            try:
                assert_decisions_equivalent(reference, fused_decision, seed)
                # fused falls back to the vectorized path on a scalar belief
                assert_decisions_equivalent(
                    reference, _planner("fused").decide(scalar, now), seed
                )
            except AssertionError:
                _triage_on_failure(seed)
                raise
            assert fused_decision.action.delay == unfused.action.delay, seed
            for delay, value in unfused.expected_utilities.items():
                assert (
                    float(fused_decision.expected_utilities[delay]).hex()
                    == float(value).hex()
                ), f"seed={seed} delay={delay}"
