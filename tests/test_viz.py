"""Tests for the ASCII plot and CSV export helpers."""

from __future__ import annotations

import csv

from repro.metrics import ExperimentRow, TimeSeries
from repro.viz import ascii_plot, write_rows_csv, write_series_csv


class TestAsciiPlot:
    def test_renders_title_axes_and_legend(self):
        series = {"line": TimeSeries.from_pairs([(0.0, 1.0), (1.0, 2.0), (2.0, 4.0)])}
        text = ascii_plot(series, width=40, height=10, title="Demo", y_label="seq")
        assert "Demo" in text
        assert "seq" in text
        assert "legend: o = line" in text
        assert text.count("\n") >= 12

    def test_multiple_series_get_distinct_markers(self):
        series = {
            "a": [(0.0, 1.0), (1.0, 2.0)],
            "b": [(0.0, 2.0), (1.0, 1.0)],
        }
        text = ascii_plot(series, width=20, height=5)
        assert "o = a" in text
        assert "x = b" in text

    def test_log_scale_drops_nonpositive_values(self):
        series = {"rtt": [(0.0, 0.0), (1.0, 0.1), (2.0, 10.0)]}
        text = ascii_plot(series, logy=True)
        assert "log10" in text

    def test_empty_series_is_handled(self):
        assert "(no data)" in ascii_plot({"nothing": []}, title="Empty")

    def test_flat_series_does_not_divide_by_zero(self):
        series = {"flat": [(0.0, 5.0), (1.0, 5.0)]}
        text = ascii_plot(series, width=10, height=4)
        assert "flat" in text


class TestCsvOut:
    def test_write_series_csv(self, tmp_path):
        path = tmp_path / "out" / "series.csv"
        series = {"a": TimeSeries.from_pairs([(0.0, 1.0), (1.0, 2.0)]), "b": [(0.5, 3.0)]}
        written = write_series_csv(path, series)
        with written.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "time", "value"]
        assert len(rows) == 4
        assert {row[0] for row in rows[1:]} == {"a", "b"}

    def test_write_rows_csv(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows = [
            ExperimentRow(label="x", values={"col1": 1, "col2": 2.5}),
            ExperimentRow(label="y", values={"col2": 3.5}),
        ]
        written = write_rows_csv(path, rows)
        with written.open() as handle:
            parsed = list(csv.reader(handle))
        assert parsed[0] == ["label", "col1", "col2"]
        assert parsed[1][0] == "x"
        assert parsed[2][1] == ""
