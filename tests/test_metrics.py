"""Tests for the metrics package."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.elements.receiver import Delivery
from repro.metrics import (
    ExperimentRow,
    TimeSeries,
    flow_stats_from_receiver,
    format_table,
    rtt_series,
    sequence_series,
    windowed_rate,
)
from repro.metrics.flowstats import flow_stats


def make_delivery(seq, flow="f", sent=0.0, received=1.0, size=12_000.0):
    return Delivery(seq=seq, flow=flow, size_bits=size, sent_at=sent, received_at=received)


class TestTimeSeries:
    def test_from_pairs_orders_by_time(self):
        series = TimeSeries.from_pairs([(2.0, 20.0), (1.0, 10.0)])
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]

    def test_between_selects_half_open_interval(self):
        series = TimeSeries.from_pairs([(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)])
        selected = series.between(1.0, 2.0)
        assert list(selected) == [(1.0, 2.0)]

    def test_value_at_steps(self):
        series = TimeSeries.from_pairs([(1.0, 10.0), (3.0, 30.0)])
        assert series.value_at(0.5, default=-1.0) == -1.0
        assert series.value_at(1.5) == 10.0
        assert series.value_at(3.0) == 30.0

    def test_statistics(self):
        series = TimeSeries.from_pairs([(0.0, 1.0), (1.0, 3.0), (2.0, 2.0)])
        assert series.max() == 3.0
        assert series.min() == 1.0
        assert series.mean() == pytest.approx(2.0)
        assert series.percentile(0.5) == 2.0

    def test_empty_series_statistics_raise(self):
        series = TimeSeries.from_pairs([])
        assert series.is_empty()
        with pytest.raises(ValueError):
            series.mean()
        with pytest.raises(ValueError):
            series.percentile(0.5)

    def test_percentile_validation(self):
        series = TimeSeries.from_pairs([(0.0, 1.0)])
        with pytest.raises(ValueError):
            series.percentile(1.5)

    def test_windowed_mean(self):
        series = TimeSeries.from_pairs([(0.1, 1.0), (0.9, 3.0), (1.5, 10.0)])
        windowed = series.windowed(1.0)
        assert list(windowed) == [(0.0, 2.0), (1.0, 10.0)]

    def test_windowed_validation(self):
        with pytest.raises(ValueError):
            TimeSeries.from_pairs([(0.0, 1.0)]).windowed(0.0)

    def test_differences(self):
        series = TimeSeries.from_pairs([(0.0, 1.0), (1.0, 4.0), (2.0, 6.0)])
        assert list(series.differences()) == [(1.0, 3.0), (2.0, 2.0)]

    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e4, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        )
    )
    def test_property_times_sorted_and_length_preserved(self, pairs):
        series = TimeSeries.from_pairs(pairs)
        assert len(series) == len(pairs)
        assert list(series.times) == sorted(series.times)

    @given(
        pairs=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        window=st.floats(min_value=0.5, max_value=20.0),
    )
    def test_property_windowed_mean_within_bounds(self, pairs, window):
        series = TimeSeries.from_pairs(pairs)
        windowed = series.windowed(window)
        assert not windowed.is_empty()
        assert windowed.min() >= series.min() - 1e-9
        assert windowed.max() <= series.max() + 1e-9


class TestFigureSeries:
    def test_sequence_series_counts_cumulatively(self):
        deliveries = [make_delivery(seq=i, received=float(i)) for i in range(5)]
        series = sequence_series(deliveries)
        assert list(series)[-1] == (4.0, 5)

    def test_rtt_series_passthrough(self):
        series = rtt_series([(0.0, 0.1), (1.0, 0.5)])
        assert series.max() == 0.5

    def test_windowed_rate(self):
        deliveries = [make_delivery(seq=i, received=i * 0.5, size=6_000) for i in range(8)]
        series = windowed_rate(deliveries, window=1.0, end_time=4.0)
        assert len(series) == 4
        assert series.values[0] == pytest.approx(12_000)

    def test_windowed_rate_validation(self):
        with pytest.raises(ValueError):
            windowed_rate([], window=0.0, end_time=1.0)


class TestFlowStats:
    def test_basic_aggregation(self):
        deliveries = [
            make_delivery(seq=0, flow="a", sent=0.0, received=1.0),
            make_delivery(seq=1, flow="a", sent=1.0, received=3.0),
            make_delivery(seq=2, flow="b", sent=0.0, received=9.0),
        ]
        stats = flow_stats(deliveries, flow="a", start=0.0, end=10.0)
        assert stats.packets_delivered == 2
        assert stats.bits_delivered == pytest.approx(24_000)
        assert stats.throughput_bps == pytest.approx(2_400)
        assert stats.mean_delay == pytest.approx(1.5)
        assert stats.max_delay == pytest.approx(2.0)
        assert stats.min_delay == pytest.approx(1.0)
        assert stats.packets_per_second == pytest.approx(0.2)

    def test_empty_window(self):
        stats = flow_stats([], flow="a", start=0.0, end=1.0)
        assert stats.packets_delivered == 0
        assert stats.mean_delay is None
        assert stats.throughput_bps == 0.0

    def test_zero_duration(self):
        stats = flow_stats([make_delivery(seq=0)], flow="f", start=0.0, end=0.0)
        assert stats.throughput_bps == 0.0

    def test_from_receiver(self, network):
        from repro.elements import Receiver
        from repro.sim.packet import Packet

        receiver = Receiver(name="rx")
        network.add(receiver)
        network.start()
        receiver.receive(Packet(seq=0, flow="f", size_bits=12_000, sent_at=0.0))
        stats = flow_stats_from_receiver(receiver, flow="f", start=0.0, end=1.0)
        assert stats.packets_delivered == 1


class TestFormatTable:
    def test_renders_columns_and_rows(self):
        rows = [
            ExperimentRow(label="alpha=1.0", values={"throughput": 3600.0, "drops": 0}),
            ExperimentRow(label="alpha=5.0", values={"throughput": 1200.0, "drops": 0}),
        ]
        text = format_table(rows, title="Figure 3")
        assert "Figure 3" in text
        assert "alpha=1.0" in text
        assert "throughput" in text
        assert "drops" in text

    def test_column_subset_and_missing_values(self):
        rows = [ExperimentRow(label="row", values={"a": 1})]
        text = format_table(rows, columns=["a", "b"])
        assert "a" in text and "b" in text

    def test_experiment_row_get(self):
        row = ExperimentRow(label="x", values={"k": 3})
        assert row.get("k") == 3
        assert row.get("missing", 7) == 7
