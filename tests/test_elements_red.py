"""Tests for the RED (active queue management) buffer element."""

from __future__ import annotations

import pytest

from repro.baselines import NewRenoSender
from repro.elements import Collector, Receiver, Throughput
from repro.elements.red import RedBuffer
from repro.errors import ConfigurationError
from repro.sim.element import Network
from repro.sim.packet import Packet


def make_chain(network, capacity=480_000.0, min_th=120_000.0, max_th=360_000.0, **kwargs):
    red = RedBuffer(
        capacity_bits=capacity,
        min_threshold_bits=min_th,
        max_threshold_bits=max_th,
        name="red",
        **kwargs,
    )
    link = Throughput(rate_bps=100_000.0, name="link")
    sink = Collector(name="sink")
    red.connect(link)
    link.connect(sink)
    network.add(red)
    network.start()
    return red, link, sink


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            RedBuffer(capacity_bits=0, min_threshold_bits=1, max_threshold_bits=2)
        with pytest.raises(ConfigurationError):
            RedBuffer(capacity_bits=100, min_threshold_bits=90, max_threshold_bits=50)
        with pytest.raises(ConfigurationError):
            RedBuffer(capacity_bits=100, min_threshold_bits=10, max_threshold_bits=200)
        with pytest.raises(ConfigurationError):
            RedBuffer(
                capacity_bits=100,
                min_threshold_bits=10,
                max_threshold_bits=50,
                max_drop_probability=0.0,
            )
        with pytest.raises(ConfigurationError):
            RedBuffer(
                capacity_bits=100, min_threshold_bits=10, max_threshold_bits=50, weight=2.0
            )


class TestDropBehaviour:
    def test_no_drops_below_min_threshold(self, network):
        red, link, sink = make_chain(network)
        for seq in range(5):
            red.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert red.drop_count == 0
        assert sink.count() == 5

    def test_drop_probability_rises_with_average_occupancy(self):
        red = RedBuffer(
            capacity_bits=480_000.0,
            min_threshold_bits=120_000.0,
            max_threshold_bits=360_000.0,
            max_drop_probability=0.2,
        )
        red._average_bits = 60_000.0
        assert red.drop_probability() == 0.0
        red._average_bits = 240_000.0
        assert red.drop_probability() == pytest.approx(0.1)
        red._average_bits = 400_000.0
        assert red.drop_probability() == pytest.approx(1.0)

    def test_forced_drop_at_hard_capacity(self, network):
        red, link, sink = make_chain(network, capacity=36_000.0, min_th=12_000.0, max_th=36_000.0)
        for seq in range(10):
            red.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        assert red.forced_drops > 0

    def test_early_drops_under_sustained_overload(self, network):
        red, link, sink = make_chain(network, weight=0.05)
        # Offer far more than the link can carry so the average occupancy
        # climbs between the thresholds.
        for burst in range(40):
            for seq in range(10):
                network.sim.schedule(
                    burst * 0.1,
                    red.receive,
                    Packet(seq=burst * 10 + seq, flow="f", size_bits=12_000, sent_at=burst * 0.1),
                )
        network.run()
        assert red.early_drops > 0
        assert sink.count() + red.drop_count == 400

    def test_pass_through_without_draining_link(self, network):
        red = RedBuffer(
            capacity_bits=48_000.0, min_threshold_bits=12_000.0, max_threshold_bits=36_000.0
        )
        sink = Collector(name="sink")
        red.connect(sink)
        network.add(red)
        network.start()
        red.receive(Packet(seq=0, flow="f", size_bits=12_000))
        assert sink.count() == 1

    def test_reset_clears_state(self, network):
        red, link, sink = make_chain(network)
        red.receive(Packet(seq=0, flow="f", size_bits=12_000, sent_at=0.0))
        red.reset()
        assert red.occupancy_bits == 0.0
        assert red.average_occupancy_bits == 0.0
        assert red.drop_count == 0


class TestRedVersusTailDropWithTcp:
    def test_red_signals_congestion_before_the_buffer_fills(self):
        """AQM drops early to signal congestion; tail drop only drops when full."""

        def run(buffer_element):
            network = Network(seed=6)
            link = Throughput(rate_bps=100_000.0, name="link")
            receiver = Receiver(name="rx", accept_flows={"tcp"})
            buffer_element.connect(link)
            link.connect(receiver)
            sender = NewRenoSender(receiver, flow="tcp", name="tcp", initial_ssthresh=1e9)
            sender.connect(buffer_element)
            network.add(sender)
            network.run(until=60.0)
            return sender

        from repro.elements import Buffer

        tail = Buffer(capacity_bits=1_200_000.0, name="tail")
        run(tail)
        red = RedBuffer(
            capacity_bits=1_200_000.0,
            min_threshold_bits=120_000.0,
            max_threshold_bits=600_000.0,
            max_drop_probability=0.2,
            weight=0.01,
            name="red",
        )
        run(red)

        # The tail-drop buffer only ever drops by overflowing completely.
        assert tail.drop_count > 0
        assert tail.peak_occupancy_bits > 0.9 * tail.capacity_bits
        # RED signals the sender with early drops well before its hard limit.
        assert red.early_drops > 0
        assert red.forced_drops == 0
