"""Scalar ↔ vectorized belief-backend equivalence suite.

Every test drives both backends through *identical* send/acknowledgement
sequences and compares the resulting posteriors, MAP estimates, marginals,
and bookkeeping counters.  The two implementations are designed to apply
the same float operations in the same order, so the assertions here are
mostly exact; where a documented tolerance applies (transcendental calls),
``approx`` with ``abs=1e-9`` is used.

Covered regimes: plain convergence, gate forking + compaction merges,
degenerate updates (keep and raise policies), prune-at-cap, missing-ack
loss charging, charged-lost contradictions, and a property-style sweep over
randomized acknowledgement timings.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DegenerateBeliefError, InferenceError
from repro.inference import (
    AckObservation,
    BeliefState,
    ExactMatchKernel,
    GaussianKernel,
    Hypothesis,
    figure3_prior,
    single_link_prior,
)
from repro.inference.vectorized import VectorizedBeliefState


def both_backends(prior, **kwargs):
    """One scalar and one vectorized belief over the same prior."""
    scalar = BeliefState.from_prior(prior, backend="scalar", **kwargs)
    vectorized = BeliefState.from_prior(prior, backend="vectorized", **kwargs)
    return scalar, vectorized


def replay(belief, events):
    for kind, args in events:
        if kind == "send":
            belief.record_send(*args)
        else:
            belief.update(*args)
    return belief


def assert_equivalent(scalar, vectorized, weight_tolerance=1e-9):
    """Posteriors, MAP, marginals, and counters agree across backends."""
    assert len(scalar) == len(vectorized)
    assert scalar.updates_applied == vectorized.updates_applied
    assert scalar.degenerate_updates == vectorized.degenerate_updates
    assert scalar.compacted_away == vectorized.compacted_away
    assert scalar.acked_seqs == vectorized.acked_seqs

    for expected, actual in zip(scalar.weights, vectorized.weights):
        assert actual == pytest.approx(expected, abs=weight_tolerance)

    assert scalar.map_estimate().params == vectorized.map_estimate().params

    for parameter in ("link_rate_bps",):
        expected = scalar.posterior_marginal(parameter)
        actual = vectorized.posterior_marginal(parameter)
        assert set(expected) == set(actual)
        for value in expected:
            assert actual[value] == pytest.approx(expected[value], abs=weight_tolerance)
        assert vectorized.posterior_mean(parameter) == pytest.approx(
            scalar.posterior_mean(parameter), abs=1e-6
        )

    assert vectorized.effective_sample_size() == pytest.approx(
        scalar.effective_sample_size(), rel=1e-9
    )
    assert vectorized.entropy() == pytest.approx(scalar.entropy(), abs=1e-9)

    # The ensembles hold the same latent states, hypothesis for hypothesis.
    for (s_hyp, s_w), (v_hyp, v_w) in zip(scalar.top(len(scalar)), vectorized.top(len(vectorized))):
        assert s_hyp.params == v_hyp.params
        assert s_hyp.signature() == v_hyp.signature()
        assert v_w == pytest.approx(s_w, abs=weight_tolerance)


def ack(seq, at):
    return AckObservation(seq=seq, received_at=at, ack_at=at)


class TestBackendSelection:
    def test_from_prior_backend_switch(self):
        prior = single_link_prior()
        assert type(BeliefState.from_prior(prior)) is BeliefState
        assert type(BeliefState.from_prior(prior, backend="scalar")) is BeliefState
        assert (
            type(BeliefState.from_prior(prior, backend="vectorized"))
            is VectorizedBeliefState
        )

    def test_backend_attribute(self):
        prior = single_link_prior()
        assert BeliefState.from_prior(prior).backend == "scalar"
        assert BeliefState.from_prior(prior, backend="vectorized").backend == "vectorized"

    def test_unknown_backend_rejected(self):
        with pytest.raises(InferenceError):
            BeliefState.from_prior(single_link_prior(), backend="quantum")

    def test_vectorized_requires_lockstep_clocks(self):
        early = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0}
        )
        late = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0},
            start_time=3.0,
        )
        with pytest.raises(InferenceError):
            VectorizedBeliefState([early, late])


class TestSimpleConvergence:
    EVENTS = [
        ("send", (0, 12_000.0, 0.0)),
        ("update", (1.0, [ack(0, 1.0)])),
        ("send", (1, 12_000.0, 1.1)),
        ("update", (2.2, [ack(1, 2.1)])),
        ("update", (4.0, [])),
    ]

    def test_exact_kernel(self):
        scalar, vectorized = both_backends(
            single_link_prior(), kernel=ExactMatchKernel(tolerance=1e-6)
        )
        replay(scalar, self.EVENTS)
        replay(vectorized, self.EVENTS)
        assert_equivalent(scalar, vectorized)
        assert vectorized.posterior_marginal("link_rate_bps")[12_000.0] == pytest.approx(1.0)

    def test_gaussian_kernel(self):
        scalar, vectorized = both_backends(
            single_link_prior(), kernel=GaussianKernel(sigma=0.4)
        )
        replay(scalar, self.EVENTS)
        replay(vectorized, self.EVENTS)
        assert_equivalent(scalar, vectorized)


class TestForkingAndCompaction:
    def test_forking_prior_stays_equivalent(self):
        # mean_time_to_switch is set in figure3_prior, so every update forks;
        # repeated short updates let forked branches drain back into identical
        # latent states, which exercises the compaction merge.
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("update", (1.0, [ack(0, 1.0)])),
            ("send", (1, 12_000.0, 1.2)),
            ("update", (2.5, [ack(1, 2.2)])),
            ("update", (6.0, [])),
            ("update", (9.0, [])),
            ("send", (2, 12_000.0, 9.5)),
            ("update", (30.0, [])),
        ]
        scalar, vectorized = both_backends(
            figure3_prior(), kernel=GaussianKernel(sigma=0.4), max_hypotheses=128
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert scalar.compacted_away > 0
        assert_equivalent(scalar, vectorized)

    def test_identical_hypotheses_compact_identically(self):
        params = {
            "link_rate_bps": 12_000.0,
            "buffer_capacity_bits": 96_000.0,
            "loss_rate": 0.0,
            "cross_rate_pps": 0.7,
            "mean_time_to_switch": 100.0,
        }
        def build(cls):
            return cls(
                [Hypothesis.from_params(params), Hypothesis.from_params(params)],
                kernel=GaussianKernel(sigma=0.5),
            )
        scalar = build(BeliefState)
        vectorized = build(VectorizedBeliefState)
        scalar.update(1.0, [])
        vectorized.update(1.0, [])
        assert scalar.compacted_away >= 1
        assert_equivalent(scalar, vectorized)


class TestPruneAtCap:
    def test_tiny_cap_keeps_the_same_survivors(self):
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("update", (1.0, [ack(0, 1.0)])),
            ("update", (5.0, [])),
            ("update", (12.0, [])),
        ]
        scalar, vectorized = both_backends(
            figure3_prior(), kernel=GaussianKernel(sigma=0.6), max_hypotheses=7
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert len(scalar) <= 7
        assert_equivalent(scalar, vectorized)


class TestDegenerateUpdates:
    def test_keep_policy(self):
        # An acknowledgement far earlier than any hypothesis can explain.
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("update", (0.2, [ack(0, 0.2)])),
            ("update", (3.0, [])),
        ]
        scalar, vectorized = both_backends(
            single_link_prior(), kernel=ExactMatchKernel(tolerance=1e-6), on_degenerate="keep"
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert scalar.degenerate_updates >= 1
        assert_equivalent(scalar, vectorized)

    def test_raise_policy(self):
        scalar, vectorized = both_backends(
            single_link_prior(), kernel=ExactMatchKernel(tolerance=1e-6), on_degenerate="raise"
        )
        for belief in (scalar, vectorized):
            belief.record_send(0, 12_000.0, 0.0)
            with pytest.raises(DegenerateBeliefError):
                belief.update(0.2, [ack(0, 0.2)])


class TestLossCharging:
    def test_missing_acks_charged_to_loss(self):
        # loss_rate > 0 hypotheses charge unacknowledged packets to loss;
        # zero-loss hypotheses are rejected.
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("send", (1, 12_000.0, 0.1)),
            ("update", (20.0, [])),
        ]
        scalar, vectorized = both_backends(
            figure3_prior(loss_points=3), kernel=GaussianKernel(sigma=0.4)
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert_equivalent(scalar, vectorized)
        # Every surviving hypothesis carries positive loss.
        for hypothesis, weight in vectorized.top(5):
            if weight > 0:
                assert hypothesis.params["loss_rate"] > 0.0

    def test_late_ack_contradicts_charged_loss(self):
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("update", (20.0, [])),           # charge packet 0 as lost
            ("update", (21.0, [ack(0, 20.5)])),  # ...then it arrives anyway
        ]
        scalar, vectorized = both_backends(
            figure3_prior(loss_points=3),
            kernel=GaussianKernel(sigma=0.4),
            on_degenerate="keep",
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert scalar.degenerate_updates == vectorized.degenerate_updates
        assert_equivalent(scalar, vectorized)

    def test_missing_grace_delays_charging(self):
        events = [
            ("send", (0, 12_000.0, 0.0)),
            ("update", (1.3, [])),
        ]
        scalar, vectorized = both_backends(
            single_link_prior(loss_rate=0.2),
            kernel=GaussianKernel(sigma=0.4),
            missing_grace=1.0,
        )
        replay(scalar, events)
        replay(vectorized, events)
        assert_equivalent(scalar, vectorized)


class TestMaterializedHypotheses:
    def test_roundtrip_through_export_state(self):
        vectorized = BeliefState.from_prior(
            figure3_prior(), kernel=GaussianKernel(sigma=0.4), backend="vectorized"
        )
        replay(
            vectorized,
            [("send", (0, 12_000.0, 0.0)), ("update", (1.0, [ack(0, 1.0)]))],
        )
        for hypothesis, _ in vectorized.top(3):
            # A materialized hypothesis survives another export/import cycle
            # and keeps its latent-state digest.
            clone = Hypothesis.from_state(
                hypothesis.params, hypothesis.model.params, hypothesis.export_state()
            )
            assert clone.signature() == hypothesis.signature()

    def test_materialized_rollout_matches_scalar(self):
        events = [("send", (0, 12_000.0, 0.0)), ("update", (1.0, [ack(0, 1.0)]))]
        scalar, vectorized = both_backends(
            single_link_prior(), kernel=ExactMatchKernel(tolerance=1e-6)
        )
        replay(scalar, events)
        replay(vectorized, events)
        s_out = scalar.map_estimate().rollout(0.0, 5.0, 12_000.0)
        v_out = vectorized.map_estimate().rollout(0.0, 5.0, 12_000.0)
        assert v_out.hypothetical_delivered == s_out.hypothetical_delivered
        assert v_out.hypothetical_delivery_time == pytest.approx(
            s_out.hypothetical_delivery_time
        )
        assert v_out.own_deliveries == s_out.own_deliveries


class TestSignatureRoundingParity:
    def test_digest_rounding_matches_python_round(self):
        # np.round and Python round disagree on a measurable fraction of
        # near-halfway values; the compaction digest must follow the scalar
        # Hypothesis.signature, which uses round().
        import numpy as np

        from repro.inference.vectorized.state import _python_round

        adversarial = float.fromhex("0x1.797cc39ffd60fp-16")
        values = np.array([adversarial, 1.0000005, 2.5e-7, math.inf, 12_000.125])
        rounded = _python_round(values, 6)
        for expected, actual in zip(values.tolist(), rounded.tolist()):
            assert actual == round(expected, 6)

    def test_digest_rounding_parity_randomized(self):
        import numpy as np

        from repro.inference.vectorized.state import _python_round

        rng = np.random.default_rng(20260727)
        # Mix magnitudes typical of the digest inputs (completions in
        # seconds, queue bits) with values engineered to sit near halfway
        # points after scaling.
        values = np.concatenate(
            [
                rng.uniform(0.0, 60.0, 20_000),
                rng.uniform(0.0, 200_000.0, 20_000),
                (rng.integers(0, 10**8, 20_000) * 2 + 1) / 2e6,  # exact halves
                (rng.integers(0, 10**8, 20_000) * 2 + 1) / 2e6
                + rng.uniform(-1e-12, 1e-12, 20_000),
            ]
        )
        for digits in (3, 6):
            fast = _python_round(values, digits).tolist()
            for value, actual in zip(values.tolist(), fast):
                assert actual == round(value, digits), (value.hex(), digits)


class TestPropertyStyle:
    @settings(max_examples=15, deadline=None)
    @given(
        offsets=st.lists(
            st.floats(min_value=-0.4, max_value=0.6), min_size=1, max_size=4
        ),
        gap=st.floats(min_value=0.5, max_value=3.0),
    )
    def test_randomized_ack_timings_stay_equivalent(self, offsets, gap):
        scalar, vectorized = both_backends(
            figure3_prior(),
            kernel=GaussianKernel(sigma=0.5),
            max_hypotheses=64,
            on_degenerate="keep",
        )
        now = 0.0
        for seq, offset in enumerate(offsets):
            send_at = now
            for belief in (scalar, vectorized):
                belief.record_send(seq, 12_000.0, send_at)
            now = send_at + gap
            observed = max(send_at + 1e-3, send_at + 1.0 + offset)
            observations = [ack(seq, min(observed, now))]
            scalar.update(now, observations)
            vectorized.update(now, observations)
            assert sum(vectorized.weights) == pytest.approx(1.0)
        assert_equivalent(scalar, vectorized)


class TestVectorizedSenderIntegration:
    def test_isender_runs_on_vectorized_backend(self):
        from repro.experiments.ablation import AblationConfig, run_ablation_config

        scalar_outcome = run_ablation_config(
            AblationConfig(label="scalar", backend="scalar"), duration=20.0
        )
        vector_outcome = run_ablation_config(
            AblationConfig(label="vectorized", backend="vectorized"), duration=20.0
        )
        # The sender makes the same decisions on both inference backends.
        assert vector_outcome.packets_sent == scalar_outcome.packets_sent
        assert vector_outcome.final_hypotheses == scalar_outcome.final_hypotheses
        assert vector_outcome.degenerate_updates == scalar_outcome.degenerate_updates
        assert vector_outcome.posterior_true_link_rate == pytest.approx(
            scalar_outcome.posterior_true_link_rate, abs=1e-9
        )
        assert vector_outcome.goodput_bps == pytest.approx(scalar_outcome.goodput_bps)


class TestInferenceBenchWorkload:
    def test_workload_is_deterministic_and_backends_agree(self):
        from repro.experiments.inference_bench import (
            InferenceBenchConfig,
            build_workload,
            run_backend,
        )

        config = InferenceBenchConfig(duration=6.0, max_hypotheses=96)
        first = build_workload(config)
        second = build_workload(config)
        assert first == second

        scalar = run_backend("scalar", config, first)
        vectorized = run_backend("vectorized", config, first)
        assert vectorized.final_hypotheses == scalar.final_hypotheses
        assert vectorized.compacted_away == scalar.compacted_away
        assert vectorized.map_link_rate_bps == scalar.map_link_rate_bps
        for expected, actual in zip(scalar.weights, vectorized.weights):
            assert actual == pytest.approx(expected, abs=1e-9)
