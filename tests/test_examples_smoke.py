"""Smoke tests for every script in examples/.

Each example is imported from its file and its ``main`` run with a tiny
simulated duration, so a refactor that breaks an example's imports,
argument parsing, or API usage fails the suite instead of rotting silently.
Output is captured; the assertions only check the scripts complete and
print their headline tables.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: Every example script and the fast arguments its smoke run uses.
EXAMPLE_ARGS: dict[str, list[str]] = {
    "quickstart.py": ["--duration", "8"],
    "alpha_sweep.py": ["--duration", "20", "--switch", "10", "--alphas", "1.0,5.0"],
    "bufferbloat_cellular.py": ["--duration", "12"],
    "custom_topology.py": ["--duration", "10"],
    "inference_walkthrough.py": ["--duration", "10", "--slice", "5"],
}


def _load_example(filename: str):
    path = EXAMPLES_DIR / filename
    module_name = f"example_{filename.removesuffix('.py')}"
    spec = importlib.util.spec_from_file_location(module_name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[module_name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(module_name, None)
    return module


def test_every_example_has_a_smoke_entry():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXAMPLE_ARGS), (
        "examples/ and EXAMPLE_ARGS disagree — add a smoke entry (with tiny "
        "arguments) for every new example script"
    )


@pytest.mark.parametrize("filename", sorted(EXAMPLE_ARGS))
def test_example_runs_quickly_and_prints(filename, capsys):
    module = _load_example(filename)
    assert hasattr(module, "main"), f"{filename} must expose main(argv)"
    module.main(EXAMPLE_ARGS[filename])
    out = capsys.readouterr().out
    assert len(out.splitlines()) >= 3, f"{filename} printed almost nothing"


def test_alpha_sweep_parallel_workers_flag(capsys):
    module = _load_example("alpha_sweep.py")
    module.main(["--duration", "16", "--switch", "8", "--alphas", "1.0,5.0", "--workers", "2"])
    out = capsys.readouterr().out
    assert "Figure 3" in out
