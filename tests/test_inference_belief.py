"""Tests for hypotheses (fork/score/rollout) and the belief state update."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DegenerateBeliefError, InferenceError
from repro.inference import (
    AckObservation,
    BeliefState,
    ExactMatchKernel,
    GaussianKernel,
    Hypothesis,
    single_link_prior,
)
from repro.inference.linkmodel import LinkModel, LinkModelParams


def make_hypothesis(link_rate=12_000.0, loss_rate=0.0, cross_rate_pps=0.0, mtts=None, **extra):
    params = {
        "link_rate_bps": link_rate,
        "buffer_capacity_bits": 96_000.0,
        "loss_rate": loss_rate,
        "cross_rate_pps": cross_rate_pps,
    }
    if mtts is not None:
        params["mean_time_to_switch"] = mtts
    params.update(extra)
    return Hypothesis.from_params(params)


class TestHypothesisEvolve:
    def test_no_cross_traffic_never_forks(self):
        hypothesis = make_hypothesis()
        branches = hypothesis.evolve(10.0)
        assert len(branches) == 1
        assert branches[0][1] == pytest.approx(1.0)
        assert hypothesis.model.time == pytest.approx(10.0)

    def test_memoryless_gate_forks_two_branches(self):
        hypothesis = make_hypothesis(cross_rate_pps=0.7, mtts=100.0)
        branches = hypothesis.evolve(10.0)
        assert len(branches) == 2
        probabilities = [probability for _, probability in branches]
        assert sum(probabilities) == pytest.approx(1.0)
        expected_switch = 1.0 - math.exp(-10.0 / 100.0)
        assert probabilities[1] == pytest.approx(expected_switch)
        gate_states = {branch.model.gate_on for branch, _ in branches}
        assert gate_states == {True, False}

    def test_zero_interval_is_identity(self):
        hypothesis = make_hypothesis(cross_rate_pps=0.7, mtts=100.0)
        branches = hypothesis.evolve(0.0)
        assert len(branches) == 1
        assert branches[0][0] is hypothesis


class TestHypothesisScore:
    def test_exact_ack_matches(self):
        hypothesis = make_hypothesis()
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(2.0)
        ack = AckObservation(seq=0, received_at=1.0, ack_at=1.0)
        log_weight = hypothesis.score([ack], 2.0, ExactMatchKernel(), {0})
        assert log_weight == pytest.approx(0.0)

    def test_wrong_timing_rejected_by_exact_kernel(self):
        hypothesis = make_hypothesis(link_rate=6_000.0)  # service time 2 s, not 1 s
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(3.0)
        ack = AckObservation(seq=0, received_at=1.0, ack_at=1.0)
        log_weight = hypothesis.score([ack], 3.0, ExactMatchKernel(), {0})
        assert log_weight == float("-inf")

    def test_gaussian_kernel_grades_timing_error(self):
        hypothesis = make_hypothesis(link_rate=11_000.0)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(3.0)
        ack = AckObservation(seq=0, received_at=1.0, ack_at=1.0)
        log_weight = hypothesis.score([ack], 3.0, GaussianKernel(sigma=0.25), {0})
        assert float("-inf") < log_weight < 0.0

    def test_missing_ack_explained_by_loss(self):
        hypothesis = make_hypothesis(loss_rate=0.2)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(5.0)
        log_weight = hypothesis.score([], 5.0, ExactMatchKernel(), set())
        assert log_weight == pytest.approx(math.log(0.2))

    def test_missing_ack_without_loss_rejects(self):
        hypothesis = make_hypothesis(loss_rate=0.0)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(5.0)
        log_weight = hypothesis.score([], 5.0, ExactMatchKernel(), set())
        assert log_weight == float("-inf")

    def test_ack_after_charged_as_lost_rejects(self):
        hypothesis = make_hypothesis(loss_rate=0.2)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(5.0)
        hypothesis.score([], 5.0, ExactMatchKernel(), set())
        late_ack = AckObservation(seq=0, received_at=1.0, ack_at=6.0)
        assert hypothesis.score([late_ack], 6.0, ExactMatchKernel(), {0}) == float("-inf")

    def test_ack_for_predicted_drop_rejects(self):
        hypothesis = make_hypothesis(buffer_capacity_bits=12_000.0)
        for seq in range(4):
            hypothesis.record_send(seq, 12_000, 0.0)
        hypothesis.evolve(10.0)
        dropped_seq = next(
            seq for seq, pred in hypothesis.model.predictions.items() if not pred.delivered
        )
        ack = AckObservation(seq=dropped_seq, received_at=5.0, ack_at=5.0)
        assert hypothesis.score([ack], 10.0, GaussianKernel(sigma=1.0), {dropped_seq}) == float("-inf")

    def test_ack_with_loss_survival_factor(self):
        hypothesis = make_hypothesis(loss_rate=0.2)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(2.0)
        ack = AckObservation(seq=0, received_at=1.0, ack_at=1.0)
        log_weight = hypothesis.score([ack], 2.0, ExactMatchKernel(), {0})
        assert log_weight == pytest.approx(math.log(0.8))

    def test_ack_for_packet_still_in_flight_uses_projection(self):
        hypothesis = make_hypothesis(link_rate=11_500.0)
        hypothesis.record_send(0, 12_000, 0.0)
        hypothesis.evolve(0.9)  # the model has not delivered the packet yet
        ack = AckObservation(seq=0, received_at=0.9, ack_at=0.9)
        log_weight = hypothesis.score([ack], 0.9, GaussianKernel(sigma=0.3), {0})
        assert float("-inf") < log_weight <= 0.0

    def test_unknown_seq_rejects(self):
        hypothesis = make_hypothesis()
        ack = AckObservation(seq=42, received_at=1.0, ack_at=1.0)
        assert hypothesis.score([ack], 2.0, GaussianKernel(sigma=0.3), {42}) == float("-inf")


class TestHypothesisRollout:
    def test_rollout_reports_hypothetical_delivery(self):
        hypothesis = make_hypothesis()
        outcome = hypothesis.rollout(action_delay=0.0, horizon=5.0, packet_bits=12_000)
        assert outcome.hypothetical_delivered
        assert outcome.hypothetical_delivery_time == pytest.approx(1.0)
        assert outcome.own_deliveries

    def test_rollout_with_delay_shifts_delivery(self):
        hypothesis = make_hypothesis()
        outcome = hypothesis.rollout(action_delay=2.0, horizon=6.0, packet_bits=12_000)
        assert outcome.hypothetical_delivery_time == pytest.approx(3.0)

    def test_rollout_does_not_mutate_hypothesis(self):
        hypothesis = make_hypothesis()
        hypothesis.rollout(action_delay=0.0, horizon=5.0, packet_bits=12_000)
        assert hypothesis.model.time == pytest.approx(0.0)
        assert hypothesis.model.predictions == {}

    def test_rollout_counts_cross_traffic(self):
        hypothesis = make_hypothesis(cross_rate_pps=0.5, mtts=1000.0)
        outcome = hypothesis.rollout(action_delay=0.0, horizon=10.0, packet_bits=12_000)
        assert len(outcome.cross_deliveries) >= 4

    def test_rollout_without_sending(self):
        hypothesis = make_hypothesis()
        outcome = hypothesis.rollout(
            action_delay=0.0, horizon=5.0, packet_bits=12_000, send_packet=False
        )
        assert not outcome.hypothetical_delivered
        assert outcome.own_deliveries == []


class TestBeliefState:
    def make_belief(self, **kwargs):
        prior = single_link_prior(
            link_rate_low=8_000.0, link_rate_high=16_000.0, link_rate_points=5, fill_points=1
        )
        return BeliefState.from_prior(prior, **kwargs)

    def test_from_prior_sizes_and_normalization(self):
        belief = self.make_belief()
        assert len(belief) == 5
        assert sum(belief.weights) == pytest.approx(1.0)

    def test_requires_hypotheses(self):
        with pytest.raises(InferenceError):
            BeliefState([])

    def test_rejects_mismatched_weights(self):
        hypothesis = make_hypothesis()
        with pytest.raises(InferenceError):
            BeliefState([hypothesis], weights=[0.5, 0.5])

    def test_update_concentrates_on_true_rate(self):
        belief = self.make_belief(kernel=ExactMatchKernel(tolerance=1e-6))
        belief.record_send(0, 12_000, 0.0)
        belief.update(1.0, [AckObservation(seq=0, received_at=1.0, ack_at=1.0)])
        marginal = belief.posterior_marginal("link_rate_bps")
        assert marginal[12_000.0] == pytest.approx(1.0)
        assert belief.map_estimate().params["link_rate_bps"] == pytest.approx(12_000.0)

    def test_posterior_mean_between_support_points(self):
        belief = self.make_belief(kernel=GaussianKernel(sigma=0.5))
        belief.record_send(0, 12_000, 0.0)
        belief.update(1.05, [AckObservation(seq=0, received_at=1.05, ack_at=1.05)])
        mean = belief.posterior_mean("link_rate_bps")
        assert 10_000.0 < mean < 13_000.0

    def test_degenerate_update_keep_policy(self):
        belief = self.make_belief(kernel=ExactMatchKernel(tolerance=1e-6), on_degenerate="keep")
        belief.record_send(0, 12_000, 0.0)
        # An acknowledgement far earlier than any hypothesis can explain.
        belief.update(0.2, [AckObservation(seq=0, received_at=0.2, ack_at=0.2)])
        assert belief.degenerate_updates == 1
        assert len(belief) >= 1
        assert sum(belief.weights) == pytest.approx(1.0)

    def test_degenerate_update_raise_policy(self):
        belief = self.make_belief(kernel=ExactMatchKernel(tolerance=1e-6), on_degenerate="raise")
        belief.record_send(0, 12_000, 0.0)
        with pytest.raises(DegenerateBeliefError):
            belief.update(0.2, [AckObservation(seq=0, received_at=0.2, ack_at=0.2)])

    def test_unknown_degenerate_policy_rejected(self):
        hypothesis = make_hypothesis()
        with pytest.raises(InferenceError):
            BeliefState([hypothesis], on_degenerate="explode")

    def test_max_hypotheses_cap_enforced(self):
        prior = single_link_prior(link_rate_points=5, fill_points=3)
        belief = BeliefState.from_prior(prior, max_hypotheses=4)
        belief.update(1.0, [])
        assert len(belief) <= 4

    def test_compaction_merges_identical_forks(self):
        params = {
            "link_rate_bps": 12_000.0,
            "buffer_capacity_bits": 96_000.0,
            "loss_rate": 0.0,
            "cross_rate_pps": 0.7,
            "mean_time_to_switch": 100.0,
        }
        belief = BeliefState(
            [Hypothesis.from_params(params), Hypothesis.from_params(params)],
            kernel=GaussianKernel(sigma=0.5),
        )
        belief.update(1.0, [])
        # Two identical hypotheses forked into (at most) four branches, but
        # identical latent states are merged back together.
        assert belief.compacted_away >= 1

    def test_effective_sample_size_and_entropy(self):
        belief = self.make_belief()
        assert belief.effective_sample_size() == pytest.approx(5.0)
        assert belief.entropy() == pytest.approx(math.log(5.0))
        belief.record_send(0, 12_000, 0.0)
        belief.update(1.0, [AckObservation(seq=0, received_at=1.0, ack_at=1.0)])
        assert belief.effective_sample_size() < 5.0

    def test_top_returns_heaviest_first(self):
        belief = self.make_belief(kernel=GaussianKernel(sigma=0.3))
        belief.record_send(0, 12_000, 0.0)
        belief.update(1.0, [AckObservation(seq=0, received_at=1.0, ack_at=1.0)])
        top = belief.top(3)
        weights = [weight for _, weight in top]
        assert weights == sorted(weights, reverse=True)
        assert top[0][0].params["link_rate_bps"] == pytest.approx(12_000.0)

    def test_posterior_queries_validate_parameter_names(self):
        belief = self.make_belief()
        with pytest.raises(InferenceError):
            belief.posterior_mean("no_such_parameter")
        with pytest.raises(InferenceError):
            belief.posterior_marginal("no_such_parameter")

    @settings(max_examples=20, deadline=None)
    @given(observation_times=st.lists(st.floats(min_value=0.5, max_value=5.0), min_size=1, max_size=5))
    def test_property_weights_stay_normalized(self, observation_times):
        belief = self.make_belief(kernel=GaussianKernel(sigma=1.0))
        now = 0.0
        for index, gap in enumerate(sorted(observation_times)):
            now = max(now, gap)
            belief.update(now, [])
            assert sum(belief.weights) == pytest.approx(1.0)
            assert all(weight >= 0 for weight in belief.weights)


class TestCrossTallyWindow:
    """Belief updates bound each model's cross-tally history (memory flatness)."""

    def run_updates(self, window, until=120.0):
        belief = BeliefState(
            [make_hypothesis(cross_rate_pps=0.5)],
            cross_tally_window=window,
        )
        now = 0.0
        while now < until:
            now += 5.0
            belief.update(now)
        return belief, now

    def test_default_window_keeps_tallies_bounded(self):
        belief, now = self.run_updates(window=60.0)
        (hypothesis, _weight), = belief.top(1)
        deliveries = hypothesis.model.cross.deliveries
        assert deliveries, "cross traffic should have been delivered"
        assert all(time >= now - 60.0 for time, _ in deliveries)

    def test_none_window_retains_full_history(self):
        belief, _now = self.run_updates(window=None)
        (hypothesis, _weight), = belief.top(1)
        assert min(time for time, _ in hypothesis.model.cross.deliveries) < 10.0

    def test_window_must_be_positive(self):
        with pytest.raises(InferenceError):
            BeliefState([make_hypothesis()], cross_tally_window=0.0)

    def test_long_run_memory_stays_flat(self):
        short, _ = self.run_updates(window=30.0, until=300.0)
        (hypothesis, _weight), = short.top(1)
        # 0.5 packets/s over a 30 s window: ~15 entries, never the full 150.
        assert len(hypothesis.model.cross.deliveries) <= 20
