"""Tests for the fairness metrics (Jain's index, convergence time)."""

from __future__ import annotations

import pytest

from repro.elements.receiver import Delivery
from repro.metrics import convergence_time, flow_rate_matrix, jain_index


class TestJainIndex:
    def test_equal_shares_are_perfectly_fair(self):
        assert jain_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_flow_is_fair_by_definition(self):
        assert jain_index([3.2e6]) == pytest.approx(1.0)

    def test_empty_allocation(self):
        assert jain_index([]) == 0.0

    def test_all_zero_allocation_is_degenerate_equal(self):
        assert jain_index([0.0, 0.0, 0.0]) == pytest.approx(1.0)

    def test_zero_throughput_flow_drags_the_index_down(self):
        fair = jain_index([1e6, 1e6, 1e6])
        starved = jain_index([1e6, 1e6, 0.0])
        assert starved < fair
        assert starved == pytest.approx(2.0 / 3.0)

    def test_one_flow_takes_everything(self):
        assert jain_index([1e6, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(jain_index([10.0, 20.0, 30.0]))


class TestConvergenceTime:
    def test_step_trace_converges_at_the_step(self):
        # Flow b is dead for the first two windows, then the allocation
        # equalizes: convergence is the first window of the fair suffix.
        windows = [0.0, 1.0, 2.0, 3.0, 4.0]
        rates = {
            "a": [2.0, 2.0, 1.0, 1.0, 1.0],
            "b": [0.0, 0.0, 1.0, 1.0, 1.0],
        }
        assert convergence_time(windows, rates, threshold=0.95) == pytest.approx(2.0)

    def test_never_converges(self):
        windows = [0.0, 1.0, 2.0]
        rates = {"a": [2.0, 2.0, 2.0], "b": [0.0, 0.0, 0.0]}
        assert convergence_time(windows, rates, threshold=0.9) is None

    def test_transient_unfairness_resets_convergence(self):
        # Fair, then a late unfair window: only the final window counts.
        windows = [0.0, 1.0, 2.0, 3.0]
        rates = {"a": [1.0, 1.0, 5.0, 1.0], "b": [1.0, 1.0, 0.0, 1.0]}
        assert convergence_time(windows, rates, threshold=0.95) == pytest.approx(3.0)

    def test_fair_from_the_start(self):
        windows = [0.0, 1.0]
        rates = {"a": [1.0, 1.0], "b": [1.0, 1.0]}
        assert convergence_time(windows, rates) == pytest.approx(0.0)

    def test_degenerate_inputs(self):
        assert convergence_time([], {"a": []}) is None
        assert convergence_time([0.0], {}) is None


class TestFlowRateMatrix:
    def make_delivery(self, flow, at, bits=12_000.0):
        return Delivery(seq=0, flow=flow, size_bits=bits, sent_at=at, received_at=at)

    def test_windows_align_across_flows(self):
        deliveries = {
            "a": [self.make_delivery("a", 0.5), self.make_delivery("a", 1.5)],
            "b": [self.make_delivery("b", 1.5)],
        }
        windows, rates = flow_rate_matrix(deliveries, start=0.0, end=2.0, window=1.0)
        assert windows == [0.0, 1.0]
        assert rates["a"] == [12_000.0, 12_000.0]
        assert rates["b"] == [0.0, 12_000.0]

    def test_out_of_range_deliveries_ignored(self):
        deliveries = {"a": [self.make_delivery("a", 5.0)]}
        _, rates = flow_rate_matrix(deliveries, start=0.0, end=2.0, window=1.0)
        assert rates["a"] == [0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            flow_rate_matrix({}, start=0.0, end=1.0, window=0.0)
        with pytest.raises(ValueError):
            flow_rate_matrix({}, start=1.0, end=1.0, window=0.5)
