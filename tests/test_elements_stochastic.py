"""Tests for LOSS, JITTER, INTERMITTENT, SQUAREWAVE, EITHER, and PINGER."""

from __future__ import annotations

import pytest

from repro.elements import (
    Collector,
    Either,
    Intermittent,
    Jitter,
    Loss,
    Pinger,
    SquareWave,
)
from repro.errors import ConfigurationError
from repro.sim.element import Network
from repro.sim.packet import Packet


class TestLoss:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Loss(rate=-0.1)
        with pytest.raises(ConfigurationError):
            Loss(rate=1.5)

    def test_zero_rate_passes_everything(self, network):
        loss = Loss(rate=0.0, name="loss")
        sink = Collector(name="sink")
        loss.connect(sink)
        network.add(loss)
        network.start()
        for seq in range(100):
            loss.receive(Packet(seq=seq, flow="f"))
        assert sink.count() == 100
        assert loss.observed_loss_rate == 0.0

    def test_full_rate_drops_everything(self, network):
        loss = Loss(rate=1.0, name="loss")
        sink = Collector(name="sink")
        loss.connect(sink)
        network.add(loss)
        network.start()
        for seq in range(50):
            loss.receive(Packet(seq=seq, flow="f"))
        assert sink.count() == 0
        assert loss.drop_count == 50

    def test_intermediate_rate_statistics(self, network):
        loss = Loss(rate=0.2, name="loss")
        sink = Collector(name="sink")
        loss.connect(sink)
        network.add(loss)
        network.start()
        total = 5000
        for seq in range(total):
            loss.receive(Packet(seq=seq, flow="f"))
        assert loss.observed_loss_rate == pytest.approx(0.2, abs=0.03)
        assert sink.count() + loss.drop_count == total

    def test_reproducible_given_seed(self):
        outcomes = []
        for _ in range(2):
            network = Network(seed=42)
            loss = Loss(rate=0.5, name="loss")
            sink = Collector(name="sink")
            loss.connect(sink)
            network.add(loss)
            network.start()
            for seq in range(20):
                loss.receive(Packet(seq=seq, flow="f"))
            outcomes.append([p.seq for p in sink.packets])
        assert outcomes[0] == outcomes[1]

    def test_survival_tagging_mode_never_drops(self, network):
        loss = Loss(rate=0.3, name="loss", survival_tagging=True)
        sink = Collector(name="sink")
        loss.connect(sink)
        network.add(loss)
        network.start()
        for seq in range(10):
            loss.receive(Packet(seq=seq, flow="f"))
        assert sink.count() == 10
        assert all(p.meta["survival_prob"] == pytest.approx(0.7) for p in sink.packets)

    def test_survival_tagging_compounds(self, network):
        first = Loss(rate=0.5, name="loss-a", survival_tagging=True)
        second = Loss(rate=0.5, name="loss-b", survival_tagging=True)
        sink = Collector(name="sink")
        first.connect(second)
        second.connect(sink)
        network.add(first)
        network.start()
        first.receive(Packet(seq=0, flow="f"))
        assert sink.packets[0].meta["survival_prob"] == pytest.approx(0.25)


class TestJitter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Jitter(delay=-1, probability=0.5)
        with pytest.raises(ConfigurationError):
            Jitter(delay=1, probability=2.0)

    def test_zero_probability_never_delays(self, network):
        jitter = Jitter(delay=1.0, probability=0.0, name="jitter")
        sink = Collector(name="sink")
        jitter.connect(sink)
        network.add(jitter)
        network.start()
        jitter.receive(Packet(seq=0, flow="f", sent_at=0.0))
        network.run()
        assert sink.packets[0].delivered_at == pytest.approx(0.0)

    def test_certain_probability_always_delays(self, network):
        jitter = Jitter(delay=0.7, probability=1.0, name="jitter")
        sink = Collector(name="sink")
        jitter.connect(sink)
        network.add(jitter)
        network.start()
        jitter.receive(Packet(seq=0, flow="f", sent_at=0.0))
        network.run()
        assert sink.packets[0].delivered_at == pytest.approx(0.7)
        assert sink.packets[0].meta["jittered"] == 1

    def test_counts_split(self, network):
        jitter = Jitter(delay=0.1, probability=0.5, name="jitter")
        sink = Collector(name="sink")
        jitter.connect(sink)
        network.add(jitter)
        network.start()
        for seq in range(200):
            jitter.receive(Packet(seq=seq, flow="f"))
        network.run()
        assert jitter.jittered_count + jitter.untouched_count == 200
        assert 40 < jitter.jittered_count < 160


class TestPinger:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Pinger(rate_pps=0)
        with pytest.raises(ConfigurationError):
            Pinger(rate_pps=1, packet_bits=0)

    def test_isochronous_schedule(self, network):
        pinger = Pinger(rate_pps=2.0, packet_bits=8_000, flow="cross", name="pinger")
        sink = Collector(name="sink")
        pinger.connect(sink)
        network.add(pinger)
        network.run(until=2.6)
        arrivals = [p.sent_at for p in sink.packets]
        assert arrivals == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0, 2.5])
        assert all(p.flow == "cross" for p in sink.packets)

    def test_start_and_stop_time(self, network):
        pinger = Pinger(rate_pps=1.0, start_time=2.0, stop_time=4.0, name="pinger")
        sink = Collector(name="sink")
        pinger.connect(sink)
        network.add(pinger)
        network.run(until=10.0)
        arrivals = [p.sent_at for p in sink.packets]
        assert arrivals == pytest.approx([2.0, 3.0, 4.0])

    def test_rate_bps_property(self):
        pinger = Pinger(rate_pps=0.7, packet_bits=12_000)
        assert pinger.rate_bps == pytest.approx(8_400)


class TestIntermittent:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Intermittent(mean_time_to_switch=0)

    def test_blocks_when_disconnected(self, network):
        gate = Intermittent(mean_time_to_switch=1e9, name="gate", initially_connected=False)
        sink = Collector(name="sink")
        gate.connect(sink)
        network.add(gate)
        network.start()
        gate.receive(Packet(seq=0, flow="f"))
        assert sink.count() == 0
        assert gate.blocked_count == 1

    def test_passes_when_connected(self, network):
        gate = Intermittent(mean_time_to_switch=1e9, name="gate", initially_connected=True)
        sink = Collector(name="sink")
        gate.connect(sink)
        network.add(gate)
        network.start()
        gate.receive(Packet(seq=0, flow="f"))
        assert sink.count() == 1

    def test_switches_over_time(self, network):
        gate = Intermittent(mean_time_to_switch=1.0, name="gate")
        sink = Collector(name="sink")
        gate.connect(sink)
        network.add(gate)
        network.run(until=50.0)
        assert len(gate.switch_times) > 10

    def test_switch_probability(self):
        gate = Intermittent(mean_time_to_switch=100.0)
        assert gate.switch_probability(0.0) == 0.0
        assert gate.switch_probability(100.0) == pytest.approx(0.632, abs=0.01)
        assert gate.switch_probability(1e9) == pytest.approx(1.0)


class TestSquareWave:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SquareWave(switch_interval=0)
        with pytest.raises(ConfigurationError):
            SquareWave(switch_interval=1, offset=-1)

    def test_deterministic_toggling(self, network):
        gate = SquareWave(switch_interval=100.0, name="gate")
        sink = Collector(name="sink")
        gate.connect(sink)
        network.add(gate)
        network.run(until=350.0)
        assert gate.switch_times == pytest.approx([100.0, 200.0, 300.0])

    def test_state_at_schedule(self):
        gate = SquareWave(switch_interval=100.0, initially_connected=True)
        assert gate.state_at(50.0) is True
        assert gate.state_at(150.0) is False
        assert gate.state_at(250.0) is True
        assert gate.state_at(350.0) is False

    def test_gating_traffic(self, network):
        gate = SquareWave(switch_interval=1.0, name="gate")
        sink = Collector(name="sink")
        pinger = Pinger(rate_pps=10.0, name="pinger", flow="cross")
        pinger.connect(gate)
        gate.connect(sink)
        network.add(pinger)
        network.run(until=2.0)
        # Connected during [0, 1), disconnected during [1, 2): roughly half pass.
        assert 8 <= sink.count() <= 12
        assert gate.blocked_count >= 8


class TestEither:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Either(Collector(), Collector(), mean_time_to_switch=0)

    def test_routes_to_active_branch(self, network):
        first = Collector(name="first")
        second = Collector(name="second")
        either = Either(first, second, mean_time_to_switch=1e9, name="either")
        network.add(either)
        network.start()
        either.receive(Packet(seq=0, flow="f"))
        either.force_branch(False)
        either.receive(Packet(seq=1, flow="f"))
        assert first.count() == 1
        assert second.count() == 1

    def test_switches_over_time(self, network):
        either = Either(Collector(name="a"), Collector(name="b"), mean_time_to_switch=0.5)
        network.add(either)
        network.run(until=20.0)
        assert len(either.switch_times) > 5
