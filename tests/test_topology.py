"""Tests for topology builders, validation, and the preset networks."""

from __future__ import annotations

import pytest

from repro.elements import Buffer, Collector, Delay, Receiver, Throughput
from repro.errors import ConfigurationError, WiringError
from repro.sim.element import Network
from repro.sim.packet import Packet
from repro.topology import (
    chain,
    element_graph,
    figure2_network,
    single_link_network,
    validate_network,
)
from repro.topology.builder import terminate


class TestBuilder:
    def test_chain_wires_and_returns_endpoints(self):
        a = Delay(0.1, name="a")
        b = Delay(0.1, name="b")
        c = Collector(name="c")
        first, last = chain(a, b, c)
        assert first is a
        assert last is c
        assert a.downstream is b
        assert b.downstream is c

    def test_chain_requires_elements(self):
        with pytest.raises(WiringError):
            chain()

    def test_terminate(self):
        a = Delay(0.1, name="a")
        sink = Collector(name="sink")
        assert terminate(a, sink) is sink
        assert a.downstream is sink


class TestValidation:
    def test_clean_network_has_no_problems(self):
        network = Network(seed=0)
        buffer = Buffer(capacity_bits=10_000, name="buf")
        link = Throughput(rate_bps=1_000, name="link")
        sink = Receiver(name="rx")
        chain(buffer, link, sink)
        network.add(buffer)
        assert validate_network(network) == []

    def test_unterminated_path_is_reported(self):
        network = Network(seed=0)
        buffer = Buffer(capacity_bits=10_000, name="buf")
        link = Throughput(rate_bps=1_000, name="link")
        buffer.connect(link)
        network.add(buffer)
        problems = validate_network(network)
        assert any("link" in problem for problem in problems)

    def test_cycle_is_reported(self):
        network = Network(seed=0)
        a = Delay(0.1, name="a")
        b = Delay(0.1, name="b")
        a.connect(b)
        b.connect(a)
        network.add(a)
        problems = validate_network(network, require_terminated=False)
        assert any("cycle" in problem for problem in problems)

    def test_element_graph_export(self):
        buffer = Buffer(capacity_bits=10_000, name="buf")
        link = Throughput(rate_bps=1_000, name="link")
        sink = Receiver(name="rx")
        chain(buffer, link, sink)
        graph = element_graph([buffer])
        assert set(graph.nodes) == {"buf", "link", "rx"}
        assert graph.has_edge("buf", "link")
        assert graph.nodes["link"]["kind"] == "Throughput"


class TestFigure2Preset:
    def test_structure_and_parameters(self):
        net = figure2_network()
        assert net.link.rate_bps == pytest.approx(12_000)
        assert net.loss.rate == pytest.approx(0.2)
        assert net.buffer.capacity_bits == pytest.approx(96_000)
        assert net.pinger.rate_bps == pytest.approx(0.7 * 12_000)
        assert net.gate is not None
        assert validate_network(net.network) == []

    def test_invalid_cross_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            figure2_network(cross_fraction=1.5)

    def test_unknown_gate_rejected(self):
        with pytest.raises(ConfigurationError):
            figure2_network(cross_gate="wibble")

    def test_cross_traffic_reaches_cross_receiver(self):
        net = figure2_network(loss_rate=0.0, cross_gate="none")
        net.network.run(until=30.0)
        assert net.cross_receiver.count("cross") > 10
        assert net.sender_receiver.count == 0

    def test_sender_packets_reach_sender_receiver(self):
        net = figure2_network(loss_rate=0.0, cross_fraction=0.0, cross_gate="none")
        net.network.start()
        net.entry.receive(Packet(seq=0, flow=net.sender_flow, size_bits=12_000, sent_at=0.0))
        net.network.run(until=10.0)
        assert net.sender_receiver.count == 1
        assert net.sender_receiver.deliveries[0].received_at == pytest.approx(1.0)

    def test_squarewave_gating_shapes_cross_traffic(self):
        net = figure2_network(loss_rate=0.0, switch_interval=10.0, seed=3)
        net.network.run(until=40.0)
        arrivals = [p.delivered_at for p in net.cross_receiver.packets if p.flow == "cross"]
        on_phase = [t for t in arrivals if t < 10.0 or 20.0 <= t < 30.0]
        off_phase = [t for t in arrivals if 11.0 <= t < 20.0 or 31.0 <= t < 40.0]
        assert len(on_phase) > 0
        assert len(off_phase) <= 1  # at most a queued straggler right after shut-off

    def test_intermittent_gate_variant(self):
        net = figure2_network(cross_gate="intermittent", mean_time_to_switch=5.0, seed=11)
        net.network.run(until=50.0)
        assert net.gate is not None
        assert len(net.gate.switch_times) > 2


class TestSingleLinkPreset:
    def test_minimal_configuration(self):
        net = single_link_network()
        assert net.loss is None
        assert net.pinger is None
        net.network.start()
        net.entry.receive(Packet(seq=0, flow=net.sender_flow, size_bits=12_000, sent_at=0.0))
        net.network.run()
        assert net.sender_receiver.count == 1

    def test_with_loss_and_cross_traffic(self):
        net = single_link_network(loss_rate=0.5, cross_rate_pps=0.5, seed=2)
        assert net.loss is not None
        assert net.pinger is not None
        net.network.run(until=60.0)
        assert net.cross_receiver is not None
        assert net.cross_receiver.count("cross") > 5

    def test_initial_fill_drains_before_new_traffic(self):
        net = single_link_network(buffer_initial_fill_bits=24_000)
        net.network.start()
        net.entry.receive(Packet(seq=0, flow=net.sender_flow, size_bits=12_000, sent_at=0.0))
        net.network.run()
        assert net.sender_receiver.deliveries[0].received_at == pytest.approx(3.0)
