"""Tests for the canonical BENCH_*.json records and the compare.py gate."""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.benchmarking import BenchRecord, update_bench_record

REPO_ROOT = Path(__file__).resolve().parent.parent
COMPARE = REPO_ROOT / "benchmarks" / "compare.py"


def make_record(tmp_path, wall_time=1.0, speedup=6.0):
    record = BenchRecord(name="inference")
    record.record("scalar_512", {"wall_time_s": wall_time * speedup})
    record.record(
        "vectorized_512",
        {"wall_time_s": wall_time, "speedup_vs_scalar": speedup},
        meta={"backend": "vectorized"},
    )
    record.gate("vectorized_512", "speedup_vs_scalar", minimum=5.0)
    path = tmp_path / "BENCH_inference.json"
    record.write(path)
    return record, path


class TestBenchRecord:
    def test_roundtrip_is_canonical(self, tmp_path):
        _, path = make_record(tmp_path)
        first = path.read_text()
        BenchRecord.load(path).write(path)
        assert path.read_text() == first
        payload = json.loads(first)
        assert payload["schema"] == 1
        assert payload["name"] == "inference"

    def test_gates_pass_and_fail(self, tmp_path):
        record, _ = make_record(tmp_path, speedup=6.0)
        assert record.check_gates() == []
        slow, _ = make_record(tmp_path, speedup=3.0)
        failures = slow.check_gates()
        assert len(failures) == 1
        assert "speedup_vs_scalar" in failures[0].message

    def test_missing_gated_metric_fails(self):
        record = BenchRecord(name="x")
        record.gate("absent", "wall_time_s", maximum=1.0)
        failures = record.check_gates()
        assert failures and "missing" in failures[0].message

    def test_regression_detection(self, tmp_path):
        baseline, _ = make_record(tmp_path, wall_time=1.0)
        same, _ = make_record(tmp_path, wall_time=1.1)
        slower, _ = make_record(tmp_path, wall_time=2.0)
        assert same.check_regressions(baseline, max_regression=0.25) == []
        failures = slower.check_regressions(baseline, max_regression=0.25)
        assert failures and "exceeds baseline" in failures[0].message

    def test_new_entries_are_not_regressions(self, tmp_path):
        baseline = BenchRecord(name="inference")
        current, _ = make_record(tmp_path)
        assert current.check_regressions(baseline) == []

    def test_update_merges_entries(self, tmp_path):
        path = tmp_path / "BENCH_merge.json"
        update_bench_record(path, "merge", {"a": ({"wall_time_s": 1.0}, None)})
        update_bench_record(
            path,
            "merge",
            {"b": ({"wall_time_s": 2.0}, {"note": "second"})},
            gates={"b.wall_time_s": {"max": 3.0}},
        )
        merged = BenchRecord.load(path)
        assert set(merged.entries) == {"a", "b"}
        assert merged.check_gates() == []

    def test_update_retracts_gates_mapped_to_none(self, tmp_path):
        """A hardware-conditional gate from an earlier run can be withdrawn."""
        path = tmp_path / "BENCH_retract.json"
        update_bench_record(
            path,
            "retract",
            {"fast": ({"speedup": 3.0}, None)},
            gates={"fast.speedup": {"min": 2.5}},
        )
        update_bench_record(
            path,
            "retract",
            {"fast": ({"speedup": 0.8}, None)},
            gates={"fast.speedup": None},
        )
        merged = BenchRecord.load(path)
        assert "fast.speedup" not in merged.gates
        assert merged.check_gates() == []


class TestCompareCli:
    def run_compare(self, *args):
        return subprocess.run(
            [sys.executable, str(COMPARE), *args],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )

    def test_passing_record_exits_zero(self, tmp_path):
        _, path = make_record(tmp_path)
        result = self.run_compare(str(path))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK" in result.stdout

    def test_gate_failure_exits_one(self, tmp_path):
        _, path = make_record(tmp_path, speedup=2.0)
        result = self.run_compare(str(path))
        assert result.returncode == 1
        assert "FAIL" in result.stdout

    def test_baseline_regression_exits_one(self, tmp_path):
        # make_record always writes BENCH_inference.json, so keep the
        # baseline and the slow run in separate directories.
        base_dir, slow_dir = tmp_path / "base", tmp_path / "slow"
        base_dir.mkdir()
        slow_dir.mkdir()
        _, base_path = make_record(base_dir, wall_time=1.0)
        _, slow_path = make_record(slow_dir, wall_time=2.0)
        result = self.run_compare(
            str(slow_path), "--baseline", str(base_path), "--max-regression", "0.25"
        )
        assert result.returncode == 1
        assert "regression" in result.stdout

    def test_missing_record_exits_two(self, tmp_path):
        result = self.run_compare(str(tmp_path / "nope.json"))
        assert result.returncode == 2

    def test_baseline_dir_matches_records_by_filename(self, tmp_path):
        """One invocation gates many records, each against its own baseline."""
        base_dir, run_dir = tmp_path / "baselines", tmp_path / "run"
        base_dir.mkdir()
        run_dir.mkdir()
        make_record(base_dir, wall_time=1.0)
        _, fast_path = make_record(run_dir, wall_time=1.05)
        result = self.run_compare(str(fast_path), "--baseline-dir", str(base_dir))
        assert result.returncode == 0, result.stdout + result.stderr
        # Now regress the same record: the per-file baseline must catch it.
        _, slow_path = make_record(run_dir, wall_time=2.0)
        result = self.run_compare(
            str(slow_path), "--baseline-dir", str(base_dir), "--max-regression", "0.25"
        )
        assert result.returncode == 1
        assert "regression" in result.stdout

    def test_baseline_dir_without_matching_file_gates_only(self, tmp_path):
        base_dir = tmp_path / "baselines"
        base_dir.mkdir()
        _, path = make_record(tmp_path)
        result = self.run_compare(str(path), "--baseline-dir", str(base_dir))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "no baseline" in result.stdout

    def test_single_baseline_with_many_records_is_usage_error(self, tmp_path):
        """``--baseline`` is ambiguous across records; demand --baseline-dir."""
        a_dir, b_dir = tmp_path / "a", tmp_path / "b"
        a_dir.mkdir()
        b_dir.mkdir()
        _, first = make_record(a_dir)
        _, second = make_record(b_dir)
        _, base = make_record(tmp_path)
        result = self.run_compare(str(first), str(second), "--baseline", str(base))
        assert result.returncode == 2

    def test_baseline_and_baseline_dir_are_mutually_exclusive(self, tmp_path):
        _, path = make_record(tmp_path)
        result = self.run_compare(
            str(path), "--baseline", str(path), "--baseline-dir", str(tmp_path)
        )
        assert result.returncode == 2

    @pytest.mark.skipif(
        not (REPO_ROOT / "BENCH_inference.json").exists(),
        reason="BENCH_inference.json not generated yet (run pytest -m bench)",
    )
    def test_repo_record_passes_its_gates(self):
        result = self.run_compare("BENCH_inference.json")
        assert result.returncode == 0, result.stdout + result.stderr
