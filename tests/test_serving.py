"""Serving-subsystem suite: registry, breaker, fallback chain, chaos.

The contract under test is the degradation ladder: a request for a
``(config_fingerprint, decision_signature)`` pair must always receive a
valid decision — bit-identical to the published
:class:`~repro.api.policy.PolicyTable` on a table hit, equal (to float
tolerance) to a direct :class:`~repro.core.planner.ExpectedUtilityPlanner`
run on a planner fallback, and the documented safe default when everything
else is on fire.  The chaos acceptance test drives a seeded
:class:`~repro.runner.faults.FaultPlan` through the service and checks the
per-tier counters against an independent reference walk of the same plan.
"""

from __future__ import annotations

import asyncio
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api.config import SenderConfig
from repro.api.policy import decision_from_payload, decision_to_payload, precompute_policy_table
from repro.errors import (
    ConfigurationError,
    OverloadedError,
    ServingError,
    TableIntegrityError,
)
from repro.inference import single_link_prior
from repro.runner.faults import FaultPlan
from repro.runner.supervise import Supervision
from repro.serving import (
    CircuitBreaker,
    DecisionService,
    PolicyClient,
    PolicyServer,
    PolicyTableRegistry,
    ServingFaultInjector,
    belief_from_signature,
    content_digest,
    safe_default_decision,
)
from repro.serving.fallback import DEFAULT_SAFE_DELAY

REPO_ROOT = Path(__file__).resolve().parent.parent


def fast_config(**overrides) -> SenderConfig:
    """The suite's sub-second sender config (the fast-test pattern)."""
    defaults = dict(
        prior=single_link_prior(link_rate_points=2, fill_points=1),
        top_k=4,
        max_hypotheses=32,
        belief_backend="vectorized",
        rollout_backend="vectorized",
        policy="table",
    )
    defaults.update(overrides)
    return SenderConfig(**defaults)


@pytest.fixture(scope="module")
def published():
    """One precomputed table, published into a module-lifetime registry."""
    import tempfile

    config = fast_config()
    table = precompute_policy_table(
        config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
    )
    root = tempfile.mkdtemp(prefix="repro-serving-")
    registry = PolicyTableRegistry(root)
    registry.publish(table)
    return config, table, registry


def off_table_signature(table, bump: int = 1) -> tuple:
    """A well-formed signature the table does not hold (forces tier 2)."""
    base = table.signatures()[0]
    max_rounds = max(
        max((row[3] for row in signature), default=0)
        for signature in table.signatures()
    )
    return tuple(
        (row[0], row[1], row[2], max_rounds + bump, True) for row in base
    )


# ---------------------------------------------------------------- registry


class TestRegistry:
    def test_publish_and_lookup_round_trip(self, tmp_path):
        config = fast_config()
        table = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        registry = PolicyTableRegistry(tmp_path)
        path = registry.publish(table)
        assert path.exists()
        loaded = registry.lookup(config.fingerprint())
        assert loaded is not None
        assert loaded.size == table.size
        for signature in table.signatures():
            assert loaded.decision_for(signature) == table.decision_for(signature)

    def test_publish_is_idempotent_and_content_addressed(self, published, tmp_path):
        config, table, _ = published
        registry = PolicyTableRegistry(tmp_path)
        first = registry.publish(table)
        second = registry.publish(table)
        assert first == second
        digest = registry.current_digest(config.fingerprint())
        assert first.stem == digest
        assert content_digest(first.read_bytes()) == digest
        assert registry.versions(config.fingerprint()) == [digest]

    def test_lookup_unpublished_fingerprint_misses(self, tmp_path):
        registry = PolicyTableRegistry(tmp_path)
        assert registry.lookup("cafecafecafecafe") is None
        assert registry.fingerprints() == []

    def test_corrupt_version_is_quarantined_never_served(self, tmp_path):
        config = fast_config()
        table = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        registry = PolicyTableRegistry(tmp_path)
        path = registry.publish(table)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])  # torn write

        assert registry.lookup(config.fingerprint()) is None
        assert registry.corrupt == 1
        assert not path.exists()
        quarantined = tmp_path / "quarantine" / path.name
        assert quarantined.exists()

    def test_schema_mismatch_is_quarantined(self, tmp_path):
        config = fast_config()
        table = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        registry = PolicyTableRegistry(tmp_path)
        path = registry.publish(table)
        payload = json.loads(path.read_text())
        payload["schema"] = 999
        text = json.dumps(payload, sort_keys=True, indent=1) + "\n"
        # Re-address the tampered bytes so the digest check passes and the
        # schema check is what fires.
        tampered = path.with_name(content_digest(text.encode()) + ".json")
        tampered.write_text(text)
        (path.parent / "CURRENT").write_text(tampered.stem + "\n")

        assert registry.lookup(config.fingerprint()) is None
        assert registry.corrupt == 1
        assert (tmp_path / "quarantine" / tampered.name).exists()

    def test_fingerprint_mismatch_is_quarantined(self, published, tmp_path):
        config, table, _ = published
        registry = PolicyTableRegistry(tmp_path)
        path = registry.publish(table)
        imposter_dir = tmp_path / "tables" / "deadbeefdeadbeef"
        imposter_dir.mkdir(parents=True)
        (imposter_dir / path.name).write_bytes(path.read_bytes())
        (imposter_dir / "CURRENT").write_text(path.stem + "\n")

        assert registry.lookup("deadbeefdeadbeef") is None
        assert registry.corrupt == 1
        # The real fingerprint still serves.
        assert registry.lookup(config.fingerprint()) is not None

    def test_dangling_current_pointer_reads_as_miss(self, tmp_path):
        config = fast_config()
        table = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        registry = PolicyTableRegistry(tmp_path)
        path = registry.publish(table)
        path.unlink()
        assert registry.lookup(config.fingerprint()) is None
        assert registry.corrupt == 0  # a miss, not corruption

    def test_republish_hot_reloads_without_restart(self, tmp_path):
        config = fast_config()
        first = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        second = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 1, 2), seed=3
        )
        registry = PolicyTableRegistry(tmp_path)
        registry.publish(first)
        served = registry.lookup(config.fingerprint())
        assert served is not None and served.size == first.size

        registry.publish(second)  # no restart, no reload() call
        served = registry.lookup(config.fingerprint())
        assert served is not None and served.size == second.size
        assert len(registry.versions(config.fingerprint())) == 2

    def test_publish_without_fingerprint_is_rejected(self, tmp_path):
        from repro.api.policy import PolicyTable

        table = PolicyTable(top_k=4)
        with pytest.raises(TableIntegrityError, match="without a config fingerprint"):
            PolicyTableRegistry(tmp_path).publish(table)


# ----------------------------------------------------------------- breaker


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs) -> tuple[CircuitBreaker, FakeClock]:
        clock = FakeClock()
        defaults = dict(failure_threshold=3, cooldown=2.0, seed=5, clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker("cfg", **defaults), clock

    def test_trips_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opens == 1

    def test_success_resets_the_failure_count(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.cooldown_remaining() > 0
        clock.now = breaker.cooldown_remaining() + 0.001
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # held until the probe reports

    def test_successful_probe_closes_failed_probe_reopens_longer(self):
        breaker, clock = self.make()
        for _ in range(3):
            breaker.record_failure()
        first_cooldown = breaker.cooldown_remaining()
        clock.now += first_cooldown + 0.001
        assert breaker.allow()
        breaker.record_failure()  # failed probe: reopen, backoff doubled
        assert breaker.state == "open"
        assert breaker.opens == 2
        second_cooldown = breaker.cooldown_remaining()
        assert second_cooldown > first_cooldown

        clock.now += second_cooldown + 0.001
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_cooldowns_reuse_supervision_backoff(self):
        """The open-state cooldown is exactly the runner's retry delay."""
        breaker, clock = self.make(cooldown=2.0, seed=5)
        for _ in range(3):
            breaker.record_failure()
        expected = Supervision(backoff=2.0, backoff_cap=300.0, jitter=0.5, seed=5).delay(
            "breaker:cfg", 1
        )
        assert breaker.cooldown_remaining() == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=0.0)


# --------------------------------------------------- belief reconstruction


class TestBeliefFromSignature:
    def test_round_trip_reproduces_the_signature(self):
        config = fast_config()
        belief = config.build_belief()
        belief.record_send(0, config.packet_bits, 0.0)
        belief.record_send(1, config.packet_bits, 0.05)
        belief.update(0.4)
        resolution = config.policy_resolution_bits
        signature = belief.decision_signature(config.top_k, resolution)

        rebuilt = belief_from_signature(
            signature, queue_resolution_bits=resolution, now=0.4
        )
        again = rebuilt.decision_signature(config.top_k, resolution)
        assert len(again) == len(signature)
        for row, row2 in zip(signature, again):
            assert row2[0] == row[0]  # params
            assert row2[1] == pytest.approx(row[1], abs=1.5e-3)  # weight
            assert row2[2] == row[2]  # gate
            assert row2[3] == row[3]  # backlog rounds
            assert row2[4] == row[4]  # busy

    def test_idle_rows_come_back_idle(self):
        config = fast_config()
        belief = config.build_belief()
        resolution = config.policy_resolution_bits
        signature = belief.decision_signature(config.top_k, resolution)
        assert all(not row[4] for row in signature)
        rebuilt = belief_from_signature(signature, queue_resolution_bits=resolution)
        assert rebuilt.decision_signature(config.top_k, resolution) == signature

    def test_empty_signature_is_rejected(self):
        with pytest.raises(ServingError, match="empty signature"):
            belief_from_signature((), queue_resolution_bits=3_000.0)

    def test_malformed_row_is_rejected(self):
        with pytest.raises(ServingError, match="malformed signature row"):
            belief_from_signature(
                (("not", "a", "row"),), queue_resolution_bits=3_000.0
            )


# ----------------------------------------------------- the fallback chain


class TestDecisionServiceTiers:
    def test_tier1_is_bit_identical_to_direct_table_lookup(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config])
        for signature in table.signatures():
            served = service.decide(config.fingerprint(), signature)
            assert served.status == "ok"
            assert served.tier == "table"
            assert served.decision == table.decision_for(signature)
        counters = service.counters_snapshot()
        assert counters["table_hits"] == len(table.signatures())
        assert counters["errors"] == 0

    def test_tier2_matches_direct_planner_on_reconstructed_belief(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config], planner_timeout=30.0)
        signature = off_table_signature(table)
        served = service.decide(config.fingerprint(), signature, now=5.0)
        assert served.tier == "planner"

        planner = config.build_planner()
        direct = planner.decide(
            belief_from_signature(
                signature,
                queue_resolution_bits=table.queue_resolution_bits,
                now=5.0,
            ),
            5.0,
        )
        assert served.decision.action.delay == pytest.approx(
            direct.action.delay, rel=1e-9
        )
        assert served.decision.horizon == pytest.approx(direct.horizon, rel=1e-9)
        assert set(served.decision.expected_utilities) == set(direct.expected_utilities)
        for delay, utility in direct.expected_utilities.items():
            assert served.decision.expected_utilities[delay] == pytest.approx(
                utility, rel=1e-9
            )

    def test_tier3_unknown_fingerprint_serves_global_default(self, published):
        _, table, registry = published
        service = DecisionService(registry, [])
        served = service.decide("0000000000000000", table.signatures()[0])
        assert served.tier == "default"
        assert served.status == "ok"
        assert not served.known_config
        assert served.decision.action.delay == DEFAULT_SAFE_DELAY

    def test_tier3_when_planner_always_fails(self, published, tmp_path):
        """All planner attempts fail -> breaker opens -> defaults served."""
        config, table, _ = published
        empty = PolicyTableRegistry(tmp_path)  # no tables: tier 1 misses
        plan = FaultPlan(seed=3, exception_rate=1.0)
        requests = 8
        service = DecisionService(
            empty,
            [config],
            injector=ServingFaultInjector(plan, requests),
            breaker_threshold=3,
            breaker_cooldown=300.0,
        )
        signature = table.signatures()[0]
        for _ in range(requests):
            served = service.decide(config.fingerprint(), signature)
            assert served.status == "ok"
            assert served.decision.action.delay >= 0.0
        counters = service.counters_snapshot()
        assert counters["planner_failures"] == 3  # then the breaker opened
        assert counters["breaker_open"] == requests - 3
        assert counters["default_served"] == requests
        assert counters["errors"] == 0
        assert service.breaker_for(config.fingerprint()).state == "open"

    def test_safe_default_provenance_is_slowest_prior_rate(self):
        config = fast_config()
        rates = [
            assignment["link_rate_bps"]
            for assignment, _ in config.prior.combinations()
        ]
        decision = safe_default_decision(config)
        assert decision.action.delay == pytest.approx(
            config.packet_bits / min(rates)
        )
        # Unknown config: one default packet at the global prior floor.
        assert safe_default_decision(None).action.delay == DEFAULT_SAFE_DELAY

    def test_planner_timeout_degrades_to_default(self, published, tmp_path):
        config, table, _ = published
        empty = PolicyTableRegistry(tmp_path)
        plan = FaultPlan(seed=1, hangs=1, hang_seconds=5.0)
        service = DecisionService(
            empty,
            [config],
            planner_timeout=0.15,
            injector=ServingFaultInjector(plan, 1),
        )
        started = time.monotonic()
        served = service.decide(config.fingerprint(), table.signatures()[0])
        elapsed = time.monotonic() - started
        assert served.tier == "default"
        assert elapsed < 2.0  # bounded by the timeout, not the hang
        assert service.counters_snapshot()["planner_failures"] == 1


# ------------------------------------------------- reload & shared registry


class TestConcurrentServing:
    def test_hot_reload_races_in_flight_lookups(self, tmp_path):
        """Publish/reload churn under a request hammer: zero bad answers."""
        config = fast_config()
        tables = [
            precompute_policy_table(
                config, pilot_duration=5.0, burst_levels=levels, seed=seed
            )
            for levels, seed in (((0, 2), 2), ((0, 1, 2), 3))
        ]
        registry = PolicyTableRegistry(tmp_path)
        registry.publish(tables[0])
        service = DecisionService(registry, [config], planner_timeout=30.0)
        # Signatures present in both versions answer from whichever table
        # a racing lookup lands on; the rest fall through to the planner.
        common = sorted(
            set(tables[0].signatures()) & set(tables[1].signatures())
        )
        assert common, "the two versions share no signatures"
        fingerprint = config.fingerprint()
        failures: list[str] = []
        stop = threading.Event()

        def hammer() -> None:
            i = 0
            while not stop.is_set():
                served = service.decide(fingerprint, common[i % len(common)])
                if served.status != "ok" or served.tier not in ("table", "planner"):
                    failures.append(f"{served.status}/{served.tier}")
                i += 1

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        for flip in range(10):
            registry.publish(tables[flip % 2])
            registry.reload()
        stop.set()
        for thread in threads:
            thread.join()

        assert failures == []
        counters = service.counters_snapshot()
        assert counters["errors"] == 0
        assert counters["table_hits"] > 0

    def test_two_instances_share_one_registry_directory(self, tmp_path):
        config = fast_config()
        first = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 2), seed=2
        )
        second = precompute_policy_table(
            config, pilot_duration=5.0, burst_levels=(0, 1, 2), seed=3
        )
        registry_a = PolicyTableRegistry(tmp_path)
        registry_b = PolicyTableRegistry(tmp_path)
        registry_a.publish(first)

        fingerprint = config.fingerprint()
        assert registry_b.lookup(fingerprint) is not None
        # Instance A publishes a new version; B observes it on its next
        # lookup without any signal between the processes.
        registry_a.publish(second)
        assert registry_b.current_digest(fingerprint) == registry_a.current_digest(
            fingerprint
        )
        assert registry_b.lookup(fingerprint).size == second.size


# ------------------------------------------------------------ HTTP surface


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestPolicyServerHTTP:
    def test_decide_health_metrics_and_reload(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config])
        signature = table.signatures()[0]

        async def scenario():
            server = PolicyServer(service, max_pending=4)
            await server.start()
            client = PolicyClient(port=server.port)
            try:
                payload = await client.decide(config.fingerprint(), signature)
                assert payload["status"] == "ok"
                assert payload["tier"] == "table"
                assert payload["table_digest"] == registry.current_digest(
                    config.fingerprint()
                )
                served = decision_from_payload(payload["decision"])
                assert served == table.decision_for(signature)
                assert payload["counters"]["table_hits"] >= 1

                status, health = await client.get("/healthz")
                assert status == 200 and health["status"] == "ok"
                status, ready = await client.get("/readyz")
                assert status == 200 and ready["status"] == "ready"
                status, metrics = await client.get("/metrics")
                assert status == 200
                assert metrics["counters"]["requests"] >= 1
                reloaded = await client.reload()
                assert reloaded == {"status": "ok", "dropped": 1}

                status, missing = await client.get("/nope")
                assert status == 404 and missing["status"] == "error"
            finally:
                await client.close()
                await server.stop()

        run_async(scenario())

    def test_malformed_decide_is_a_400_not_a_crash(self, published):
        config, _, registry = published
        service = DecisionService(registry, [config])

        async def scenario():
            server = PolicyServer(service)
            await server.start()
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            body = b"this is not json"
            writer.write(
                b"POST /decide HTTP/1.1\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body)
            )
            await writer.drain()
            status_line = await reader.readline()
            assert b"400" in status_line
            writer.close()
            await server.stop()

        run_async(scenario())

    def test_unready_without_tables_or_configs(self, tmp_path):
        service = DecisionService(PolicyTableRegistry(tmp_path), [])

        async def scenario():
            server = PolicyServer(service)
            await server.start()
            client = PolicyClient(port=server.port)
            try:
                status, payload = await client.get("/readyz")
                assert status == 503
                assert payload["status"] == "unready"
                assert "no published tables" in payload["reasons"][0]
            finally:
                await client.close()
                await server.stop()

        run_async(scenario())

    def test_admission_control_sheds_with_a_valid_decision(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config])
        signature = table.signatures()[0]

        async def scenario():
            server = PolicyServer(service, max_pending=2)
            await server.start()
            server._pending = server.max_pending  # saturate admission control
            client = PolicyClient(port=server.port)
            strict = PolicyClient(port=server.port, raise_on_overload=True)
            try:
                payload = await client.decide(config.fingerprint(), signature)
                assert payload["status"] == "overloaded"
                assert payload["tier"] == "default"
                assert payload["decision"]["delay"] >= 0.0
                with pytest.raises(OverloadedError):
                    await strict.decide(config.fingerprint(), signature)

                status, ready = await client.get("/readyz")
                assert status == 503  # saturated instances report unready
            finally:
                server._pending = 0
                await client.close()
                await strict.close()
                await server.stop()

        run_async(scenario())
        assert service.counters_snapshot()["shed"] == 2

    def test_concurrent_overload_sheds_some_and_answers_all(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config])
        signature = table.signatures()[0]
        slow = threading.Event()
        original = service.decide

        def slowed(fingerprint, sig, now=0.0):
            slow.wait(0.3)
            return original(fingerprint, sig, now)

        service.decide = slowed  # type: ignore[method-assign]

        async def scenario():
            server = PolicyServer(service, max_pending=2)
            await server.start()
            clients = [PolicyClient(port=server.port) for _ in range(6)]
            try:
                tasks = [
                    asyncio.create_task(
                        client.decide(config.fingerprint(), signature)
                    )
                    for client in clients
                ]
                await asyncio.sleep(0.05)
                slow.set()
                payloads = await asyncio.gather(*tasks)
            finally:
                for client in clients:
                    await client.close()
                await server.stop()
            return payloads

        payloads = run_async(scenario())
        statuses = [payload["status"] for payload in payloads]
        assert all(status in ("ok", "overloaded") for status in statuses)
        assert statuses.count("overloaded") >= 1  # admission control engaged
        assert all(payload["decision"]["delay"] >= 0.0 for payload in payloads)


# ------------------------------------------------------- chaos acceptance


class TestChaosAcceptance:
    def test_every_request_gets_a_valid_decision_and_counters_match(
        self, published
    ):
        """The headline robustness claim, checked against a reference walk.

        A seeded fault plan (exceptions, hangs, in-memory corruption) runs
        over a mixed table-hit / off-table request stream.  Every response
        must be a valid decision (100 % availability), a gated fraction
        must come from the real tiers rather than the safe default, and
        every per-tier counter must equal the value predicted by an
        independent simulation of the plan — determinism, not luck.
        """
        config, table, registry = published
        requests = 40
        plan = FaultPlan(
            seed=11, exception_rate=0.15, hangs=2, corrupt=4, hang_seconds=0.6
        )
        injector = ServingFaultInjector(plan, requests)
        service = DecisionService(
            registry,
            [config],
            planner_timeout=0.2,
            breaker_threshold=3,
            breaker_cooldown=300.0,  # once open, stays open: predictable
            injector=injector,
        )
        known = table.signatures()
        off = off_table_signature(table)
        stream = [
            off if index % 5 == 4 else known[index % len(known)]
            for index in range(requests)
        ]

        fingerprint = config.fingerprint()
        results = [service.decide(fingerprint, signature) for signature in stream]

        # 100% availability: every request got a valid decision.
        for served in results:
            assert served.status == "ok"
            assert served.tier in ("table", "planner", "default")
            assert served.decision.action.delay >= 0.0

        # Reference walk: predict every counter from the plan alone.
        expected = {
            "requests": requests, "table_hits": 0, "table_misses": 0,
            "table_corrupt": 0, "planner_fallbacks": 0, "planner_failures": 0,
            "breaker_open": 0, "default_served": 0, "shed": 0, "errors": 0,
        }
        consecutive = 0
        breaker_open = False
        for index, signature in enumerate(stream):
            faults = injector.faults_for(index)
            if faults.corrupt:
                expected["table_corrupt"] += 1
                hit = False
            else:
                hit = signature in known
            if hit:
                expected["table_hits"] += 1
                continue
            expected["table_misses"] += 1
            if breaker_open:
                expected["breaker_open"] += 1
                expected["default_served"] += 1
                continue
            if faults.planner_kind is not None:
                expected["planner_failures"] += 1
                expected["default_served"] += 1
                consecutive += 1
                if consecutive >= 3:
                    breaker_open = True
            else:
                expected["planner_fallbacks"] += 1
                consecutive = 0

        assert service.counters_snapshot() == expected
        counters = service.counters_snapshot()
        assert (
            counters["table_hits"]
            + counters["planner_fallbacks"]
            + counters["default_served"]
            == requests
        )
        # Degraded-mode quality gate: most answers avoid the safe default.
        assert (counters["table_hits"] + counters["planner_fallbacks"]) >= 0.7 * requests

    def test_injector_rejects_process_level_faults(self):
        with pytest.raises(ConfigurationError, match="no per-request meaning"):
            ServingFaultInjector(FaultPlan(kills=1), 10)
        from repro.runner.faults import PointFault

        with pytest.raises(ConfigurationError, match="no per-request meaning"):
            ServingFaultInjector(
                FaultPlan(targets=(PointFault(kind="kill_sweep", index=0),)), 10
            )

    def test_chaos_is_replayable(self):
        plans = [
            ServingFaultInjector(
                FaultPlan(seed=9, exception_rate=0.2, corrupt=3, hangs=1), 30
            )
            for _ in range(2)
        ]
        assert plans[0].expected_corrupt() == plans[1].expected_corrupt()
        assert plans[0].expected_planner_faults() == plans[1].expected_planner_faults()
        assert plans[0].assignment == plans[1].assignment


# ----------------------------------------------------------------- the CLI


class TestServingCli:
    def run_cli(self, *args, cwd=None):
        return subprocess.run(
            [sys.executable, "-m", "repro.serving", *args],
            capture_output=True,
            text=True,
            cwd=cwd or REPO_ROOT,
            env={
                **__import__("os").environ,
                "PYTHONPATH": str(REPO_ROOT / "src"),
            },
        )

    def test_publish_then_chaos_workload_is_clean(self, tmp_path):
        registry = tmp_path / "registry"
        published = self.run_cli(
            "publish", "--registry", str(registry), "--preset", "small", "--seed", "2"
        )
        assert published.returncode == 0, published.stdout + published.stderr
        assert "published preset 'small'" in published.stdout

        workload = self.run_cli(
            "workload",
            "--registry", str(registry),
            "--preset", "small",
            "--requests", "30",
            "--fallback-fraction", "0.2",
            "--planner-timeout", "0.5",
            "--inject-faults", "exception=0.1,corrupt=2,seed=3",
        )
        assert workload.returncode == 0, workload.stdout + workload.stderr
        assert "errors: 0" in workload.stdout
        assert "table_hits:" in workload.stdout

    def test_workload_without_published_table_exits_2(self, tmp_path):
        result = self.run_cli(
            "workload", "--registry", str(tmp_path / "empty"), "--requests", "5"
        )
        assert result.returncode == 2
        assert "no published table" in result.stderr


# ----------------------------------------------------- payload round trips


class TestWireFormat:
    def test_decision_payload_round_trip_is_exact(self, published):
        _, table, _ = published
        for signature in table.signatures():
            decision = table.decision_for(signature)
            restored = decision_from_payload(
                json.loads(json.dumps(decision_to_payload(decision)))
            )
            assert restored == decision

    def test_served_payload_includes_counters_and_tier(self, published):
        config, table, registry = published
        service = DecisionService(registry, [config])
        served = service.decide(config.fingerprint(), table.signatures()[0])
        payload = served.to_payload(service.counters_snapshot())
        assert payload["tier"] == "table"
        assert payload["counters"]["requests"] == 1
        assert payload["decision"]["delay"] == served.decision.action.delay
