"""Fault-tolerance suite: journal, supervised retries, fault injection.

Exercises the robustness stack end to end: :class:`FaultPlan` chaos is
injected deterministically, the supervisor retries/quarantines/kills,
the journal makes interrupted sweeps resumable, and — the property that
matters — a chaos run whose every fault is recovered produces an artifact
byte-identical to a clean run.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path

import pytest

from repro.errors import ConfigurationError, PointFailureError
from repro.runner import (
    AsyncRunner,
    FaultPlan,
    InjectedFaultError,
    ParallelRunner,
    PointFault,
    ResultCache,
    ScenarioRegistry,
    ScenarioSpec,
    SerialRunner,
    Supervision,
    SweepJournal,
    grid,
    grid_digest,
    journal_path,
    replay_journal,
)
from repro.runner.cli import main as cli_main
from repro.runner.faults import NO_FAULTS, corrupt_entry
from repro.runner.journal import JOURNAL_SCHEMA_VERSION


# --------------------------------------------------------------- test scenarios
#
# Top-level functions so worker processes resolve them by reference.


def _toy(seed: int = 0, x: float = 1.0) -> dict[str, float]:
    return {"y": x * 2.0, "seed_echo": float(seed)}


def _flaky(seed: int = 0, marker: str = "", fail_times: int = 0) -> dict[str, float]:
    """Fails its first ``fail_times`` executions, then succeeds.

    Attempt count persists in ``marker`` (one byte appended per call), so
    it survives worker-process death — which is the point: the supervisor
    must observe genuine cross-process retries.  Metrics are deliberately
    attempt-independent, so a recovered run stays byte-identical to a
    clean one.
    """
    path = Path(marker)
    calls = len(path.read_bytes()) if path.exists() else 0
    with open(path, "ab") as handle:
        handle.write(b"x")
    if calls < fail_times:
        raise RuntimeError(f"flaky failure #{calls}")
    return {"ok": 1.0, "seed_echo": float(seed)}


def _interrupting(seed: int = 0, marker: str = "") -> dict[str, float]:
    with open(marker, "ab") as handle:
        handle.write(b"x")
    raise KeyboardInterrupt("user pressed ctrl-c")


def _sleepy(seed: int = 0, duration: float = 0.0) -> dict[str, float]:
    time.sleep(duration)
    return {"slept": duration}


def _registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register("toy", description="doubles x")(_toy)
    registry.register("flaky", description="fails then succeeds")(_flaky)
    registry.register("interrupting", description="raises KeyboardInterrupt")(_interrupting)
    registry.register("sleepy", description="sleeps")(_sleepy)
    return registry


REGISTRY = _registry()


def toy_specs(n: int) -> list[ScenarioSpec]:
    return [ScenarioSpec("toy", params={"x": float(i)}, seed=i) for i in range(n)]


# ------------------------------------------------------------------- fault plan


class TestFaultPlan:
    def test_assign_is_deterministic(self):
        specs = toy_specs(32)
        plan = FaultPlan(seed=7, exception_rate=0.25, kills=2, hangs=1, corrupt=2)
        first = plan.assign(specs)
        second = plan.assign(specs)
        assert first.execution == second.execution
        assert first.corrupt == second.corrupt

    def test_assign_honors_counts_and_rate(self):
        specs = toy_specs(40)
        plan = FaultPlan(seed=1, exception_rate=0.2, kills=3, hangs=2, corrupt=4)
        assignment = plan.assign(specs)
        kinds = [fault.kind for fault in assignment.execution.values()]
        assert kinds.count("kill") == 3
        assert kinds.count("hang") == 2
        assert 0 < kinds.count("exception") < len(specs)
        assert len(assignment.corrupt) == 4

    def test_different_seed_changes_assignment(self):
        specs = toy_specs(64)
        a = FaultPlan(seed=1, exception_rate=0.3, kills=2).assign(specs)
        b = FaultPlan(seed=2, exception_rate=0.3, kills=2).assign(specs)
        assert a.execution != b.execution

    def test_targets_override_sampling(self):
        specs = toy_specs(4)
        plan = FaultPlan(targets=(PointFault(kind="kill", index=2),))
        assignment = plan.assign(specs)
        assert assignment.fault_for(2, attempt=0) == "kill"
        assert assignment.fault_for(2, attempt=1) is None  # first attempt only
        assert assignment.fault_for(1, attempt=0) is None

    def test_target_by_label(self):
        specs = toy_specs(3)
        plan = FaultPlan(targets=(PointFault(kind="exception", label=specs[1].label),))
        assert plan.assign(specs).fault_for(1, attempt=0) == "exception"

    def test_unmatched_target_is_an_error(self):
        with pytest.raises(ConfigurationError, match="matches no point"):
            FaultPlan(targets=(PointFault(kind="kill", index=99),)).assign(toy_specs(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(exception_rate=1.5)
        with pytest.raises(ConfigurationError):
            FaultPlan(kills=-1)
        with pytest.raises(ConfigurationError):
            PointFault(kind="nope", index=0)
        with pytest.raises(ConfigurationError):
            PointFault(kind="kill")  # neither index nor label

    def test_parse_round_trip(self):
        plan = FaultPlan.parse("exception=0.1,kills=2,hangs=1,corrupt=1,seed=7,kill@3")
        assert plan.exception_rate == 0.1
        assert plan.kills == 2 and plan.hangs == 1 and plan.corrupt == 1
        assert plan.seed == 7
        assert plan.targets == (PointFault(kind="kill", index=3),)
        assert FaultPlan.parse(plan.describe()) == plan

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("bogus=1")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("kills=two")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("kill@x")
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("justaword")


# ---------------------------------------------------------------------- journal


class TestJournal:
    def test_write_then_replay(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, grid="abc", points=3) as journal:
            journal.running(0, attempt=0)
            journal.done(0, {"y": 1.5}, 0.01)
            journal.running(1, attempt=0)
            journal.failed(1, attempt=0, error="boom")
            journal.running(2, attempt=0)
        state = replay_journal(path)
        assert state.header is not None and state.header["grid"] == "abc"
        assert set(state.done) == {0}
        assert state.done[0]["metrics"] == {"y": 1.5}
        assert set(state.in_flight) == {2}
        assert not state.complete

    def test_complete_marker(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, grid="abc", points=1) as journal:
            journal.done(0, {"y": 1.0}, 0.0)
            journal.complete()
        assert replay_journal(path).complete

    def test_torn_tail_is_ignored(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, grid="abc", points=2) as journal:
            journal.done(0, {"y": 1.0}, 0.0)
            journal.done(1, {"y": 2.0}, 0.0)
        # Simulate a kill mid-append: the last line is half-written.
        text = path.read_text(encoding="utf-8")
        path.write_text(text[: len(text) - 12], encoding="utf-8")
        state = replay_journal(path)
        assert set(state.done) == {0}

    def test_missing_file_is_empty(self, tmp_path):
        assert replay_journal(tmp_path / "absent.jsonl").last == {}

    def test_schema_mismatch_voids_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, grid="abc", points=1) as journal:
            journal.done(0, {"y": 1.0}, 0.0)
        text = path.read_text(encoding="utf-8")
        path.write_text(
            text.replace(f'"v":{JOURNAL_SCHEMA_VERSION}', f'"v":{JOURNAL_SCHEMA_VERSION + 1}'),
            encoding="utf-8",
        )
        assert replay_journal(path).done == {}

    def test_fresh_open_truncates_and_append_keeps(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(path, grid="abc", points=1) as journal:
            journal.done(0, {"y": 1.0}, 0.0)
        with SweepJournal(path, grid="abc", points=1, append=True):
            pass
        assert set(replay_journal(path).done) == {0}  # resume header kept records
        with SweepJournal(path, grid="abc", points=1):
            pass
        assert replay_journal(path).done == {}  # fresh run starts over

    def test_journal_path_is_per_grid(self, tmp_path):
        a = journal_path(tmp_path, grid_digest(toy_specs(2)))
        b = journal_path(tmp_path, grid_digest(toy_specs(3)))
        assert a != b and a.parent == b.parent == tmp_path / "journal"


# ------------------------------------------------------------------ supervision


class TestSupervisionPolicy:
    def test_backoff_is_deterministic_and_bounded(self):
        sup = Supervision(backoff=0.1, backoff_cap=1.0, jitter=0.5, seed=3)
        delays = [sup.delay("point", attempt) for attempt in (1, 2, 3, 8)]
        assert delays == [sup.delay("point", attempt) for attempt in (1, 2, 3, 8)]
        assert all(0.0 < delay <= 1.0 for delay in delays)
        assert delays[-1] == 1.0  # capped
        assert sup.delay("point", 0) == 0.0
        assert Supervision(backoff=0.0).delay("point", 5) == 0.0

    def test_backoff_depends_on_seed_and_point(self):
        a = Supervision(seed=1).delay("p", 1)
        b = Supervision(seed=2).delay("p", 1)
        c = Supervision(seed=1).delay("q", 1)
        assert a != b and a != c


def _supervised(backend_cls, *, workers=2, **kwargs):
    supervision = kwargs.pop("supervision", Supervision(max_retries=2, backoff=0.01))
    if backend_cls is SerialRunner:
        return SerialRunner(registry=REGISTRY, supervision=supervision, **kwargs)
    return backend_cls(workers=workers, registry=REGISTRY, supervision=supervision, **kwargs)


BACKENDS = [SerialRunner, ParallelRunner, AsyncRunner]


class TestSupervisedRecovery:
    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_clean_supervised_run_matches_plain(self, backend_cls, tmp_path):
        specs = toy_specs(6)
        plain = SerialRunner(registry=REGISTRY).run(specs)
        supervised = _supervised(backend_cls, journal_dir=tmp_path).run(specs)
        assert supervised.to_json() == plain.to_json()
        assert supervised.retries == 0 and not supervised.partial

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_flaky_point_retries_then_succeeds(self, backend_cls, tmp_path):
        marker = tmp_path / "flaky.calls"
        specs = [
            ScenarioSpec("flaky", params={"marker": str(marker), "fail_times": 2}, seed=0)
        ]
        store = _supervised(backend_cls, journal_dir=tmp_path).run(specs)
        assert len(store) == 1 and not store.quarantined
        assert store.retries == 2
        assert marker.read_bytes() == b"xxx"  # 2 failing calls + 1 success

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_exhausted_point_is_quarantined_not_fatal(self, backend_cls, tmp_path):
        marker = tmp_path / "flaky.calls"
        specs = toy_specs(3) + [
            ScenarioSpec("flaky", params={"marker": str(marker), "fail_times": 99}, seed=0)
        ]
        supervision = Supervision(max_retries=1, backoff=0.01)
        store = _supervised(backend_cls, supervision=supervision, journal_dir=tmp_path).run(specs)
        assert len(store) == 3 and store.partial
        assert len(store.quarantined) == 1
        point = store.quarantined[0]
        assert point.spec.scenario == "flaky"
        assert point.attempts == 2
        assert "RuntimeError" in point.error
        # The artifact records the quarantine alongside the healthy points.
        assert '"quarantined"' in store.to_json()
        assert marker.read_bytes() == b"xx"  # 1 try + 1 retry, then gave up

    @pytest.mark.parametrize("backend_cls", BACKENDS)
    def test_strict_mode_restores_fail_fast(self, backend_cls, tmp_path):
        marker = tmp_path / "flaky.calls"
        specs = [
            ScenarioSpec("flaky", params={"marker": str(marker), "fail_times": 99}, seed=0)
        ]
        supervision = Supervision(max_retries=0, strict=True)
        with pytest.raises(PointFailureError, match="failed 1 attempt"):
            _supervised(backend_cls, supervision=supervision, journal_dir=tmp_path).run(specs)

    @pytest.mark.parametrize("backend_cls", [ParallelRunner, AsyncRunner])
    def test_injected_worker_kill_is_retried(self, backend_cls, tmp_path):
        specs = toy_specs(4)
        plan = FaultPlan(targets=(PointFault(kind="kill", index=1),))
        supervision = Supervision(max_retries=2, backoff=0.01, fault_plan=plan)
        store = _supervised(backend_cls, supervision=supervision, journal_dir=tmp_path).run(specs)
        assert len(store) == 4 and not store.quarantined
        assert store.retries == 1
        assert store.to_json() == SerialRunner(registry=REGISTRY).run(specs).to_json()

    @pytest.mark.parametrize("backend_cls", [ParallelRunner, AsyncRunner])
    def test_hung_point_is_killed_and_retried(self, backend_cls, tmp_path):
        specs = toy_specs(3)
        plan = FaultPlan(targets=(PointFault(kind="hang", index=2),), hang_seconds=30.0)
        supervision = Supervision(
            max_retries=1, backoff=0.01, point_timeout=0.75, fault_plan=plan
        )
        started = time.perf_counter()
        store = _supervised(backend_cls, supervision=supervision, journal_dir=tmp_path).run(specs)
        elapsed = time.perf_counter() - started
        assert len(store) == 3 and not store.quarantined
        assert store.retries == 1
        assert elapsed < 10.0  # killed at the timeout, nowhere near the 30s hang

    def test_injected_exception_is_injectedfaulterror(self):
        specs = toy_specs(2)
        plan = FaultPlan(targets=(PointFault(kind="exception", index=0),))
        supervision = Supervision(max_retries=0, strict=True, fault_plan=plan)
        with pytest.raises(PointFailureError, match="InjectedFaultError"):
            _supervised(SerialRunner, supervision=supervision).run(specs)
        with pytest.raises(InjectedFaultError):
            # The raw fault, outside supervision plumbing.
            from repro.runner.faults import perform_fault

            perform_fault("exception", hang_seconds=1.0, label="p", in_worker=False)


# --------------------------------------------------------------------- resuming


class TestResume:
    def test_resume_replays_done_points_without_reexecution(self, tmp_path):
        marker = tmp_path / "flaky.calls"
        specs = toy_specs(3) + [
            ScenarioSpec("flaky", params={"marker": str(marker), "fail_times": 1}, seed=0)
        ]
        # Prime the marker so the reference run sails through, then reset
        # it so the supervised passes below see the failure.
        marker.write_bytes(b"x")
        clean = SerialRunner(registry=REGISTRY).run(specs)
        marker.write_bytes(b"")

        # First pass: the flaky point exhausts its (zero) retries and is
        # quarantined; the three healthy points land in the journal.
        first = _supervised(
            ParallelRunner,
            supervision=Supervision(max_retries=0, backoff=0.01),
            journal_dir=tmp_path,
        ).run(specs)
        assert len(first) == 3 and len(first.quarantined) == 1

        # Second pass resumes: done points replay from the journal, only
        # the quarantined point re-executes (and now succeeds).
        second = _supervised(
            ParallelRunner,
            supervision=Supervision(max_retries=0, backoff=0.01),
            journal_dir=tmp_path,
            resume=True,
        ).run(specs)
        assert second.resumed == 3
        assert not second.quarantined
        assert second.to_json() == clean.to_json()
        assert marker.read_bytes() == b"xx"  # one failing call, one succeeding

    def test_resume_without_journal_location_is_an_error(self):
        with pytest.raises(ConfigurationError, match="journal"):
            ParallelRunner(registry=REGISTRY, resume=True)

    def test_resume_of_changed_grid_starts_fresh(self, tmp_path):
        specs = toy_specs(3)
        runner = _supervised(SerialRunner, journal_dir=tmp_path)
        runner.resume = True
        store = runner.run(specs)  # nothing journalled for this grid yet
        assert store.resumed == 0 and len(store) == 3

    def test_journal_written_under_cache_root_by_default(self, tmp_path):
        specs = toy_specs(2)
        cache = ResultCache(tmp_path / "cache")
        _supervised(SerialRunner, cache=cache).run(specs)
        assert journal_path(cache.root, grid_digest(specs)).exists()


# ------------------------------------------------------------- cache corruption


class TestCacheCorruption:
    def test_corrupt_entry_quarantined_not_deleted(self, tmp_path):
        specs = toy_specs(2)
        cache = ResultCache(tmp_path)
        SerialRunner(registry=REGISTRY, cache=cache).run(specs)
        # Truncate one stored entry, as the corrupt fault does.
        entries = sorted((tmp_path / "results").rglob("*.json"))
        corrupt_entry(entries[0])

        fresh = ResultCache(tmp_path)
        store = SerialRunner(registry=REGISTRY, cache=fresh).run(specs)
        assert len(store) == 2
        assert store.cache_hits == 1 and store.cache_misses == 1
        assert store.cache_corrupt == 1 and fresh.corrupt == 1
        moved = list((tmp_path / "quarantine").iterdir())
        assert len(moved) == 1  # evidence preserved, not deleted

    def test_corrupt_fault_injects_through_supervised_run(self, tmp_path):
        specs = toy_specs(3)
        cache = ResultCache(tmp_path)
        plan = FaultPlan(targets=(PointFault(kind="corrupt", index=1),))
        store = _supervised(
            SerialRunner,
            supervision=Supervision(max_retries=0, fault_plan=plan),
            cache=cache,
        ).run(specs)
        assert len(store) == 3  # corruption is post-store; the run is unharmed
        warm = SerialRunner(registry=REGISTRY, cache=ResultCache(tmp_path)).run(specs)
        assert warm.cache_hits == 2 and warm.cache_corrupt == 1


# --------------------------------------------------- cancellation (satellite 1)


class TestCancellation:
    @pytest.mark.parametrize("backend_cls", [ParallelRunner, AsyncRunner])
    def test_supervised_interrupt_is_not_retried_or_quarantined(
        self, backend_cls, tmp_path
    ):
        marker = tmp_path / "interrupts"
        specs = [ScenarioSpec("interrupting", params={"marker": str(marker)}, seed=0)]
        with pytest.raises(KeyboardInterrupt):
            _supervised(backend_cls, journal_dir=tmp_path).run(specs)
        assert marker.read_bytes() == b"x"  # executed exactly once: no retry

    def test_serial_supervised_interrupt_propagates(self, tmp_path):
        marker = tmp_path / "interrupts"
        specs = [ScenarioSpec("interrupting", params={"marker": str(marker)}, seed=0)]
        with pytest.raises(KeyboardInterrupt):
            _supervised(SerialRunner, journal_dir=tmp_path).run(specs)
        assert marker.read_bytes() == b"x"

    def test_async_unsupervised_interrupt_cancels_promptly(self, tmp_path):
        # Regression: the gather used to swallow the interrupt while
        # waiting out long-running siblings.  The interrupt must surface
        # well before the 3-second sleepers finish.
        marker = tmp_path / "interrupts"
        specs = [
            ScenarioSpec("sleepy", params={"duration": 3.0}, seed=0),
            ScenarioSpec("interrupting", params={"marker": str(marker)}, seed=0),
            ScenarioSpec("sleepy", params={"duration": 3.0}, seed=1),
        ]
        runner = AsyncRunner(workers=3, registry=REGISTRY)
        started = time.perf_counter()
        with pytest.raises(KeyboardInterrupt):
            asyncio.run(runner.run_async(specs))
        assert time.perf_counter() - started < 2.5


# -------------------------------------------------------------------------- CLI


class TestFaultCLI:
    def test_inject_faults_round_trip_is_byte_identical(self, tmp_path, capsys):
        argv_common = [
            "run",
            "single_link_tcp",
            "--set",
            "duration=2",
            "--seeds",
            "2",
            "--json",
        ]
        assert cli_main([*argv_common, str(tmp_path / "clean.json")]) == 0
        code = cli_main(
            [
                *argv_common,
                str(tmp_path / "chaos.json"),
                "--backend",
                "parallel",
                "--workers",
                "2",
                "--max-retries",
                "2",
                "--retry-backoff",
                "0.01",
                "--inject-faults",
                "exception=0.5,seed=3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        assert (tmp_path / "chaos.json").read_bytes() == (
            tmp_path / "clean.json"
        ).read_bytes()

    def test_resume_without_cache_dir_is_exit_2(self, tmp_path, monkeypatch, capsys):
        from repro.runner.cache import CACHE_DIR_ENV

        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        code = cli_main(["run", "single_link_tcp", "--set", "duration=2", "--resume"])
        assert code == 2
        assert "--resume needs a journal location" in capsys.readouterr().err

    def test_strict_injected_failure_is_exit_3(self, capsys):
        code = cli_main(
            [
                "run",
                "single_link_tcp",
                "--set",
                "duration=2",
                "--seeds",
                "2",
                "--strict",
                "--max-retries",
                "0",
                "--inject-faults",
                "exception@1",
            ]
        )
        assert code == 3
        assert "InjectedFaultError" in capsys.readouterr().err

    def test_partial_run_is_exit_1_and_reports_quarantine(self, capsys):
        code = cli_main(
            [
                "run",
                "single_link_tcp",
                "--set",
                "duration=2",
                "--seeds",
                "2",
                "--max-retries",
                "0",
                "--inject-faults",
                "exception@1",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "1 quarantined" in captured.out
        assert "quarantined: single_link_tcp" in captured.err

    def test_bad_fault_plan_is_exit_2(self, capsys):
        code = cli_main(
            ["run", "single_link_tcp", "--set", "duration=2", "--inject-faults", "bogus=1"]
        )
        assert code == 2


# --------------------------------------------------------- acceptance-scale run


@pytest.mark.slow
class TestChaosAcceptance:
    def test_256_point_sweep_survives_the_issue_fault_plan(self, tmp_path):
        """The headline robustness claim, at the scale the issue names.

        256 points under 10% injected exceptions, 2 worker kills, 1 hang
        and 1 corrupted cache entry: every fault recovers on retry, so the
        sweep completes with zero quarantined points and the artifact is
        byte-identical to a clean serial run.
        """
        specs = [ScenarioSpec("toy", params={"x": float(i)}, seed=i) for i in range(256)]
        clean = SerialRunner(registry=REGISTRY).run(specs)

        plan = FaultPlan(seed=11, exception_rate=0.1, kills=2, hangs=1, corrupt=1,
                         hang_seconds=60.0)
        assignment = plan.assign(specs)
        injected = len(assignment.execution)
        assert injected >= 256 // 10  # the plan actually bites

        cache = ResultCache(tmp_path / "cache")
        supervision = Supervision(
            max_retries=3, backoff=0.01, point_timeout=2.0, fault_plan=plan
        )
        store = ParallelRunner(
            workers=4, registry=REGISTRY, cache=cache, supervision=supervision
        ).run(specs)

        assert len(store) == 256
        assert not store.quarantined and not store.partial
        assert store.retries == injected  # every injected fault cost one retry
        assert store.to_json() == clean.to_json()

        # The corrupted cache entry is discovered (and quarantined) on the
        # warm rerun; every other point replays as a hit.
        warm = SerialRunner(registry=REGISTRY, cache=ResultCache(cache.root)).run(specs)
        assert warm.cache_hits == 255 and warm.cache_corrupt == 1
        assert warm.to_json() == clean.to_json()
