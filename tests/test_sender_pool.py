"""Unit tests for :class:`repro.api.pool.BatchedSenderPool`.

The pool's contract has two halves: construction is literally
``build_components`` per prior (so pooled senders are indistinguishable
from independently built ones), and ``decide_all`` — the (sender × action
× hypothesis) batch-synchronous decide — returns decisions *bit-identical*
to running each sender's ``"fused"`` planner decide on its own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api.config import SenderConfig
from repro.api.pool import BatchedSenderPool
from repro.api.sender import build_components
from repro.errors import ConfigurationError
from repro.inference import AckObservation, single_link_prior

PACKET_BITS = 8_000.0


def _priors(count: int):
    """Deliberately heterogeneous priors: each sender spans different rates."""
    return [
        single_link_prior(
            link_rate_low=2e5 * (index + 1),
            link_rate_high=2e6 * (index + 1),
            link_rate_points=5,
            buffer_capacity_bits=8e6,
            fill_points=3,
        )
        for index in range(count)
    ]


def _drive(belief_pairs, steps: int = 30, seed: int = 3) -> float:
    """Feed every belief in every pair the same send/ack script; return now."""
    rng = np.random.default_rng(seed)
    now = 0.0
    seq = 0
    for step in range(steps):
        now += float(rng.uniform(0.01, 0.08))
        for beliefs in belief_pairs:
            for belief in beliefs:
                belief.record_send(seq, PACKET_BITS, now)
        seq += 1
        acks = []
        if step % 3 == 2 and seq >= 2:
            acks = [
                AckObservation(seq=seq - 2, received_at=now - 0.005, ack_at=now)
            ]
        for beliefs in belief_pairs:
            for belief in beliefs:
                belief.update(now, acks)
    return now + 0.05


class TestPoolConstruction:
    def test_requires_row_ensemble_backend(self):
        config = SenderConfig(belief_backend="scalar", rollout_backend="scalar")
        with pytest.raises(ConfigurationError, match="row-ensemble"):
            BatchedSenderPool(config, _priors(2))

    def test_requires_at_least_one_prior(self):
        config = SenderConfig(belief_backend="fused", rollout_backend="fused")
        with pytest.raises(ConfigurationError, match="at least one prior"):
            BatchedSenderPool(config, [])

    def test_parts_match_independent_construction(self):
        config = SenderConfig(
            belief_backend="fused", rollout_backend="fused", policy="cache"
        )
        pool = BatchedSenderPool(config, _priors(3))
        solo = [build_components(config, prior) for prior in _priors(3)]
        assert len(pool) == 3
        for pooled, independent in zip(pool, solo):
            assert type(pooled.belief) is type(independent.belief)
            assert type(pooled.planner) is type(independent.planner)
            assert type(pooled.policy) is type(independent.policy)
            assert list(pooled.belief.weights) == list(independent.belief.weights)


@pytest.mark.parametrize("backend", ["vectorized", "fused"])
class TestDecideAllBitIdentity:
    def test_decisions_match_per_sender_fused_decides(self, backend):
        config = SenderConfig(
            belief_backend=backend, rollout_backend="fused", policy="none"
        )
        count = 6
        pool = BatchedSenderPool(config, _priors(count))
        solo = [build_components(config, prior) for prior in _priors(count)]
        now = _drive(
            [
                (pool[index].belief, solo[index].belief)
                for index in range(count)
            ]
        )
        pooled = pool.decide_all(now)
        single = [parts.planner.decide(parts.belief, now) for parts in solo]
        assert len(pooled) == count
        for index, (ours, theirs) in enumerate(zip(pooled, single)):
            context = f"sender={index}"
            assert ours.action.delay == theirs.action.delay, context
            assert list(ours.expected_utilities) == list(
                theirs.expected_utilities
            ), context
            for delay, value in theirs.expected_utilities.items():
                assert (
                    float(ours.expected_utilities[delay]).hex()
                    == float(value).hex()
                ), context
            assert (
                pool[index].planner.rollouts_performed
                == solo[index].planner.rollouts_performed
            ), context

    def test_decide_all_is_repeatable(self, backend):
        config = SenderConfig(
            belief_backend=backend, rollout_backend="fused", policy="none"
        )
        pool = BatchedSenderPool(config, _priors(4))
        now = _drive([(parts.belief,) for parts in pool], steps=20)
        first = pool.decide_all(now)
        second = pool.decide_all(now)
        for a, b in zip(first, second):
            assert a.action.delay == b.action.delay
            assert a.expected_utilities == b.expected_utilities
