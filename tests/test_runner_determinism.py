"""Replay-equivalence suite: the engine's determinism, pinned down for real.

The contract: a scenario spec plus a seed fully determines the summary
metrics.  The same sweep must therefore produce *byte-identical* canonical
artifacts run-to-run in one process, between the serial and parallel
backends, and at any worker count — which is what makes parallel sweeps
trustworthy and cached results comparable.
"""

from __future__ import annotations

import pytest

from repro.runner import ParallelRunner, ScenarioSpec, SerialRunner
from repro.runner.scenarios import loss_delay_buffer_specs

#: A small but non-trivial grid: 2 losses x 2 delays = 4 points, short runs.
SPECS = loss_delay_buffer_specs(
    losses=(0.0, 0.05),
    delays=(0.0, 0.02),
    buffers=(240_000.0,),
    duration=8.0,
)


@pytest.fixture(scope="module")
def serial_artifact() -> str:
    return SerialRunner().run(SPECS).to_json()


class TestRunToRunReplay:
    def test_serial_rerun_is_byte_identical(self, serial_artifact):
        assert SerialRunner().run(SPECS).to_json() == serial_artifact

    def test_rerun_survives_unrelated_simulations_in_between(self, serial_artifact):
        # Polluting the process with other simulations (which bump the
        # element-name counters) must not change a later run's artifact.
        SerialRunner().run([ScenarioSpec("single_link_tcp", params={"duration": 3.0}, seed=9)])
        assert SerialRunner().run(SPECS).to_json() == serial_artifact

    def test_different_seed_changes_stochastic_metrics(self):
        lossy = [spec for spec in SPECS if spec.params["loss_rate"] > 0.0][:1]
        reseeded = [
            ScenarioSpec(spec.scenario, params=spec.params, seed=spec.seed + 1) for spec in lossy
        ]
        base = SerialRunner().run(lossy)
        other = SerialRunner().run(reseeded)
        assert base.metric("packets_sent") != other.metric("packets_sent") or base.metric(
            "goodput_bps"
        ) != other.metric("goodput_bps")


class TestBackendEquivalence:
    def test_parallel_matches_serial(self, serial_artifact):
        assert ParallelRunner(workers=2).run(SPECS).to_json() == serial_artifact

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_does_not_matter(self, workers, serial_artifact):
        assert ParallelRunner(workers=workers).run(SPECS).to_json() == serial_artifact

    @pytest.mark.slow
    def test_experiment_sweep_map_matches_across_backends(self):
        # The rich-result path experiments use (runner.map over a top-level
        # function) is backend-invariant too, not just registry metrics.
        from repro.experiments import run_figure3

        kwargs = dict(alphas=(0.9, 5.0), duration=30.0, switch_interval=15.0)
        serial = run_figure3(**kwargs, runner=SerialRunner())
        parallel = run_figure3(**kwargs, runner=ParallelRunner(workers=2))

        def summary(result):
            return [
                (
                    point.alpha,
                    point.packets_sent,
                    point.packets_acked,
                    point.buffer_drops,
                    point.rate_off_bps,
                    list(point.sequence_series.values),
                )
                for point in result.per_alpha
            ]

        assert summary(serial) == summary(parallel)
