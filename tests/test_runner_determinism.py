"""Replay-equivalence suite: the engine's determinism, pinned down for real.

The contract: a scenario spec plus a seed fully determines the summary
metrics.  The same sweep must therefore produce *byte-identical* canonical
artifacts run-to-run in one process, between the serial and parallel
backends, and at any worker count — which is what makes parallel sweeps
trustworthy and cached results comparable.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.runner import ParallelRunner, ScenarioSpec, SerialRunner
from repro.runner.cache import CACHE_DIR_ENV
from repro.runner.cli import main as cli_main
from repro.runner.scenarios import loss_delay_buffer_specs

#: A small but non-trivial grid: 2 losses x 2 delays = 4 points, short runs.
SPECS = loss_delay_buffer_specs(
    losses=(0.0, 0.05),
    delays=(0.0, 0.02),
    buffers=(240_000.0,),
    duration=8.0,
)


@pytest.fixture(scope="module")
def serial_artifact() -> str:
    return SerialRunner().run(SPECS).to_json()


class TestRunToRunReplay:
    def test_serial_rerun_is_byte_identical(self, serial_artifact):
        assert SerialRunner().run(SPECS).to_json() == serial_artifact

    def test_rerun_survives_unrelated_simulations_in_between(self, serial_artifact):
        # Polluting the process with other simulations (which bump the
        # element-name counters) must not change a later run's artifact.
        SerialRunner().run([ScenarioSpec("single_link_tcp", params={"duration": 3.0}, seed=9)])
        assert SerialRunner().run(SPECS).to_json() == serial_artifact

    def test_different_seed_changes_stochastic_metrics(self):
        lossy = [spec for spec in SPECS if spec.params["loss_rate"] > 0.0][:1]
        reseeded = [
            ScenarioSpec(spec.scenario, params=spec.params, seed=spec.seed + 1) for spec in lossy
        ]
        base = SerialRunner().run(lossy)
        other = SerialRunner().run(reseeded)
        assert base.metric("packets_sent") != other.metric("packets_sent") or base.metric(
            "goodput_bps"
        ) != other.metric("goodput_bps")


class TestBackendEquivalence:
    def test_parallel_matches_serial(self, serial_artifact):
        assert ParallelRunner(workers=2).run(SPECS).to_json() == serial_artifact

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_worker_count_does_not_matter(self, workers, serial_artifact):
        assert ParallelRunner(workers=workers).run(SPECS).to_json() == serial_artifact

    @pytest.mark.slow
    def test_experiment_sweep_map_matches_across_backends(self):
        # The rich-result path experiments use (runner.map over a top-level
        # function) is backend-invariant too, not just registry metrics.
        from repro.experiments import run_figure3

        kwargs = dict(alphas=(0.9, 5.0), duration=30.0, switch_interval=15.0)
        serial = run_figure3(**kwargs, runner=SerialRunner())
        parallel = run_figure3(**kwargs, runner=ParallelRunner(workers=2))

        def summary(result):
            return [
                (
                    point.alpha,
                    point.packets_sent,
                    point.packets_acked,
                    point.buffer_drops,
                    point.rate_off_bps,
                    list(point.sequence_series.values),
                )
                for point in result.per_alpha
            ]

        assert summary(serial) == summary(parallel)


class TestKillAndResume:
    """A SIGKILLed sweep, resumed, must reproduce the uninterrupted bytes.

    The sweep process is killed mid-grid from inside a worker (the
    ``kill_sweep`` fault — deterministic, no signal-timing races), then the
    same command line plus ``--resume`` replays the journal and finishes
    the grid.  The merged artifact must be byte-identical to a run that
    was never interrupted, on every backend.
    """

    GRID = ["run", "single_link_tcp", "--set", "duration=2", "--seeds", "6"]

    @pytest.mark.slow
    @pytest.mark.parametrize("backend", ["serial", "parallel", "async"])
    def test_sigkilled_sweep_resumes_byte_identical(self, backend, tmp_path, monkeypatch):
        monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
        clean_json = tmp_path / "clean.json"
        assert cli_main([*self.GRID, "--json", str(clean_json)]) == 0

        cache_dir = tmp_path / "cache"
        backend_argv = [*self.GRID, "--backend", backend, "--workers", "2"]
        killed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.runner",
                *backend_argv,
                "--cache-dir",
                str(cache_dir),
                "--max-retries",
                "2",
                "--inject-faults",
                "kill_sweep@3",
            ],
            env={
                **os.environ,
                "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
            },
            capture_output=True,
            timeout=120,
        )
        # SIGKILL, not a clean exit: the sweep really died mid-grid.
        assert killed.returncode in (-signal.SIGKILL, 128 + signal.SIGKILL), (
            killed.returncode,
            killed.stderr.decode(errors="replace"),
        )
        journals = list((cache_dir / "journal").glob("*.jsonl"))
        assert len(journals) == 1  # durable state survived the kill

        resumed_json = tmp_path / "resumed.json"
        code = cli_main(
            [
                *backend_argv,
                "--cache-dir",
                str(cache_dir),
                "--resume",
                "--json",
                str(resumed_json),
            ]
        )
        assert code == 0
        assert resumed_json.read_bytes() == clean_json.read_bytes()
