"""Tests for the fast link model, including agreement with the element simulator."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.elements import Buffer, Collector, Pinger, Throughput
from repro.errors import ConfigurationError, InferenceError
from repro.inference.linkmodel import LinkModel, LinkModelParams
from repro.sim.element import Network
from repro.sim.packet import Packet


def simple_params(**overrides) -> LinkModelParams:
    defaults = dict(
        link_rate_bps=12_000.0,
        buffer_capacity_bits=96_000.0,
        initial_fill_bits=0.0,
        loss_rate=0.0,
        cross_rate_pps=0.0,
    )
    defaults.update(overrides)
    return LinkModelParams(**defaults)


class TestParamsValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            LinkModelParams(link_rate_bps=0, buffer_capacity_bits=1)
        with pytest.raises(ConfigurationError):
            LinkModelParams(link_rate_bps=1, buffer_capacity_bits=0)
        with pytest.raises(ConfigurationError):
            LinkModelParams(link_rate_bps=1, buffer_capacity_bits=1, loss_rate=2.0)
        with pytest.raises(ConfigurationError):
            LinkModelParams(link_rate_bps=1, buffer_capacity_bits=1, initial_fill_bits=2)
        with pytest.raises(ConfigurationError):
            LinkModelParams(link_rate_bps=1, buffer_capacity_bits=1, mean_time_to_switch=0.0)

    def test_derived_properties(self):
        params = simple_params(cross_rate_pps=0.5, cross_packet_bits=10_000)
        assert params.cross_rate_bps == pytest.approx(5_000)
        assert params.has_cross_traffic


class TestOwnTraffic:
    def test_single_packet_service_time(self):
        model = LinkModel(simple_params())
        model.send_own(0, 12_000, 0.0)
        model.advance(5.0)
        prediction = model.predictions[0]
        assert prediction.delivered
        assert prediction.time == pytest.approx(1.0)
        assert prediction.survival == pytest.approx(1.0)

    def test_back_to_back_packets_queue(self):
        model = LinkModel(simple_params())
        for seq in range(3):
            model.send_own(seq, 12_000, 0.0)
        model.advance(10.0)
        times = [model.predictions[seq].time for seq in range(3)]
        assert times == pytest.approx([1.0, 2.0, 3.0])

    def test_send_in_past_rejected(self):
        model = LinkModel(simple_params())
        model.advance(5.0)
        with pytest.raises(InferenceError):
            model.send_own(0, 12_000, 1.0)

    def test_advance_backwards_rejected(self):
        model = LinkModel(simple_params())
        model.advance(5.0)
        with pytest.raises(InferenceError):
            model.advance(1.0)

    def test_loss_rate_sets_survival(self):
        model = LinkModel(simple_params(loss_rate=0.2))
        model.send_own(0, 12_000, 0.0)
        model.advance(2.0)
        assert model.predictions[0].survival == pytest.approx(0.8)

    def test_tail_drop_of_own_packet(self):
        model = LinkModel(simple_params(buffer_capacity_bits=24_000))
        for seq in range(6):
            model.send_own(seq, 12_000, 0.0)
        dropped = [seq for seq, pred in model.predictions.items() if not pred.delivered]
        assert dropped == [3, 4, 5]

    def test_initial_fill_delays_first_packet(self):
        model = LinkModel(simple_params(initial_fill_bits=24_000))
        model.send_own(0, 12_000, 0.0)
        model.advance(10.0)
        assert model.predictions[0].time == pytest.approx(3.0)
        assert model.cross.delivered_bits() == pytest.approx(24_000)

    def test_projected_delivery_for_queued_packet(self):
        model = LinkModel(simple_params())
        for seq in range(3):
            model.send_own(seq, 12_000, 0.0)
        assert model.projected_delivery(0) == pytest.approx(1.0)
        assert model.projected_delivery(2) == pytest.approx(3.0)
        assert model.projected_delivery(99) is None

    def test_predicted_delivery_if_sent_now(self):
        model = LinkModel(simple_params())
        assert model.predicted_delivery_if_sent_now(12_000) == pytest.approx(1.0)
        model.send_own(0, 12_000, 0.0)
        assert model.predicted_delivery_if_sent_now(12_000) == pytest.approx(2.0)


class TestCrossTraffic:
    def test_isochronous_cross_deliveries(self):
        model = LinkModel(simple_params(cross_rate_pps=0.5, cross_packet_bits=12_000))
        model.advance(10.0)
        # Arrivals at 0, 2, 4, 6, 8 -> deliveries at 1, 3, 5, 7, 9.
        assert [t for t, _ in model.cross.deliveries] == pytest.approx([1.0, 3.0, 5.0, 7.0, 9.0])

    def test_gate_off_stops_cross_traffic(self):
        model = LinkModel(
            simple_params(cross_rate_pps=0.5, mean_time_to_switch=100.0, cross_initially_on=False)
        )
        model.advance(10.0)
        assert model.cross.deliveries == []

    def test_set_gate_on_resumes_arrivals(self):
        model = LinkModel(
            simple_params(cross_rate_pps=1.0, mean_time_to_switch=100.0, cross_initially_on=False)
        )
        model.advance(5.0)
        model.set_gate(True)
        model.advance(8.0)
        assert len(model.cross.deliveries) == 3

    def test_cross_drops_when_buffer_full(self):
        model = LinkModel(
            simple_params(buffer_capacity_bits=12_000, cross_rate_pps=2.0, cross_packet_bits=12_000)
        )
        model.advance(3.0)
        assert len(model.cross.drops) > 0

    def test_cross_backlog_bits(self):
        model = LinkModel(simple_params(initial_fill_bits=36_000))
        assert model.cross_backlog_bits() == pytest.approx(36_000)
        model.advance(1.0)
        assert model.cross_backlog_bits() == pytest.approx(24_000)

    def test_own_and_cross_share_fifo(self):
        model = LinkModel(simple_params(cross_rate_pps=1.0, cross_packet_bits=12_000))
        model.advance(0.5)
        model.send_own(0, 12_000, 0.5)
        model.advance(5.0)
        # Cross packet at t=0 is in service until t=1; ours follows at t=2.
        assert model.predictions[0].time == pytest.approx(2.0)


class TestCloneAndSignature:
    def test_clone_is_independent(self):
        model = LinkModel(simple_params())
        model.send_own(0, 12_000, 0.0)
        duplicate = model.clone()
        duplicate.advance(5.0)
        assert 0 in duplicate.predictions
        assert 0 not in model.predictions
        assert model.time == pytest.approx(0.0)

    def test_clone_without_history_drops_tallies(self):
        model = LinkModel(simple_params(initial_fill_bits=12_000))
        model.advance(5.0)
        assert model.cross.deliveries
        bare = model.clone(keep_history=False)
        assert bare.cross.deliveries == []
        assert bare.time == model.time

    def test_signatures_match_for_identical_states(self):
        first = LinkModel(simple_params(cross_rate_pps=0.5))
        second = LinkModel(simple_params(cross_rate_pps=0.5))
        first.advance(3.0)
        second.advance(3.0)
        assert first.signature() == second.signature()

    def test_signatures_differ_for_different_gate_states(self):
        params = simple_params(cross_rate_pps=0.5, mean_time_to_switch=10.0)
        first = LinkModel(params)
        second = LinkModel(params)
        second.set_gate(False)
        assert first.signature() != second.signature()


class TestAgreementWithElementSimulator:
    """The fast model must agree with the element-level simulator on
    deterministic scenarios — this is the fidelity test DESIGN.md promises."""

    @settings(max_examples=25, deadline=None)
    @given(
        send_gaps=st.lists(st.floats(min_value=0.0, max_value=3.0), min_size=1, max_size=12),
        link_rate=st.sampled_from([8_000.0, 12_000.0, 16_000.0]),
        capacity=st.sampled_from([24_000.0, 48_000.0, 96_000.0]),
    )
    def test_own_flow_delivery_times_match(self, send_gaps, link_rate, capacity):
        send_times = []
        current = 0.0
        for gap in send_gaps:
            current += gap
            send_times.append(current)

        # Element-level simulation.
        network = Network(seed=0)
        buffer = Buffer(capacity_bits=capacity, name="buf")
        link = Throughput(rate_bps=link_rate, name="link")
        sink = Collector(name="sink")
        buffer.connect(link)
        link.connect(sink)
        network.add(buffer)
        network.start()
        for seq, time in enumerate(send_times):
            network.sim.schedule_at(
                time,
                buffer.receive,
                Packet(seq=seq, flow="own", size_bits=12_000, sent_at=time),
            )
        network.run()
        element_deliveries = {p.seq: p.delivered_at for p in sink.packets}

        # Fast model.
        model = LinkModel(
            LinkModelParams(link_rate_bps=link_rate, buffer_capacity_bits=capacity)
        )
        for seq, time in enumerate(send_times):
            model.send_own(seq, 12_000, time)
        model.advance(send_times[-1] + 200.0)
        model_deliveries = {
            seq: pred.time for seq, pred in model.predictions.items() if pred.delivered
        }

        assert set(model_deliveries) == set(element_deliveries)
        for seq, expected in element_deliveries.items():
            assert model_deliveries[seq] == pytest.approx(expected, abs=1e-6)

    def test_cross_traffic_delivery_times_match(self):
        link_rate, capacity, cross_pps = 12_000.0, 96_000.0, 0.7
        network = Network(seed=0)
        pinger = Pinger(rate_pps=cross_pps, packet_bits=12_000, flow="cross", name="pinger")
        buffer = Buffer(capacity_bits=capacity, name="buf")
        link = Throughput(rate_bps=link_rate, name="link")
        sink = Collector(name="sink")
        pinger.connect(buffer)
        buffer.connect(link)
        link.connect(sink)
        network.add(pinger)
        network.run(until=30.0)
        element_times = sorted(p.delivered_at for p in sink.packets)

        model = LinkModel(
            LinkModelParams(
                link_rate_bps=link_rate,
                buffer_capacity_bits=capacity,
                cross_rate_pps=cross_pps,
                cross_packet_bits=12_000,
            )
        )
        model.advance(30.0)
        model_times = sorted(t for t, _ in model.cross.deliveries)
        assert len(model_times) == len(element_times)
        for ours, theirs in zip(model_times, element_times):
            assert ours == pytest.approx(theirs, abs=1e-6)


class TestCrossTallyTrim:
    def test_trim_drops_entries_before_cutoff(self):
        model = LinkModel(simple_params(cross_rate_pps=0.5, cross_packet_bits=12_000.0))
        model.advance(20.0)
        total = len(model.cross.deliveries)
        assert total > 0
        removed = model.cross.trim(10.0)
        assert removed == total - len(model.cross.deliveries)
        assert all(time >= 10.0 for time, _ in model.cross.deliveries)
        assert model.cross.delivered_bits(10.0, 20.0) > 0

    def test_trim_is_a_noop_when_nothing_is_old(self):
        model = LinkModel(simple_params(cross_rate_pps=0.5, cross_packet_bits=12_000.0))
        model.advance(20.0)
        before = list(model.cross.deliveries)
        assert model.cross.trim(0.0) == 0
        assert model.cross.deliveries == before

    def test_trim_covers_drops_too(self):
        # A tiny buffer with dense cross traffic accumulates drop entries.
        model = LinkModel(
            simple_params(
                buffer_capacity_bits=12_000.0,
                cross_rate_pps=4.0,
                cross_packet_bits=12_000.0,
            )
        )
        model.advance(20.0)
        assert model.cross.drops
        model.cross.trim(19.0)
        assert all(time >= 19.0 for time, _ in model.cross.drops)
