"""The unified sender-configuration layer: registry, SenderConfig, shims.

Covers the backend registry's eager validation, ``SenderConfig``
construction and fingerprinting, ``build_sender`` as the one construction
path, and the deprecated ``SenderSettings`` / ``AblationConfig`` adapters —
including the bit-identical-sender equivalence the shims promise.
"""

from __future__ import annotations

import pytest

from repro.api import (
    BELIEF_BACKENDS,
    ROLLOUT_BACKENDS,
    BackendRegistry,
    SenderConfig,
    UnknownBackendError,
    build_sender,
)
from repro.core.policy import PolicyCache
from repro.errors import ConfigurationError, InferenceError
from repro.inference import single_link_prior
from repro.topology import single_link_network


class TestBackendRegistry:
    def test_builtin_backends_are_known(self):
        assert BELIEF_BACKENDS.names() == ["fused", "scalar", "vectorized"]
        assert ROLLOUT_BACKENDS.names() == ["fused", "scalar", "vectorized"]
        assert "vectorized" in BELIEF_BACKENDS
        assert "fused" in BELIEF_BACKENDS
        assert "quantum" not in ROLLOUT_BACKENDS

    def test_resolve_returns_registered_engines(self):
        from repro.inference.belief import BeliefState
        from repro.inference.vectorized import VectorizedBeliefState
        from repro.inference.vectorized.fused import FusedBeliefState

        assert BELIEF_BACKENDS.resolve("scalar") is BeliefState
        assert BELIEF_BACKENDS.resolve("vectorized") is VectorizedBeliefState
        assert BELIEF_BACKENDS.resolve("fused") is FusedBeliefState
        assert callable(ROLLOUT_BACKENDS.resolve("scalar"))
        assert callable(ROLLOUT_BACKENDS.resolve("vectorized"))
        assert callable(ROLLOUT_BACKENDS.resolve("fused"))

    def test_unknown_name_lists_registered_backends(self):
        with pytest.raises(UnknownBackendError, match="fused, scalar, vectorized"):
            BELIEF_BACKENDS.resolve("quantum")
        with pytest.raises(UnknownBackendError, match="rollout backend 'warp'"):
            ROLLOUT_BACKENDS.validate("warp")

    def test_unknown_backend_error_satisfies_old_hierarchies(self):
        # The old entry points raised ConfigurationError (planner) and
        # InferenceError (belief); the registry error derives from both.
        assert issubclass(UnknownBackendError, ConfigurationError)
        assert issubclass(UnknownBackendError, InferenceError)

    def test_conflicting_registration_rejected(self):
        registry = BackendRegistry("test")
        registry.register("engine", object())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("engine", object())

    def test_reregistering_same_object_is_idempotent(self):
        registry = BackendRegistry("test")
        engine = object()
        registry.register("engine", engine)
        registry.register("engine", engine)
        assert registry.resolve("engine") is engine

    def test_register_as_decorator(self):
        registry = BackendRegistry("test")

        @registry.register("fn")
        def engine():
            return 42

        assert registry.resolve("fn") is engine


class TestSenderConfigValidation:
    def test_unknown_belief_backend_fails_at_config_time(self):
        with pytest.raises(UnknownBackendError, match="belief backend 'vectorised'"):
            SenderConfig(belief_backend="vectorised")

    def test_unknown_rollout_backend_fails_at_config_time(self):
        with pytest.raises(UnknownBackendError, match="rollout backend 'quantum'"):
            SenderConfig(rollout_backend="quantum")

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"kernel": "triangular"},
            {"policy": "oracle"},
            {"kernel_scale": 0.0},
            {"max_hypotheses": 0},
            {"top_k": 0},
            {"packet_bits": -1.0},
            {"policy_resolution_bits": 0.0},
        ],
    )
    def test_invalid_fields_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            SenderConfig(**kwargs)

    def test_build_belief_without_prior_rejected(self):
        with pytest.raises(ConfigurationError, match="no prior"):
            SenderConfig().build_belief()

    def test_build_belief_uses_config_backend(self):
        config = SenderConfig(prior=single_link_prior(), belief_backend="vectorized")
        assert config.build_belief().backend == "vectorized"

    def test_build_planner_reflects_config(self):
        config = SenderConfig(top_k=7, rollout_backend="vectorized", horizon=3.0)
        planner = config.build_planner()
        assert planner.top_k == 7
        assert planner.rollout_backend == "vectorized"
        assert planner.horizon == 3.0


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        left = SenderConfig(prior=single_link_prior(), alpha=2.0)
        right = SenderConfig(prior=single_link_prior(), alpha=2.0)
        assert left.fingerprint() == right.fingerprint()

    def test_sensitive_to_fields_and_prior(self):
        base = SenderConfig(prior=single_link_prior())
        assert base.fingerprint() != SenderConfig(
            prior=single_link_prior(), alpha=2.0
        ).fingerprint()
        assert base.fingerprint() != SenderConfig(
            prior=single_link_prior(link_rate_points=3)
        ).fingerprint()
        assert base.fingerprint() != SenderConfig().fingerprint()

    def test_is_short_hex(self):
        fingerprint = SenderConfig().fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)


class TestBuildSender:
    def make_network(self):
        return single_link_network(link_rate_bps=12_000.0, buffer_capacity_bits=96_000.0)

    def test_wires_sender_into_preset_network(self):
        network = self.make_network()
        config = SenderConfig(prior=single_link_prior(), alpha=0.0, top_k=8)
        sender = build_sender(config, network)
        network.network.run(until=8.0)
        assert sender.packets_sent > 0
        assert sender.packets_acked > 0
        assert sender.policy is None

    def test_policy_cache_mode_installs_cache(self):
        network = self.make_network()
        config = SenderConfig(
            prior=single_link_prior(), alpha=0.0, top_k=8, policy="cache"
        )
        sender = build_sender(config, network)
        assert isinstance(sender.policy, PolicyCache)
        assert sender.policy.queue_resolution_bits == config.policy_resolution_bits
        network.network.run(until=8.0)
        assert sender.policy.hits + sender.policy.misses > 0

    def test_rejects_non_network_handles(self):
        with pytest.raises(ConfigurationError, match="preset-network handle"):
            build_sender(SenderConfig(prior=single_link_prior()), object())

    def test_prior_override_beats_config_prior(self):
        network = self.make_network()
        override = single_link_prior(link_rate_points=2, fill_points=1)
        config = SenderConfig(prior=single_link_prior(), alpha=0.0)
        sender = build_sender(config, network, prior=override)
        assert len(sender.belief) == override.size


class TestDeprecatedShims:
    def test_sender_settings_warns(self):
        from repro.experiments.common import SenderSettings

        with pytest.warns(DeprecationWarning, match="SenderSettings is deprecated"):
            SenderSettings()

    def test_ablation_config_warns(self):
        from repro.experiments.ablation import AblationConfig

        with pytest.warns(DeprecationWarning, match="AblationConfig is deprecated"):
            AblationConfig(label="old")

    def test_shim_warnings_point_at_the_call_site(self):
        """The warning blames the caller's file/line on every entry path.

        A fixed ``stacklevel`` was right for direct construction but blamed
        ``dataclasses.py`` for shims built through ``dataclasses.replace``;
        the stack-walking helper must attribute both to this file.
        """
        import dataclasses
        import warnings

        from repro.experiments.ablation import AblationConfig
        from repro.experiments.common import SenderSettings

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            settings = SenderSettings()
            dataclasses.replace(settings, alpha=2.0)
            old = AblationConfig(label="old")
            dataclasses.replace(old, top_k=4)
        assert len(caught) == 4
        lines = set()
        for warning in caught:
            assert warning.category is DeprecationWarning
            assert warning.filename == __file__, warning.filename
            lines.add(warning.lineno)
        assert len(lines) == 4  # four distinct call sites, four locations

    def test_shim_warns_exactly_once_per_call_site(self):
        """Under the default filter, a looped call site warns only once.

        Correct call-site attribution is what makes the interpreter's
        per-location deduplication work: three constructions from one line
        are one warning, a second line is a second warning.
        """
        import warnings

        from repro.experiments.common import SenderSettings

        with warnings.catch_warnings(record=True) as caught:
            warnings.resetwarnings()
            warnings.simplefilter("default")
            for _ in range(3):
                SenderSettings()  # one call site, three executions
            SenderSettings()  # a different call site
        assert len(caught) == 2

    def test_sender_settings_to_config_maps_every_field(self):
        from repro.experiments.common import SenderSettings

        with pytest.warns(DeprecationWarning):
            settings = SenderSettings(
                alpha=2.5,
                discount_timescale=15.0,
                latency_penalty=0.1,
                kernel_sigma=0.3,
                max_hypotheses=64,
                top_k=9,
                packet_bits=1_000.0,
                use_policy_cache=True,
                belief_backend="vectorized",
                rollout_backend="vectorized",
            )
        config = settings.to_config()
        assert config.alpha == 2.5
        assert config.discount_timescale == 15.0
        assert config.latency_penalty == 0.1
        assert config.kernel == "gaussian"
        assert config.kernel_scale == 0.3
        assert config.max_hypotheses == 64
        assert config.top_k == 9
        assert config.packet_bits == 1_000.0
        assert config.policy == "cache"
        assert config.belief_backend == "vectorized"
        assert config.rollout_backend == "vectorized"

    def test_ablation_config_to_point_maps_every_field(self):
        from repro.experiments.ablation import AblationConfig

        with pytest.warns(DeprecationWarning):
            old = AblationConfig(
                label="exact",
                kernel="exact",
                kernel_scale=0.75,
                max_hypotheses=50,
                top_k=8,
                use_policy_cache=True,
                backend="vectorized",
                rollout_backend="vectorized",
            )
        point = old.to_point(alpha=2.0)
        assert point.label == "exact"
        config = point.config
        assert config.kernel == "exact"
        assert config.kernel_scale == 0.75
        assert config.max_hypotheses == 50
        assert config.top_k == 8
        assert config.policy == "cache"
        assert config.belief_backend == "vectorized"
        assert config.rollout_backend == "vectorized"
        assert config.alpha == 2.0

    def test_shim_builds_bit_identical_sender(self):
        """attach_isender(SenderSettings) == build_sender(SenderConfig).

        The same seeded scenario is run through both construction paths;
        the decision sequences, transmit times, and posterior must match
        exactly (the scalar-vs-vectorized equivalence-harness pattern).
        """
        from repro.experiments.common import SenderSettings, attach_isender

        def run(use_shim: bool):
            network = single_link_network(
                link_rate_bps=12_000.0, buffer_capacity_bits=96_000.0, seed=3
            )
            prior = single_link_prior()
            if use_shim:
                with pytest.warns(DeprecationWarning):
                    settings = SenderSettings(alpha=0.0, top_k=8, use_policy_cache=True)
                sender = attach_isender(network, prior, settings)
            else:
                config = SenderConfig(alpha=0.0, top_k=8, policy="cache")
                sender = build_sender(config, network, prior=prior)
            network.network.run(until=20.0)
            return sender

        shimmed = run(use_shim=True)
        canonical = run(use_shim=False)
        assert [record.sent_at for record in shimmed.sent] == [
            record.sent_at for record in canonical.sent
        ]
        assert [decision.delay for decision in shimmed.decisions] == [
            decision.delay for decision in canonical.decisions
        ]
        assert [
            decision.expected_utilities for decision in shimmed.decisions
        ] == [decision.expected_utilities for decision in canonical.decisions]
        assert shimmed.belief.weights == canonical.belief.weights
        assert (shimmed.policy.hits, shimmed.policy.misses) == (
            canonical.policy.hits,
            canonical.policy.misses,
        )

    def test_run_ablation_config_matches_run_ablation_point(self):
        """The deprecated ablation wrapper reproduces the canonical sweep."""
        from repro.experiments.ablation import (
            AblationConfig,
            run_ablation_config,
            run_ablation_point,
        )

        with pytest.warns(DeprecationWarning):
            old = AblationConfig(label="small", max_hypotheses=40, top_k=6)
        via_shim = run_ablation_config(old, duration=10.0)
        via_api = run_ablation_point(
            "small",
            SenderConfig(max_hypotheses=40, top_k=6),
            duration=10.0,
        )
        assert via_shim.packets_sent == via_api.packets_sent
        assert via_shim.rollouts == via_api.rollouts
        assert via_shim.final_hypotheses == via_api.final_hypotheses
        assert via_shim.posterior_true_link_rate == via_api.posterior_true_link_rate
