"""Tests for the trace-corpus subsystem: parsing, store, generators, CLI."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.corpus import (
    GENERATOR_FAMILIES,
    CorpusStore,
    LinkTrace,
    build_generator,
    load_trace_path,
    parse_mahimahi_text,
    parse_samples_text,
    trace_digest,
)
from repro.corpus.__main__ import main as corpus_main
from repro.errors import ConfigurationError

FIXTURE = Path(__file__).parent / "data" / "mahimahi_small.trace"


class TestLinkTrace:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[], rates=[])
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[0.0, 1.0], rates=[1e6])
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[-1.0], rates=[1e6])
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[0.0, 1.0, 1.0], rates=[1e6, 1e6, 1e6])
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[0.0, 1.0], rates=[1e6, 0.0])
        with pytest.raises(ConfigurationError):
            LinkTrace(times=[0.0, 5.0], rates=[1e6, 1e6], duration=5.0)

    def test_rate_process_compatible_surface(self):
        trace = LinkTrace(times=[0.0, 2.0, 4.0], rates=[1e6, 3e6, 2e6], duration=6.0)
        assert trace.rate_at(-1.0) == 1e6
        assert trace.rate_at(0.5) == 1e6
        assert trace.rate_at(2.0) == 3e6
        assert trace.rate_at(100.0) == 2e6
        assert trace.min_rate() == 1e6
        assert trace.max_rate() == 3e6
        # Time-weighted: each rate holds for 2 s of the 6 s span.
        assert trace.mean_rate() == pytest.approx((1e6 + 3e6 + 2e6) / 3)
        assert len(trace) == 3
        assert trace.samples() == [(0.0, 1e6), (2.0, 3e6), (4.0, 2e6)]

    def test_digest_ignores_name_and_source(self):
        a = LinkTrace(times=[0.0], rates=[1e6], duration=1.0, name="a", source="x")
        b = LinkTrace(times=[0.0], rates=[1e6], duration=1.0, name="b", source="y")
        c = LinkTrace(times=[0.0], rates=[2e6], duration=1.0)
        assert a.digest == b.digest == trace_digest([0.0], [1e6], 1.0)
        assert a.digest != c.digest

    def test_payload_round_trip_preserves_digest(self):
        trace = LinkTrace(times=[0.0, 1.5], rates=[1e6, 2e6], duration=3.0, name="t")
        clone = LinkTrace.from_payload(trace.to_payload())
        assert clone.digest == trace.digest
        assert clone.samples() == trace.samples()
        assert clone.name == "t"

    def test_payload_digest_mismatch_is_rejected(self):
        payload = LinkTrace(times=[0.0], rates=[1e6], duration=1.0).to_payload()
        payload["rates"] = [2e6]
        with pytest.raises(ConfigurationError):
            LinkTrace.from_payload(payload)


class TestParsers:
    def test_samples_text(self):
        trace = parse_samples_text("# hdr\n0 1e6\n1.0, 2e6\n\n2.0 3e6 # tail\n")
        assert trace.samples() == [(0.0, 1e6), (1.0, 2e6), (2.0, 3e6)]

    def test_samples_text_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_samples_text("0 1e6 extra\n")
        with pytest.raises(ConfigurationError):
            parse_samples_text("zero 1e6\n")
        with pytest.raises(ConfigurationError):
            parse_samples_text("# only comments\n")

    def test_mahimahi_binning(self):
        # 10 packets in [0, 100) ms and 20 in [100, 200) ms at 12 kbit each:
        # 1.2 Mbps then 2.4 Mbps.
        stamps = [i * 10 for i in range(10)] + [100 + i * 5 for i in range(20)]
        trace = parse_mahimahi_text("\n".join(map(str, stamps)), bin_ms=100)
        assert len(trace) == 2
        assert trace.rates[0] == pytest.approx(1_200_000.0)
        assert trace.rates[1] == pytest.approx(2_400_000.0)
        assert trace.duration == pytest.approx(0.2)

    def test_mahimahi_empty_bins_floor_at_positive_rate(self):
        trace = parse_mahimahi_text("0\n500\n", bin_ms=100)
        assert len(trace) == 6
        assert all(rate > 0 for rate in trace.rates)

    def test_mahimahi_rejects_decreasing_timestamps(self):
        with pytest.raises(ConfigurationError):
            parse_mahimahi_text("5\n3\n")
        with pytest.raises(ConfigurationError):
            parse_mahimahi_text("-1\n")

    def test_auto_detect(self, tmp_path):
        mahi = tmp_path / "a.trace"
        mahi.write_text("0\n10\n20\n")
        samples = tmp_path / "b.trace"
        samples.write_text("0 1e6\n1 2e6\n")
        assert load_trace_path(mahi).source.endswith("a.trace")
        assert len(load_trace_path(samples)) == 2
        with pytest.raises(ConfigurationError):
            load_trace_path(tmp_path / "missing.trace")


class TestGenerators:
    @pytest.mark.parametrize("family", sorted(GENERATOR_FAMILIES))
    def test_deterministic_per_seed(self, family):
        params = {"duration": 20.0}
        assert (
            build_generator(family, params).build(3).digest
            == build_generator(family, params).build(3).digest
        )
        assert (
            build_generator(family, params).build(3).digest
            != build_generator(family, params).build(4).digest
        )

    def test_unknown_family_and_param(self):
        with pytest.raises(ConfigurationError):
            build_generator("nope")
        with pytest.raises(ConfigurationError):
            build_generator("diurnal", {"frequency": 2.0})

    def test_markov_visits_both_states(self):
        trace = build_generator(
            "markov_onoff", {"duration": 60.0, "mean_on_s": 2.0, "mean_off_s": 2.0}
        ).build(1)
        rates = {r for _, r in trace.samples()}
        assert len(rates) == 2


class TestCorpusStore:
    def test_ingest_describe_round_trip_preserves_digest(self, tmp_path):
        store = CorpusStore(tmp_path)
        entry = store.ingest(FIXTURE, name="fixture")
        described = store.describe("fixture")
        loaded = store.get("fixture")
        assert described["digest"] == entry["digest"] == loaded.digest
        assert described["kind"] == "trace"

    def test_same_content_shares_one_blob(self, tmp_path):
        store = CorpusStore(tmp_path)
        a = store.ingest(FIXTURE, name="a")
        b = store.ingest(FIXTURE, name="b")
        assert a["digest"] == b["digest"]
        assert len(list((tmp_path / "traces").glob("*.json"))) == 1

    def test_lookup_by_digest(self, tmp_path):
        store = CorpusStore(tmp_path)
        entry = store.ingest(FIXTURE, name="fixture")
        assert store.get(entry["digest"]).digest == entry["digest"]
        with pytest.raises(ConfigurationError):
            store.get("no-such-entry")

    def test_corrupt_blob_is_quarantined_and_generator_rebuilds(self, tmp_path):
        store = CorpusStore(tmp_path)
        entry = store.register_generator("mk", "markov_onoff", {"duration": 15.0}, seed=2)
        blob = store.blob_path(entry["digest"])
        blob.write_text("{torn")
        rebuilt = store.get("mk")
        assert rebuilt.digest == entry["digest"]
        assert (tmp_path / "quarantine" / blob.name).exists()

    def test_missing_ingested_blob_is_an_error_naming_the_source(self, tmp_path):
        store = CorpusStore(tmp_path)
        entry = store.ingest(FIXTURE, name="fixture")
        store.blob_path(entry["digest"]).unlink()
        with pytest.raises(ConfigurationError, match="re-ingest"):
            store.get("fixture")

    def test_manifest_is_byte_stable(self, tmp_path):
        store = CorpusStore(tmp_path)
        store.ingest(FIXTURE, name="fixture")
        first = store.manifest_path.read_bytes()
        store.ingest(FIXTURE, name="fixture")
        assert store.manifest_path.read_bytes() == first


class TestCorpusCli:
    def test_ingest_list_describe_generate(self, tmp_path, capsys):
        root = str(tmp_path)
        assert corpus_main(["--corpus-dir", root, "ingest", str(FIXTURE)]) == 0
        ingest_out = capsys.readouterr().out
        assert "digest=" in ingest_out

        assert corpus_main(["--corpus-dir", root, "list"]) == 0
        assert "mahimahi_small" in capsys.readouterr().out

        assert corpus_main(["--corpus-dir", root, "describe", "mahimahi_small"]) == 0
        describe_out = capsys.readouterr().out
        digest = json.loads(
            (tmp_path / "manifest.json").read_text()
        )["entries"]["mahimahi_small"]["digest"]
        assert digest in describe_out  # describe reports the exact digest

        assert (
            corpus_main(
                [
                    "--corpus-dir", root, "generate", "flash_crowd",
                    "--name", "crowd", "--seed", "3", "--set", "duration=30.0",
                ]
            )
            == 0
        )
        assert corpus_main(["--corpus-dir", root, "describe", "crowd"]) == 0
        assert "flash_crowd" in capsys.readouterr().out

    def test_errors_exit_2(self, tmp_path, capsys):
        root = str(tmp_path)
        assert corpus_main(["--corpus-dir", root, "describe", "missing"]) == 2
        assert "error:" in capsys.readouterr().err
        assert corpus_main(["--corpus-dir", root, "ingest", str(tmp_path / "no.trace")]) == 2
        capsys.readouterr()
        bad = tmp_path / "bad.trace"
        bad.write_text("5\n3\n")
        assert corpus_main(["--corpus-dir", root, "ingest", str(bad)]) == 2
