"""Tests for the TCP-like window senders and the rate senders."""

from __future__ import annotations

import pytest

from repro.baselines import (
    AimdSender,
    CubicSender,
    FixedRateSender,
    NewRenoSender,
    OracleSender,
    RenoSender,
    TahoeSender,
)
from repro.errors import ConfigurationError
from repro.topology import single_link_network


def run_tcp(sender_cls, duration=60.0, loss_rate=0.0, link_rate=100_000.0, seed=1, **kwargs):
    """Run one window sender over a single bottleneck link and return (sender, network)."""
    network = single_link_network(
        link_rate_bps=link_rate,
        buffer_capacity_bits=20 * 12_000.0,
        loss_rate=loss_rate,
        sender_flow="tcp",
        seed=seed,
    )
    sender = sender_cls(
        network.sender_receiver, flow="tcp", name=sender_cls.__name__.lower(), **kwargs
    )
    sender.connect(network.entry)
    network.network.add(sender)
    network.network.run(until=duration)
    return sender, network


class TestWindowSenderMechanics:
    def test_validation(self):
        network = single_link_network(sender_flow="tcp")
        with pytest.raises(ConfigurationError):
            RenoSender(network.sender_receiver, packet_bits=0)
        with pytest.raises(ConfigurationError):
            RenoSender(network.sender_receiver, initial_cwnd=0.5)
        with pytest.raises(ConfigurationError):
            RenoSender(network.sender_receiver, min_rto=0.0)

    def test_self_clocking_fills_clean_link(self):
        sender, network = run_tcp(RenoSender, duration=60.0)
        goodput = network.sender_receiver.throughput_bps(30.0, 60.0, flow="tcp")
        assert goodput > 0.8 * 100_000.0
        assert sender.timeouts == 0

    def test_rtt_samples_collected(self):
        sender, _ = run_tcp(RenoSender, duration=20.0)
        assert sender.rtt_samples
        assert sender.mean_rtt() > 0
        assert sender.rtt_series()[0][1] > 0

    def test_cwnd_grows_during_slow_start(self):
        sender, _ = run_tcp(RenoSender, duration=5.0)
        assert sender.cwnd > 1.0
        assert sender.cwnd_trace

    def test_flow_size_limits_transfer(self):
        sender, network = run_tcp(RenoSender, duration=60.0, total_packets=10)
        assert network.sender_receiver.count == 10
        assert sender.packets_sent >= 10

    def test_loss_triggers_recovery_machinery(self):
        sender, _ = run_tcp(RenoSender, duration=120.0, loss_rate=0.05, seed=3)
        assert sender.retransmissions > 0
        assert sender.fast_retransmits + sender.timeouts > 0

    def test_timeout_collapses_window(self):
        sender, _ = run_tcp(RenoSender, duration=120.0, loss_rate=0.3, seed=3)
        assert sender.timeouts > 0
        assert sender.cwnd < 20.0

    def test_goodput_helper_matches_receiver(self):
        sender, network = run_tcp(RenoSender, duration=30.0)
        assert sender.goodput_bps(0.0, 30.0) == pytest.approx(
            network.sender_receiver.throughput_bps(0.0, 30.0, flow="tcp")
        )


class TestVariantBehaviour:
    @pytest.mark.parametrize(
        "sender_cls", [TahoeSender, RenoSender, NewRenoSender, CubicSender, AimdSender]
    )
    def test_all_variants_complete_a_transfer(self, sender_cls):
        sender, network = run_tcp(sender_cls, duration=60.0, loss_rate=0.02, seed=2)
        assert network.sender_receiver.count > 20
        assert sender.packets_sent >= network.sender_receiver.count

    def test_loss_blind_senders_collapse_under_heavy_stochastic_loss(self):
        # The paper's motivation: 20% non-congestive loss confounds TCP.
        sender, network = run_tcp(NewRenoSender, duration=120.0, loss_rate=0.2, link_rate=12_000.0, seed=5)
        goodput = network.sender_receiver.throughput_bps(0.0, 120.0, flow="tcp")
        assert goodput < 0.6 * 12_000.0

    def test_tahoe_resets_to_one_on_dupacks(self):
        sender, _ = run_tcp(TahoeSender, duration=90.0, loss_rate=0.05, seed=4)
        assert sender.fast_retransmits > 0
        # Tahoe never inflates the window above ssthresh + 3 after a loss.
        assert all(cwnd >= 1.0 for _, cwnd in sender.cwnd_trace)

    def test_aimd_validation(self):
        network = single_link_network(sender_flow="tcp")
        with pytest.raises(ConfigurationError):
            AimdSender(network.sender_receiver, increase=0.0)
        with pytest.raises(ConfigurationError):
            AimdSender(network.sender_receiver, decrease=1.5)

    def test_cubic_grows_beyond_reno_on_long_clean_path(self):
        cubic, _ = run_tcp(CubicSender, duration=40.0, link_rate=200_000.0)
        assert cubic.cwnd > 10.0


class TestRateSenders:
    def test_fixed_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FixedRateSender(rate_pps=0.0)
        with pytest.raises(ConfigurationError):
            FixedRateSender(rate_pps=1.0, packet_bits=0)

    def test_fixed_rate_sender_is_isochronous(self):
        network = single_link_network(link_rate_bps=100_000.0, sender_flow="fixed")
        sender = FixedRateSender(rate_pps=2.0, flow="fixed")
        sender.connect(network.entry)
        network.network.add(sender)
        network.network.run(until=5.2)
        assert sender.packets_sent == 11
        assert sender.rate_bps == pytest.approx(24_000.0)

    def test_fixed_rate_stop_time(self):
        network = single_link_network(link_rate_bps=100_000.0, sender_flow="fixed")
        sender = FixedRateSender(rate_pps=1.0, flow="fixed", stop_time=3.0)
        sender.connect(network.entry)
        network.network.add(sender)
        network.network.run(until=10.0)
        assert sender.packets_sent == 4

    def test_oracle_matches_link_rate(self):
        network = single_link_network(link_rate_bps=12_000.0, sender_flow="oracle")
        sender = OracleSender(link_rate_bps=12_000.0, flow="oracle")
        sender.connect(network.entry)
        network.network.add(sender)
        network.network.run(until=60.0)
        goodput = network.sender_receiver.throughput_bps(10.0, 60.0, flow="oracle")
        assert goodput == pytest.approx(12_000.0, rel=0.05)
        assert network.buffer.drop_count == 0

    def test_oracle_validation(self):
        with pytest.raises(ConfigurationError):
            OracleSender(link_rate_bps=12_000.0, utilization=0.0)
