"""Unit tests for the scenario-runner subsystem: specs, registry, store, CLI."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.runner import (
    DEFAULT_REGISTRY,
    PointResult,
    ResultStore,
    ScenarioRegistry,
    ScenarioSpec,
    SerialRunner,
    grid,
    make_runner,
    run_specs,
)
from repro.runner.cli import main as cli_main
from repro.sim.random import derive_seed


# ---------------------------------------------------------------------- specs


class TestScenarioSpec:
    def test_derived_seed_is_stable_and_param_order_independent(self):
        a = ScenarioSpec("demo", params={"x": 1, "y": 2}, seed=3)
        b = ScenarioSpec("demo", params={"y": 2, "x": 1}, seed=3)
        assert a.derived_seed == b.derived_seed
        assert a.derived_seed == a.derived_seed  # property, not state

    def test_derived_seed_separates_points_and_seeds(self):
        base = ScenarioSpec("demo", params={"x": 1}, seed=0)
        assert base.derived_seed != ScenarioSpec("demo", params={"x": 2}, seed=0).derived_seed
        assert base.derived_seed != ScenarioSpec("demo", params={"x": 1}, seed=1).derived_seed
        assert base.derived_seed != ScenarioSpec("other", params={"x": 1}, seed=0).derived_seed

    def test_label_mentions_scenario_params_and_seed(self):
        spec = ScenarioSpec("demo", params={"x": 1}, seed=9)
        assert spec.label == "demo[x=1,seed=9]"

    def test_derive_seed_is_process_independent(self):
        # Pinned value: must never change across refactors, or every stored
        # artifact and cross-process replay breaks.
        assert derive_seed(0, "a") == int.from_bytes(
            __import__("hashlib").sha256(b"0:a").digest()[:8], "big"
        )


class TestGrid:
    def test_cross_product_with_seeds(self):
        specs = grid("demo", seeds=(0, 1), x=(1, 2), y=("a",))
        assert len(specs) == 4
        assert [spec.params for spec in specs] == [
            {"x": 1, "y": "a"},
            {"x": 1, "y": "a"},
            {"x": 2, "y": "a"},
            {"x": 2, "y": "a"},
        ]
        assert [spec.seed for spec in specs] == [0, 1, 0, 1]

    def test_int_seeds_means_range(self):
        specs = grid("demo", seeds=3)
        assert [spec.seed for spec in specs] == [0, 1, 2]

    def test_base_params_are_merged(self):
        specs = grid("demo", base={"fixed": 7}, x=(1,))
        assert specs[0].params == {"fixed": 7, "x": 1}

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            grid("demo", x=())
        with pytest.raises(ConfigurationError):
            grid("demo", seeds=())

    def test_specs_do_not_share_params_dicts(self):
        specs = grid("demo", seeds=(0, 1), x=(1,))
        specs[0].params["x"] = 99
        assert specs[1].params == {"x": 1}


# ------------------------------------------------------------------- registry


def _toy_scenario(seed: int = 0, scale: float = 1.0) -> dict[str, float]:
    return {"seed_echo": seed, "scaled": scale * 2.0}


class TestRegistry:
    def test_register_and_run_point(self):
        registry = ScenarioRegistry()
        registry.register("toy")(_toy_scenario)
        spec = ScenarioSpec("toy", params={"scale": 3.0}, seed=1)
        metrics = registry.run_point(spec)
        assert metrics["scaled"] == 6.0
        assert metrics["seed_echo"] == spec.derived_seed

    def test_defaults_are_overridden_by_params(self):
        registry = ScenarioRegistry()
        registry.register("toy", scale=5.0)(_toy_scenario)
        assert registry.run_point(ScenarioSpec("toy"))["scaled"] == 10.0
        assert registry.run_point(ScenarioSpec("toy", params={"scale": 1.0}))["scaled"] == 2.0

    def test_duplicate_name_rejected(self):
        registry = ScenarioRegistry()
        registry.register("toy")(_toy_scenario)
        with pytest.raises(ConfigurationError):
            registry.register("toy")(_toy_scenario)

    def test_unknown_name_lists_known(self):
        registry = ScenarioRegistry()
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            registry.get("nope")

    def test_default_registry_exposes_builtin_scenarios(self):
        names = DEFAULT_REGISTRY.names()
        for expected in ("figure1", "figure3_alpha", "single_link_tcp", "cellular_trace_tcp"):
            assert expected in names

    def test_unknown_parameter_rejected_with_known_list(self):
        registry = ScenarioRegistry()
        registry.register("toy")(_toy_scenario)
        with pytest.raises(ConfigurationError, match="known parameters: scale"):
            registry.run_point(ScenarioSpec("toy", params={"scall": 2.0}))

    def test_var_kwargs_scenarios_accept_anything(self):
        registry = ScenarioRegistry()
        registry.register("open")(lambda seed=0, **extras: {"n": len(extras)})
        assert registry.run_point(ScenarioSpec("open", params={"whatever": 1}))["n"] == 1

    @pytest.mark.parametrize("name", ["toy", "open"])
    def test_seed_param_rejected_even_for_var_kwargs(self, name):
        registry = ScenarioRegistry()
        registry.register("toy")(_toy_scenario)
        registry.register("open")(lambda seed=0, **extras: {"n": len(extras)})
        with pytest.raises(ConfigurationError, match="not a scenario parameter"):
            registry.run_point(ScenarioSpec(name, params={"seed": 5}))

    def test_non_mapping_return_rejected(self):
        registry = ScenarioRegistry()
        registry.register("bad")(lambda seed=0: 42)
        with pytest.raises(ConfigurationError, match="expected a mapping"):
            registry.run_point(ScenarioSpec("bad"))


# ----------------------------------------------------------------- result store


class TestResultStore:
    def _store(self) -> ResultStore:
        store = ResultStore()
        store.add(
            PointResult(
                spec=ScenarioSpec("toy", params={"x": 1}, seed=0),
                metrics={"m": 1.5},
                wall_time=0.25,
            )
        )
        return store

    def test_canonical_json_round_trips(self):
        store = self._store()
        text = store.to_json()
        again = ResultStore.from_json(text)
        assert again.to_json() == text
        assert len(again) == 1
        assert again.results[0].metrics == {"m": 1.5}

    def test_timing_excluded_from_canonical_artifact(self):
        store = self._store()
        assert "wall_time" not in store.to_json()
        assert json.loads(store.to_json(include_timing=True))["results"][0]["wall_time"] == 0.25

    def test_fingerprint_tracks_content(self):
        store = self._store()
        other = self._store()
        assert store.fingerprint() == other.fingerprint()
        other.results[0].metrics["m"] = 2.0
        assert store.fingerprint() != other.fingerprint()

    def test_rows_and_metric_column(self):
        store = self._store()
        assert store.metric("m") == [1.5]
        assert store.rows()[0].values == {"m": 1.5}
        assert store.total_wall_time == pytest.approx(0.25)

    def test_json_and_csv_files(self, tmp_path):
        store = self._store()
        json_path = tmp_path / "out.json"
        csv_path = tmp_path / "out.csv"
        store.to_json(json_path)
        store.to_csv(csv_path)
        assert json.loads(json_path.read_text())["schema"] == "repro.runner/1"
        assert "label,m" in csv_path.read_text().splitlines()[0]

    def test_merge_preserves_order(self):
        a, b = self._store(), self._store()
        merged = a.merge(b)
        assert len(merged) == 2
        assert len(a) == 1  # merge is non-destructive


# ------------------------------------------------------------------- backends


class TestBackends:
    def test_serial_runner_runs_registered_specs(self):
        registry = ScenarioRegistry()
        registry.register("toy")(_toy_scenario)
        specs = grid("toy", scale=(1.0, 2.0))
        store = SerialRunner(registry=registry).run(specs)
        assert store.metric("scaled") == [2.0, 4.0]
        assert all(result.wall_time >= 0.0 for result in store)

    def test_make_runner_validates_backend(self):
        assert make_runner("serial").backend_name == "serial"
        assert make_runner("parallel", workers=2).backend_name == "parallel"
        assert make_runner("async", workers=2).backend_name == "async"
        with pytest.raises(ConfigurationError):
            make_runner("quantum")

    def test_runner_backend_registry_names(self):
        from repro.runner import RUNNER_BACKENDS

        assert RUNNER_BACKENDS.names() == ["async", "parallel", "serial"]

    def test_parallel_runner_validates_workers(self):
        from repro.runner import ParallelRunner

        with pytest.raises(ConfigurationError):
            ParallelRunner(workers=0)
        with pytest.raises(ConfigurationError):
            ParallelRunner(chunksize=0)

    def test_run_specs_serial_on_builtin_scenario(self):
        specs = [ScenarioSpec("single_link_tcp", params={"duration": 5.0}, seed=0)]
        store = run_specs(specs)
        assert store.metric("goodput_bps")[0] > 0.0

    def test_serial_run_does_not_leak_counter_resets(self):
        from repro.elements.loss import Loss

        before = Loss(rate=0.1)
        SerialRunner().run([ScenarioSpec("single_link_tcp", params={"duration": 2.0})])
        after = Loss(rate=0.1)
        # An in-process sweep must not restart the caller's default naming —
        # same-name elements would silently share RNG streams.
        assert after.name != before.name


# ------------------------------------------------------------------------ CLI


class TestCli:
    def test_list_prints_scenarios(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "single_link_tcp" in out
        assert "figure3_alpha" in out

    def test_list_flag_alias(self, capsys):
        """``python -m repro.runner --list`` (the CI smoke spelling)."""
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "figure3_alpha" in out

    def test_engine_policy_sweep_through_cli(self, capsys):
        """rollout_backend/policy are sweepable scenario axes (PR 3 follow-on)."""
        code = cli_main(
            [
                "run",
                "inference_ablation_point",
                "--set",
                "duration=6",
                "--sweep",
                "rollout_backend=scalar,vectorized",
                "--sweep",
                "policy=none,cache",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "policy_hits" in out

    def test_run_writes_artifacts(self, tmp_path, capsys):
        json_path = tmp_path / "sweep.json"
        csv_path = tmp_path / "sweep.csv"
        code = cli_main(
            [
                "run",
                "single_link_tcp",
                "--set",
                "duration=4",
                "--sweep",
                "loss_rate=0,0.1",
                "--json",
                str(json_path),
                "--csv",
                str(csv_path),
            ]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert len(payload["results"]) == 2
        assert {result["params"]["loss_rate"] for result in payload["results"]} == {0, 0.1}
        assert csv_path.exists()
        assert "single_link_tcp" in capsys.readouterr().out

    def test_run_unknown_scenario_fails_cleanly(self, capsys):
        assert cli_main(["run", "not_a_scenario"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_bad_assignment_fails_cleanly(self, capsys):
        assert cli_main(["run", "single_link_tcp", "--set", "duration"]) == 2
        assert "key=value" in capsys.readouterr().err
