"""Tests for SERIES, DIVERTER, RECEIVER, COLLECTOR, and element wiring."""

from __future__ import annotations

import pytest

from repro.elements import (
    Buffer,
    Collector,
    Delay,
    Diverter,
    Loss,
    Receiver,
    Series,
    Throughput,
)
from repro.errors import WiringError
from repro.sim.element import Element, Network, SourceElement
from repro.sim.packet import Packet


class TestWiring:
    def test_rshift_chains(self):
        a = Delay(0.1, name="a")
        b = Delay(0.1, name="b")
        c = Collector(name="c")
        a >> b >> c
        assert a.downstream is b
        assert b.downstream is c

    def test_self_connection_rejected(self):
        a = Delay(0.1, name="a")
        with pytest.raises(WiringError):
            a.connect(a)

    def test_unattached_sim_access_raises(self):
        a = Delay(0.1, name="a")
        with pytest.raises(WiringError):
            _ = a.sim

    def test_double_attach_to_other_simulator_rejected(self):
        a = Delay(0.1, name="a")
        first = Network(seed=0)
        second = Network(seed=0)
        first.add(a)
        with pytest.raises(WiringError):
            second.add(a)

    def test_source_element_rejects_input(self, network):
        class Dummy(SourceElement):
            pass

        dummy = Dummy(name="dummy")
        network.add(dummy)
        with pytest.raises(WiringError):
            dummy.receive(Packet(seq=0, flow="f"))

    def test_emit_without_downstream_counts_exit(self, network):
        class PassThrough(Element):
            def receive(self, packet):
                self.emit(packet)

        element = PassThrough(name="edge")
        network.add(element)
        network.start()
        element.receive(Packet(seq=0, flow="f"))
        assert element.emitted_count == 1

    def test_network_element_lookup(self, network):
        a = Delay(0.1, name="the-delay")
        network.add(a)
        assert network.element("the-delay") is a
        with pytest.raises(KeyError):
            network.element("missing")


class TestSeries:
    def test_requires_a_stage(self):
        with pytest.raises(WiringError):
            Series()

    def test_packets_traverse_all_stages(self, network):
        series = Series(Delay(0.25, name="d1"), Delay(0.25, name="d2"), name="series")
        sink = Collector(name="sink")
        series.connect(sink)
        network.add(series)
        network.start()
        series.receive(Packet(seq=0, flow="f", sent_at=0.0))
        network.run()
        assert sink.packets[0].delivered_at == pytest.approx(0.5)

    def test_series_composes_with_queueing(self, network):
        buffer = Buffer(capacity_bits=48_000, name="buf")
        link = Throughput(rate_bps=12_000, name="link")
        series = Series(buffer, link, name="series")
        sink = Collector(name="sink")
        series.connect(sink)
        network.add(series)
        network.start()
        for seq in range(2):
            series.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert [p.delivered_at for p in sink.packets] == pytest.approx([1.0, 2.0])

    def test_nested_series(self, network):
        inner = Series(Delay(0.1, name="i1"), Delay(0.1, name="i2"), name="inner")
        outer = Series(inner, Delay(0.1, name="o1"), name="outer")
        sink = Collector(name="sink")
        outer.connect(sink)
        network.add(outer)
        network.start()
        outer.receive(Packet(seq=0, flow="f", sent_at=0.0))
        network.run()
        assert sink.packets[0].delivered_at == pytest.approx(0.3)


class TestDiverter:
    def test_routes_by_flow_name(self, network):
        ours = Collector(name="ours")
        theirs = Collector(name="theirs")
        diverter = Diverter("isender", ours, theirs, name="div")
        network.add(diverter)
        network.start()
        diverter.receive(Packet(seq=0, flow="isender"))
        diverter.receive(Packet(seq=1, flow="cross"))
        diverter.receive(Packet(seq=2, flow="cross"))
        assert ours.count() == 1
        assert theirs.count() == 2
        assert diverter.matched_count == 1
        assert diverter.other_count == 2

    def test_routes_by_callable(self, network):
        small = Collector(name="small")
        large = Collector(name="large")
        diverter = Diverter(lambda p: p.size_bits < 1_000, small, large, name="div")
        network.add(diverter)
        network.start()
        diverter.receive(Packet(seq=0, flow="f", size_bits=100))
        diverter.receive(Packet(seq=1, flow="f", size_bits=10_000))
        assert small.count() == 1
        assert large.count() == 1


class TestReceiver:
    def test_records_delivery_and_invokes_callback(self, network):
        seen = []
        receiver = Receiver(name="rx", on_deliver=seen.append)
        network.add(receiver)
        network.start()
        receiver.receive(Packet(seq=7, flow="f", size_bits=12_000, sent_at=0.0, created_at=0.0))
        assert receiver.count == 1
        assert seen[0].seq == 7
        assert seen[0].delay == pytest.approx(0.0)
        assert receiver.bits_received == pytest.approx(12_000)

    def test_ack_delay_defers_callback(self, network):
        seen = []
        receiver = Receiver(name="rx", on_deliver=seen.append, ack_delay=0.5)
        network.add(receiver)
        network.start()
        receiver.receive(Packet(seq=0, flow="f", sent_at=0.0))
        assert seen == []
        network.run()
        assert len(seen) == 1

    def test_accept_flows_filters(self, network):
        receiver = Receiver(name="rx", accept_flows={"isender"})
        network.add(receiver)
        network.start()
        receiver.receive(Packet(seq=0, flow="isender"))
        receiver.receive(Packet(seq=1, flow="cross"))
        assert receiver.count == 1
        assert receiver.ignored_count == 1

    def test_sequence_series_and_throughput(self, network):
        receiver = Receiver(name="rx")
        network.add(receiver)
        network.start()
        for seq in range(4):
            network.sim.schedule(float(seq), receiver.receive, Packet(seq=seq, flow="f", size_bits=8_000, sent_at=float(seq)))
        network.run()
        series = receiver.sequence_series()
        assert series[-1] == (3.0, 4)
        assert receiver.throughput_bps(0.0, 4.0) == pytest.approx(8_000)
        assert receiver.mean_delay() == pytest.approx(0.0)

    def test_mean_delay_none_when_empty(self, network):
        receiver = Receiver(name="rx")
        network.add(receiver)
        assert receiver.mean_delay() is None


class TestCollector:
    def test_per_flow_tallies(self, network):
        collector = Collector(name="sink")
        network.add(collector)
        network.start()
        collector.receive(Packet(seq=0, flow="a", size_bits=1_000, sent_at=0.0))
        collector.receive(Packet(seq=1, flow="b", size_bits=2_000, sent_at=0.0))
        collector.receive(Packet(seq=2, flow="b", size_bits=2_000, sent_at=0.0))
        assert collector.count("a") == 1
        assert collector.count("b") == 2
        assert collector.bits() == pytest.approx(5_000)
        assert collector.bits("b") == pytest.approx(4_000)
        assert collector.flows["b"].mean_delay is not None

    def test_throughput_window(self, network):
        collector = Collector(name="sink")
        network.add(collector)
        network.start()
        for second in range(4):
            network.sim.schedule(
                float(second), collector.receive, Packet(seq=second, flow="f", size_bits=6_000)
            )
        network.run()
        assert collector.throughput_bps(0.0, 4.0) == pytest.approx(6_000)
        assert collector.throughput_bps(2.0, 4.0, flow="f") == pytest.approx(6_000)
        assert collector.throughput_bps(4.0, 4.0) == 0.0
