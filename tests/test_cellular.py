"""Tests for the synthetic cellular link substrate."""

from __future__ import annotations

import pytest

from repro.baselines import NewRenoSender
from repro.cellular import CellularLink, RateProcess, constant_rate_process
from repro.elements import Collector, Receiver
from repro.errors import ConfigurationError
from repro.sim.element import Network
from repro.sim.packet import Packet


class TestRateProcess:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RateProcess(nominal_bps=0, min_bps=1, max_bps=2)
        with pytest.raises(ConfigurationError):
            RateProcess(nominal_bps=5, min_bps=10, max_bps=20)
        with pytest.raises(ConfigurationError):
            RateProcess(nominal_bps=15, min_bps=10, max_bps=20, step_interval=0)
        with pytest.raises(ConfigurationError):
            RateProcess(nominal_bps=15, min_bps=10, max_bps=20, reversion=2.0)

    def test_rates_stay_within_bounds(self):
        process = RateProcess(nominal_bps=1e6, min_bps=2e5, max_bps=4e6, duration=120.0, seed=3)
        for _, rate in process.samples():
            assert 2e5 <= rate <= 4e6

    def test_rate_at_is_piecewise_constant_and_clamped(self):
        process = RateProcess(nominal_bps=1e6, min_bps=1e5, max_bps=4e6, step_interval=1.0, duration=10.0)
        assert process.rate_at(-5.0) == process.rate_at(0.0)
        assert process.rate_at(0.2) == process.rate_at(0.8)
        assert process.rate_at(1e9) == process.samples()[-1][1]

    def test_deterministic_given_seed(self):
        first = RateProcess(nominal_bps=1e6, min_bps=1e5, max_bps=4e6, seed=9, duration=50.0)
        second = RateProcess(nominal_bps=1e6, min_bps=1e5, max_bps=4e6, seed=9, duration=50.0)
        assert first.samples() == second.samples()

    def test_constant_process(self):
        process = constant_rate_process(5e5, duration=30.0)
        assert process.mean_rate() == pytest.approx(5e5)
        assert process.min_rate() == pytest.approx(5e5)
        assert len(process) > 0

    def test_constant_process_is_single_segment(self):
        # Zero volatility never moves the walk, so one segment is exact —
        # a 600 s trace must not materialize ~1,200 identical samples.
        process = constant_rate_process(5e5, duration=600.0)
        assert len(process) == 1
        assert process.rate_at(0.0) == pytest.approx(5e5)
        assert process.rate_at(599.9) == pytest.approx(5e5)

    def test_constant_process_passes_through_step_and_seed(self):
        process = constant_rate_process(5e5, duration=30.0, step_interval=2.0, seed=9)
        assert process.step_interval == 2.0
        assert process.mean_rate() == pytest.approx(5e5)

    def test_mean_and_min_are_cached_at_construction(self):
        process = RateProcess(nominal_bps=1e6, min_bps=1e5, max_bps=4e6, seed=4, duration=30.0)
        expected_mean = sum(r for _, r in process.samples()) / len(process)
        expected_min = min(r for _, r in process.samples())
        assert process.mean_rate() == pytest.approx(expected_mean)
        assert process.min_rate() == pytest.approx(expected_min)
        # Cached: mutating the underlying trace does not change the answer.
        process._rates[0] = 1.0
        assert process.mean_rate() == pytest.approx(expected_mean)
        assert process.min_rate() == pytest.approx(expected_min)


class TestCellularLink:
    def make_link(self, **overrides):
        defaults = dict(
            rate_process=constant_rate_process(1_200_000.0, duration=300.0),
            buffer_bits=1_200_000.0,
            loss_rate=0.0,
            propagation_delay=0.0,
        )
        defaults.update(overrides)
        return CellularLink(**defaults)

    def test_validation(self):
        process = constant_rate_process(1e6)
        with pytest.raises(ConfigurationError):
            CellularLink(process, buffer_bits=0)
        with pytest.raises(ConfigurationError):
            CellularLink(process, buffer_bits=1, loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            CellularLink(process, buffer_bits=1, max_attempts=0)

    def test_serves_packets_at_link_rate(self):
        network = Network(seed=0)
        link = self.make_link()
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(3):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert [p.delivered_at for p in sink.packets] == pytest.approx([0.01, 0.02, 0.03])

    def test_deep_buffer_builds_queueing_delay(self):
        network = Network(seed=0)
        link = self.make_link(buffer_bits=2_400_000.0)
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(100):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        assert link.occupancy_bits > 0
        assert link.queueing_delay_estimate() > 0.5
        network.run()
        assert sink.packets[-1].delivered_at == pytest.approx(1.0, rel=0.05)

    def test_tail_drop_when_buffer_full(self):
        network = Network(seed=0)
        link = self.make_link(buffer_bits=24_000.0)
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(10):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        assert link.drop_count > 0

    def test_loss_is_hidden_behind_retransmission(self):
        network = Network(seed=1)
        link = self.make_link(loss_rate=0.3, retransmit_delay=0.05)
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(200):
            network.sim.schedule(seq * 0.02, link.receive, Packet(seq=seq, flow="f", size_bits=12_000, sent_at=seq * 0.02))
        network.run()
        # Nothing is lost end-to-end...
        assert sink.count() == 200
        # ...but the loss shows up as link-layer retransmissions (delay).
        assert link.link_layer_retransmissions > 20

    def test_gives_up_after_max_attempts(self):
        network = Network(seed=1)
        link = self.make_link(loss_rate=0.9, max_attempts=2)
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(50):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert link.abandoned_packets > 0
        assert sink.count() + link.abandoned_packets + link.drop_count == 50


class TestBufferbloatMechanism:
    def test_tcp_inflates_rtt_on_deep_buffer(self):
        """The Figure-1 mechanism in miniature: RTT grows with the queue."""
        network = Network(seed=2)
        process = constant_rate_process(1_000_000.0, duration=200.0)
        link = CellularLink(
            rate_process=process,
            buffer_bits=8.0 * 1_000_000.0,
            loss_rate=0.02,
            propagation_delay=0.03,
        )
        receiver = Receiver(name="rx", accept_flows={"tcp"})
        sender = NewRenoSender(receiver, flow="tcp", initial_ssthresh=1e9)
        sender.connect(link)
        link.connect(receiver)
        network.add(sender)
        network.run(until=60.0)
        rtts = [sample.rtt for sample in sender.rtt_samples]
        assert min(rtts) < 0.2
        assert max(rtts) > 10 * min(rtts)


class TestTraceDrivenLink:
    def test_service_rate_follows_the_trace(self):
        from repro.cellular import TraceDrivenLink
        from repro.corpus import LinkTrace
        from repro.elements import Buffer

        # 1 Mbps for 6 s, then 4 Mbps: draining the same backlog speeds up 4x.
        # 2000 x 12 kbit = 24 Mbit of backlog keeps the link busy past 10 s.
        trace = LinkTrace(times=[0.0, 6.0], rates=[1e6, 4e6], duration=60.0)
        network = Network(seed=0)
        buffer = Buffer(capacity_bits=30e6, name="buf")
        link = TraceDrivenLink(trace, name="link")
        sink = Collector(name="sink")
        buffer.connect(link)
        link.connect(sink)
        network.add(buffer)
        network.start()
        for seq in range(2000):
            buffer.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run(until=12.0)
        slow = sink.throughput_bps(0.0, 6.0)
        fast = sink.throughput_bps(6.0, 10.0)
        assert slow == pytest.approx(1e6, rel=0.05)
        assert fast == pytest.approx(4e6, rel=0.05)


class TestSegmentIterators:
    """`segments_from` on both rate-process flavors: the iterator the link
    integrates service across."""

    def test_link_trace_segments_cover_and_clamp(self):
        from repro.corpus import LinkTrace

        trace = LinkTrace(times=[0.0, 1.0, 2.0], rates=[8e6, 1e5, 4e6], duration=3.0)
        assert list(trace.segments_from(0.5)) == [
            (8e6, 1.0),
            (1e5, 2.0),
            (4e6, float("inf")),
        ]
        # Starting past the last sample yields only the unbounded tail.
        assert list(trace.segments_from(9.0)) == [(4e6, float("inf"))]
        # The first yielded rate always equals rate_at(start).
        for start in (0.0, 0.9999, 1.0, 1.5, 100.0):
            rate, _ = next(iter(trace.segments_from(start)))
            assert rate == trace.rate_at(start)

    def test_rate_process_segments_match_rate_at(self):
        process = RateProcess(
            nominal_bps=1e6, min_bps=1e5, max_bps=1e7, duration=5.0, seed=4
        )
        segments = list(process.segments_from(0.0))
        assert segments[-1][1] == float("inf")
        assert segments[0][0] == process.rate_at(0.0)
        # Constant processes collapse to one unbounded segment.
        constant = constant_rate_process(5e6)
        assert list(constant.segments_from(0.0)) == [(5e6, float("inf"))]


class TestTraceDrivenLinkSatellites:
    """Regressions for the trace-link hot-path fixes: segment-integrated
    service, the deep-fade rate floor, and the mean-rate nominal."""

    def test_packet_straddling_sharp_rate_drop_pays_for_it(self):
        from repro.cellular import TraceDrivenLink
        from repro.corpus import LinkTrace

        # 1 Mbps for 10 ms, then 10 kbps.  A 12 kbit packet starting at t=0
        # drains 10 kbit in the fast segment and the remaining 2 kbit at
        # 10 kbps: delivery at 0.01 + 2000/1e4 = 0.21 s.  The old one-sample
        # service time would have finished the whole packet at the stale
        # 1 Mbps (0.012 s), skipping the drop entirely.
        trace = LinkTrace(times=[0.0, 0.01], rates=[1e6, 1e4], duration=10.0)
        network = Network(seed=0)
        link = TraceDrivenLink(trace, name="link")
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        link.receive(Packet(seq=0, flow="f", size_bits=12_000, sent_at=0.0))
        network.run(until=5.0)
        assert [p.delivered_at for p in sink.packets] == pytest.approx([0.21])

    def test_constant_trace_service_is_bit_identical_to_single_rate(self):
        from repro.cellular import TraceDrivenLink

        process = constant_rate_process(1_200_000.0, duration=300.0)
        network = Network(seed=0)
        link = TraceDrivenLink(process, name="link")
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(3):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run()
        assert [p.delivered_at for p in sink.packets] == [
            12_000 / 1_200_000.0 * n for n in (1, 2, 3)
        ]

    def test_deep_fade_loss_burst_trace_is_floored(self):
        from repro.cellular import TraceDrivenLink
        from repro.cellular.link import MIN_SERVICE_RATE_BPS
        from repro.corpus.generators import CorrelatedLossBurstLink

        # Good for 0.5 s at 4 Mbps, then a micro-bps fade forever: without
        # the rate floor the first fade packet would serialize for ~3e9 s,
        # silently stalling the link.  With the floor each fade packet takes
        # size / MIN_SERVICE_RATE_BPS = 12 s.
        trace = CorrelatedLossBurstLink(
            bad_rate_fraction=1e-9,
            p_good_to_bad=1.0,
            p_bad_to_good=0.0,
            step_interval=0.5,
            duration=2.0,
        ).build(seed=0)
        assert trace.min_rate() < MIN_SERVICE_RATE_BPS  # hazard is real
        network = Network(seed=0)
        link = TraceDrivenLink(trace, name="link")
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(300):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        network.run(until=40.0)
        fade_deliveries = [p for p in sink.packets if p.delivered_at > 0.5]
        assert len(fade_deliveries) >= 2

    def test_cellular_link_floors_fade_divisions(self):
        from repro.cellular.link import MIN_SERVICE_RATE_BPS
        from repro.corpus.generators import CorrelatedLossBurstLink

        trace = CorrelatedLossBurstLink(
            bad_rate_fraction=1e-9,
            p_good_to_bad=1.0,
            p_bad_to_good=0.0,
            step_interval=0.5,
            duration=2.0,
        ).build(seed=0)
        network = Network(seed=0)
        link = CellularLink(trace, buffer_bits=4e6, propagation_delay=0.0)
        sink = Collector(name="sink")
        link.connect(sink)
        network.add(link)
        network.start()
        for seq in range(300):
            link.receive(Packet(seq=seq, flow="f", size_bits=12_000, sent_at=0.0))
        estimates = []
        network.sim.schedule(
            0.75, lambda: estimates.append(link.queueing_delay_estimate())
        )
        network.run(until=40.0)
        # The estimate during the fade is large but finite: occupancy over
        # the floored rate, not occupancy over 0.004 bps.
        assert len(estimates) == 1
        assert 0.0 < estimates[0] <= 4e6 / MIN_SERVICE_RATE_BPS
        # Fade-segment service attempts complete at the floored rate too.
        fade_deliveries = [p for p in sink.packets if p.delivered_at > 0.5]
        assert len(fade_deliveries) >= 2

    def test_nominal_rate_reports_trace_mean_not_first_sample(self):
        from repro.cellular import TraceDrivenLink
        from repro.corpus import LinkTrace

        # A trace that *starts* in an outage: the first sample would
        # advertise a misleading ~0 nominal rate.
        trace = LinkTrace(times=[0.0, 1.0], rates=[1e4, 4e6], duration=2.0)
        link = TraceDrivenLink(trace, name="link")
        assert link.rate_bps == trace.mean_rate()
        assert link.rate_bps != trace.rate_at(0.0)
        # Constant traces are unchanged: mean == first sample.
        process = constant_rate_process(5e6)
        assert TraceDrivenLink(process, name="c").rate_bps == 5e6
