"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulator
from repro.sim.events import Event


class TestScheduling:
    def test_schedule_and_run_single_event(self, sim):
        fired = []
        sim.schedule(1.5, fired.append, "a")
        assert sim.run() == 1
        assert fired == ["a"]
        assert sim.now == pytest.approx(1.5)

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2.0, fired.append, "x")
        sim.run()
        assert fired == ["x"]
        assert sim.now == pytest.approx(2.0)

    def test_events_fire_in_time_order(self, sim):
        order = []
        sim.schedule(3.0, order.append, 3)
        sim.schedule(1.0, order.append, 1)
        sim.schedule(2.0, order.append, 2)
        sim.run()
        assert order == [1, 2, 3]

    def test_simultaneous_events_fire_in_insertion_order(self, sim):
        order = []
        for index in range(5):
            sim.schedule(1.0, order.append, index)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties_before_insertion_order(self, sim):
        order = []
        sim.schedule(1.0, order.append, "late", priority=5)
        sim.schedule(1.0, order.append, "early", priority=-5)
        sim.run()
        assert order == ["early", "late"]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_non_finite_time_raises(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_at(float("inf"), lambda: None)

    def test_kwargs_are_passed_to_callback(self, sim):
        seen = {}
        sim.schedule(0.5, lambda **kw: seen.update(kw), value=42)
        sim.run()
        assert seen == {"value": 42}


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "no")
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        assert sim.run() == 0

    def test_pending_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        sim.cancel(drop)
        assert sim.pending == 1
        assert keep.alive


class TestPendingCounter:
    """`Simulator.pending` is a live counter, not an O(n) heap rescan."""

    def test_tracks_schedule_fire_and_cancel(self, sim):
        events = [sim.schedule(float(index + 1), lambda: None) for index in range(5)]
        assert sim.pending == 5
        events[3].cancel()  # direct Event.cancel, not via the simulator
        sim.cancel(events[4])
        assert sim.pending == 3
        sim.step()
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counts_once(self, sim):
        event = sim.schedule(1.0, lambda: None)
        other = sim.schedule(2.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.cancel(event)
        assert sim.pending == 1
        assert other.alive

    def test_cancel_after_fire_is_a_noop(self, sim):
        event = sim.schedule(1.0, lambda: None)
        pending = sim.schedule(2.0, lambda: None)
        sim.step()
        event.cancel()  # the rto-timer pattern: cancelling an expired timer
        assert sim.pending == 1
        assert pending.alive

    def test_cancel_of_discarded_event_is_a_noop(self, sim):
        first = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        first.cancel()
        assert sim.peek_time() == pytest.approx(2.0)  # discards the dead head
        first.cancel()
        assert sim.pending == 1

    def test_events_scheduled_during_callbacks_are_counted(self, sim):
        def reschedule():
            if sim.now < 5.0:
                sim.schedule(1.0, reschedule)

        sim.schedule(1.0, reschedule)
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0
        assert sim.events_processed == 5

    def test_matches_slow_rescan_under_churn(self, sim):
        events = []
        for index in range(50):
            events.append(sim.schedule(float(index % 7) + 0.5, lambda: None))
        for event in events[::3]:
            event.cancel()
        expected = sum(1 for event in sim._queue if event.alive)
        assert sim.pending == expected
        while sim.step():
            assert sim.pending == sum(1 for event in sim._queue if event.alive)


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == pytest.approx(2.0)
        sim.run()
        assert fired == [1, 5]

    def test_run_until_advances_clock_even_with_no_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == pytest.approx(10.0)

    def test_max_events_limits_work(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(float(index + 1), fired.append, index)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_max_events_stop_does_not_fast_forward_clock(self, sim):
        # Regression: run(until=..., max_events=...) used to jump the clock to
        # `until` even when the event cap stopped the loop with events still
        # pending at or before `until`; those events then appeared to fire in
        # the simulated past.
        fired = []
        for index in range(5):
            sim.schedule(float(index + 1), fired.append, index)
        sim.run(until=10.0, max_events=2)
        assert fired == [0, 1]
        assert sim.now == pytest.approx(2.0)
        # The remaining events are still schedulable-past-free and fire cleanly.
        sim.run(until=10.0)
        assert fired == [0, 1, 2, 3, 4]
        assert sim.now == pytest.approx(10.0)

    def test_max_events_exactly_draining_queue_reaches_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 0)
        sim.run(until=4.0, max_events=5)
        assert fired == [0]
        assert sim.now == pytest.approx(4.0)

    def test_step_returns_false_on_empty_queue(self, sim):
        assert sim.step() is False

    def test_events_processed_counter(self, sim):
        for index in range(4):
            sim.schedule(float(index + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_nested_scheduling_from_callback(self, sim):
        fired = []

        def outer():
            fired.append("outer")
            sim.schedule(1.0, lambda: fired.append("inner"))

        sim.schedule(1.0, outer)
        sim.run()
        assert fired == ["outer", "inner"]
        assert sim.now == pytest.approx(2.0)

    def test_run_is_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()


class TestAdvanceTo:
    def test_advance_to_moves_clock(self, sim):
        sim.advance_to(4.0)
        assert sim.now == pytest.approx(4.0)

    def test_advance_to_backwards_raises(self, sim):
        sim.advance_to(4.0)
        with pytest.raises(SchedulingError):
            sim.advance_to(3.0)

    def test_advance_to_refuses_to_skip_events(self, sim):
        sim.schedule(1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_to(2.0)


class TestEventObject:
    def test_sort_key_ordering(self):
        early = Event(1.0, 0, 0, lambda: None)
        late = Event(2.0, 0, 1, lambda: None)
        assert early < late

    def test_fire_invokes_callback_with_args(self):
        calls = []
        event = Event(0.0, 0, 0, lambda a, b: calls.append((a, b)), args=(1, 2))
        event.fire()
        assert calls == [(1, 2)]


class TestPropertyBased:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
    def test_events_always_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fire_times = []
        for delay in delays:
            sim.schedule(delay, lambda: fire_times.append(sim.now))
        sim.run()
        assert fire_times == sorted(fire_times)
        assert len(fire_times) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=1e3), min_size=1, max_size=30),
        until=st.floats(min_value=0.0, max_value=1e3),
    )
    def test_run_until_never_fires_later_events(self, delays, until):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run(until=until)
        assert all(delay <= until for delay in fired)
