"""Integration tests for the experiment runners (shortened durations)."""

from __future__ import annotations

import pytest

from repro.experiments import (
    run_convergence_scenario,
    run_drain_scenario,
    run_figure1,
    run_figure3,
    run_inference_ablation,
    run_loss_comparison,
)
from repro.experiments.ablation import AblationConfig
from repro.metrics.summary import format_table


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1(duration=90.0)

    def test_rtt_starts_near_base_and_inflates(self, result):
        assert result.rtt.min() < 5.0 * result.base_rtt
        assert result.inflation_factor > 10.0
        assert result.max_rtt > 1.0

    def test_loss_is_hidden(self, result):
        assert result.link_layer_retransmissions > 0

    def test_buffer_actually_fills(self, result):
        assert result.peak_buffer_bits > 0.5 * 10.0 * 4_000_000.0

    def test_rows_render(self, result):
        rows = result.rows(window=30.0)
        assert rows
        text = format_table(rows, title="Figure 1")
        assert "mean_rtt (s)" in text


class TestFigure3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure3(
            alphas=(0.9, 1.0, 5.0),
            duration=90.0,
            switch_interval=30.0,
        )

    def test_one_result_per_alpha(self, result):
        assert [r.alpha for r in result.per_alpha] == [0.9, 1.0, 5.0]

    def test_sequence_series_are_monotone(self, result):
        for per_alpha in result.per_alpha:
            values = list(per_alpha.sequence_series.values)
            assert values == sorted(values)

    def test_only_aggressive_sender_overflows(self, result):
        by_alpha = {r.alpha: r for r in result.per_alpha}
        assert by_alpha[0.9].buffer_drops > by_alpha[5.0].buffer_drops

    def test_deference_orders_extreme_alphas(self, result):
        by_alpha = {r.alpha: r for r in result.per_alpha}
        assert by_alpha[0.9].packets_sent > by_alpha[5.0].packets_sent

    def test_claims_and_rows(self, result):
        claims = result.check_claims()
        assert claims["starts_slowly"]
        assert claims["only_alpha_below_one_overflows"]
        rows = result.rows()
        assert len(rows) == 3
        assert "rate_cross_off (bps)" in rows[0].values
        assert result.series()


class TestSimpleScenarios:
    def test_convergence_scenario(self):
        result = run_convergence_scenario(duration=60.0)
        assert result.converged
        assert result.posterior_true_rate_probability > 0.5
        assert result.early_rate_bps <= result.late_rate_bps + 1e-9
        assert result.rows()

    def test_drain_scenario(self):
        result = run_drain_scenario(duration=40.0)
        assert result.penalized_sender_waits_longer
        assert result.first_send_penalized > result.drain_time * 0.5
        assert result.late_rate_penalized_bps > 0
        assert len(result.rows()) == 2


class TestLossComparison:
    @pytest.fixture(scope="class")
    def result(self):
        return run_loss_comparison(duration=90.0)

    def test_isender_beats_loss_blind_tcp(self, result):
        assert result.isender_goodput_bps > result.tcp_goodput_bps
        assert result.isender_advantage > 1.5

    def test_isender_achieves_reasonable_utilization(self, result):
        assert result.isender_utilization > 0.4

    def test_rows(self, result):
        rows = result.rows()
        assert {row.label for row in rows} == {"NewReno", "ISender"}


class TestAblation:
    def test_runs_all_configurations(self):
        configs = (
            AblationConfig(label="small", max_hypotheses=60, top_k=8),
            AblationConfig(label="exact", kernel="exact", kernel_scale=0.75),
        )
        result = run_inference_ablation(configs=configs, duration=30.0)
        assert len(result.outcomes) == 2
        for outcome in result.outcomes:
            assert outcome.wall_time > 0
            assert outcome.packets_sent > 0
            assert outcome.rollouts > 0
        assert len(result.rows()) == 2
