"""Scalar ↔ vectorized planner-rollout equivalence suite.

The batched rollout engine replays the scalar ``Hypothesis.rollout`` event
arithmetic bit for bit, so per-lane outcomes compare *exactly*; expected
utilities carry the documented ``1e-9`` relative tolerance (the batch
utility path uses ``np.exp`` where the scalar path uses ``math.exp``), and
the chosen action must be identical.

Covered regimes: randomized belief states (drops, gated cross traffic on
and off, busy links, queued backlogs), candidate delays beyond the rollout
horizon, fixed and derived horizons, both belief backends under both
rollout backends, custom utilities without a batch path, and the
end-to-end guarantee that a fully vectorized sender never materializes a
scalar ``Hypothesis`` on the decide path.
"""

from __future__ import annotations

import random

import pytest

from repro.core import (
    ActionGrid,
    AlphaWeightedUtility,
    ExpectedUtilityPlanner,
    LatencyPenaltyUtility,
    PolicyCache,
    ThroughputUtility,
)
from repro.errors import ConfigurationError, InferenceError
from repro.inference import (
    AckObservation,
    BeliefState,
    GaussianKernel,
    Hypothesis,
    figure3_prior,
    single_link_prior,
)
from repro.inference.vectorized import EnsembleState, batched_rollout, pack_hypotheses
from repro.inference.vectorized.rollout import pack_rows


def random_hypothesis(rng: random.Random) -> Hypothesis:
    """One fully random network configuration (may include a gated source)."""
    params = {
        "link_rate_bps": rng.uniform(6_000.0, 30_000.0),
        "buffer_capacity_bits": rng.choice([24_000.0, 36_000.0, 96_000.0]),
        "initial_fill_bits": rng.choice([0.0, 12_000.0, 24_000.0]),
        "loss_rate": rng.choice([0.0, 0.1, 0.3]),
        "cross_rate_pps": rng.choice([0.0, 0.4, 1.1, 2.0]),
        "mean_time_to_switch": rng.choice([None, 10.0, 30.0]),
        "cross_initially_on": rng.choice([True, False]),
    }
    return Hypothesis.from_params(
        {key: value for key, value in params.items() if value is not None}
    )


def random_belief(rng: random.Random) -> tuple[BeliefState, float]:
    """A randomized scalar belief with latent queue/drop/gate state, plus now."""
    count = rng.randint(1, 6)
    hypotheses = [random_hypothesis(rng) for _ in range(count)]
    weights = [rng.uniform(0.1, 1.0) for _ in range(count)]
    belief = BeliefState(hypotheses, weights)
    at = 0.0
    for seq in range(rng.randint(0, 10)):
        at += rng.uniform(0.05, 0.8)
        belief.record_send(seq, 12_000.0, at)
    now = at + rng.uniform(0.5, 3.0)
    belief.update(now)
    return belief, now


def assert_decisions_equivalent(scalar, vectorized, rel=1e-9):
    assert vectorized.action == scalar.action
    assert vectorized.horizon == scalar.horizon
    assert vectorized.hypotheses_evaluated == scalar.hypotheses_evaluated
    assert set(vectorized.expected_utilities) == set(scalar.expected_utilities)
    for delay, value in scalar.expected_utilities.items():
        assert vectorized.expected_utilities[delay] == pytest.approx(
            value, rel=rel, abs=rel
        )


class TestRolloutBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            ExpectedUtilityPlanner(ThroughputUtility(), rollout_backend="quantum")

    def test_default_is_scalar(self):
        assert ExpectedUtilityPlanner(ThroughputUtility()).rollout_backend == "scalar"


class TestBatchedRolloutExactness:
    """Per-lane outcomes match the scalar rollout bit for bit."""

    DELAYS = (0.0, 0.7, 2.5, 30.0)

    def assert_lane_outcomes_match(self, hypothesis, now, horizon=4.0):
        lanes = pack_hypotheses([hypothesis])
        batch = batched_rollout(
            lanes, self.DELAYS, horizon=horizon, packet_bits=12_000.0, now=now
        )
        for index, delay in enumerate(self.DELAYS):
            reference = hypothesis.rollout(
                action_delay=delay, horizon=horizon, packet_bits=12_000.0, now=now
            )
            lane = batch.lane_outcome(index)
            assert lane.own_deliveries == reference.own_deliveries
            assert lane.own_drops == reference.own_drops
            assert lane.cross_deliveries == reference.cross_deliveries
            assert lane.cross_drops == reference.cross_drops
            assert lane.final_queue_bits == reference.final_queue_bits
            assert lane.final_cross_backlog_bits == reference.final_cross_backlog_bits
            assert lane.hypothetical_delivered == reference.hypothetical_delivered
            assert lane.hypothetical_delivery_time == reference.hypothetical_delivery_time
            assert lane.action_delay == delay
            assert lane.decision_time == reference.decision_time

    def test_randomized_lane_outcomes(self):
        rng = random.Random(31)
        for _ in range(30):
            hypothesis = random_hypothesis(rng)
            at = 0.0
            for seq in range(rng.randint(0, 6)):
                at += rng.uniform(0.1, 0.9)
                hypothesis.record_send(seq, 12_000.0, at)
            self.assert_lane_outcomes_match(hypothesis, now=at + 1.0)

    def test_tail_drop_of_the_hypothetical(self):
        hypothesis = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 12_000.0}
        )
        # Fill the link and the single-packet buffer so the hypothetical drops.
        hypothesis.record_send(0, 12_000.0, 0.0)
        hypothesis.record_send(1, 12_000.0, 0.0)
        lanes = pack_hypotheses([hypothesis])
        batch = batched_rollout(lanes, (0.0,), horizon=0.5, packet_bits=12_000.0, now=0.0)
        lane = batch.lane_outcome(0)
        reference = hypothesis.rollout(
            action_delay=0.0, horizon=0.5, packet_bits=12_000.0, now=0.0
        )
        assert not lane.hypothetical_delivered
        assert lane.own_drops == reference.own_drops
        assert lane.own_drops  # the hypothetical really was dropped

    def test_delay_beyond_horizon_observes_late_sends(self):
        hypothesis = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0}
        )
        hypothesis.record_send(0, 12_000.0, 0.0)
        self.assert_lane_outcomes_match(hypothesis, now=0.0, horizon=1.5)

    def test_stay_silent_stops_at_the_horizon(self):
        """send_packet=False must not advance lanes past the horizon end."""
        hypothesis = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0}
        )
        for seq in range(8):
            hypothesis.record_send(seq, 12_000.0, 0.0)
        lanes = pack_hypotheses([hypothesis])
        batch = batched_rollout(
            lanes, (30.0,), horizon=2.0, packet_bits=12_000.0, now=0.0,
            send_packet=False,
        )
        reference = hypothesis.rollout(
            action_delay=30.0, horizon=2.0, packet_bits=12_000.0, now=0.0,
            send_packet=False,
        )
        lane = batch.lane_outcome(0)
        assert lane.own_deliveries == reference.own_deliveries
        assert lane.final_queue_bits == reference.final_queue_bits
        assert len(lane.own_deliveries) == 2  # only the horizon's worth

    def test_gated_cross_traffic_off_stays_off(self):
        hypothesis = Hypothesis.from_params(
            {
                "link_rate_bps": 12_000.0,
                "buffer_capacity_bits": 96_000.0,
                "cross_rate_pps": 1.0,
                "mean_time_to_switch": 10.0,
                "cross_initially_on": False,
            }
        )
        lanes = pack_hypotheses([hypothesis])
        batch = batched_rollout(lanes, (0.0,), horizon=8.0, packet_bits=12_000.0, now=0.0)
        assert batch.lane_outcome(0).cross_deliveries == []

    def test_lockstep_clock_required(self):
        early = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0}
        )
        late = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0},
            start_time=2.0,
        )
        with pytest.raises(InferenceError):
            pack_hypotheses([early, late])

    def test_rollout_cannot_run_backwards(self):
        hypothesis = Hypothesis.from_params(
            {"link_rate_bps": 12_000.0, "buffer_capacity_bits": 96_000.0},
            start_time=5.0,
        )
        lanes = pack_hypotheses([hypothesis])
        with pytest.raises(InferenceError):
            batched_rollout(lanes, (0.0,), horizon=1.0, packet_bits=12_000.0, now=1.0)


class TestDecisionEquivalence:
    """decide() agrees across rollout backends on randomized beliefs."""

    GRID = ActionGrid(multiples=(0.0, 0.5, 1.0, 3.0, 8.0, 40.0))

    def test_randomized_beliefs(self):
        rng = random.Random(47)
        for trial in range(25):
            belief, now = random_belief(rng)
            utility = rng.choice(
                [
                    AlphaWeightedUtility(alpha=rng.uniform(0.0, 3.0), discount_timescale=15.0),
                    LatencyPenaltyUtility(latency_penalty=0.05),
                    ThroughputUtility(),
                ]
            )
            horizon = rng.choice([None, 5.0])
            kwargs = dict(
                action_grid=self.GRID, top_k=len(belief), horizon=horizon
            )
            scalar = ExpectedUtilityPlanner(
                utility, rollout_backend="scalar", **kwargs
            ).decide(belief, now=now)
            vectorized = ExpectedUtilityPlanner(
                utility, rollout_backend="vectorized", **kwargs
            ).decide(belief, now=now)
            assert_decisions_equivalent(scalar, vectorized)

    def test_all_four_backend_combinations_agree(self):
        prior = figure3_prior(
            link_rate_points=3, cross_fraction_points=2, loss_points=2,
            buffer_points=2, fill_points=2,
        )
        decisions = {}
        for belief_backend in ("scalar", "vectorized"):
            for rollout_backend in ("scalar", "vectorized"):
                belief = BeliefState.from_prior(
                    prior, kernel=GaussianKernel(sigma=0.4), backend=belief_backend
                )
                for seq in range(5):
                    belief.record_send(seq, 12_000.0, 0.4 * seq)
                belief.update(
                    3.0, [AckObservation(seq=0, received_at=1.1, ack_at=1.1)]
                )
                planner = ExpectedUtilityPlanner(
                    AlphaWeightedUtility(alpha=1.0, discount_timescale=20.0),
                    top_k=12,
                    rollout_backend=rollout_backend,
                )
                decisions[(belief_backend, rollout_backend)] = planner.decide(
                    belief, now=3.0
                )
                assert planner.rollouts_performed == 12 * len(
                    ActionGrid.DEFAULT_MULTIPLES
                )
        reference = decisions[("scalar", "scalar")]
        for decision in decisions.values():
            assert_decisions_equivalent(reference, decision)

    def test_custom_utility_without_batch_path(self):
        class HypotheticalOnlyUtility:
            """Scalar-only utility: rewards the hypothetical's delivery."""

            def evaluate(self, outcome):
                if not outcome.hypothetical_delivered:
                    return 0.0
                return 1.0 / (1.0 + outcome.hypothetical_delivery_time)

        belief = BeliefState.from_prior(
            single_link_prior(link_rate_points=3, fill_points=2),
            kernel=GaussianKernel(sigma=0.3),
        )
        belief.record_send(0, 12_000.0, 0.0)
        belief.update(0.5)
        kwargs = dict(top_k=6, horizon=6.0)
        scalar = ExpectedUtilityPlanner(
            HypotheticalOnlyUtility(), rollout_backend="scalar", **kwargs
        ).decide(belief, now=0.5)
        vectorized = ExpectedUtilityPlanner(
            HypotheticalOnlyUtility(), rollout_backend="vectorized", **kwargs
        ).decide(belief, now=0.5)
        assert_decisions_equivalent(scalar, vectorized)


class TestSinglePassAggregation:
    """The one-walk aggregates reproduce the original three walks exactly."""

    def test_service_time_and_horizon_match_reference_formulas(self):
        belief, now = random_belief(random.Random(3))
        planner = ExpectedUtilityPlanner(ThroughputUtility(), top_k=len(belief))
        decision = planner.decide(belief, now=now)

        top = belief.top(planner.top_k)
        total = sum(weight for _, weight in top)
        rate = sum(
            (weight / total) * hyp.model.params.link_rate_bps for hyp, weight in top
        )
        drain = sum((weight / total) * hyp.model.drain_time() for hyp, weight in top)
        service_time = planner.packet_bits / rate
        assert decision.horizon == drain + planner.horizon_service_multiples * service_time


class TestNoMaterializationOnDecidePath:
    """belief=vectorized + rollout=vectorized never rebuilds a Hypothesis."""

    @pytest.fixture
    def forbid_materialize(self, monkeypatch):
        def boom(self, row):  # pragma: no cover - the assertion is the point
            raise AssertionError(
                "EnsembleState.materialize called on the vectorized decide path"
            )

        monkeypatch.setattr(EnsembleState, "materialize", boom)

    def make_belief(self):
        belief = BeliefState.from_prior(
            figure3_prior(
                link_rate_points=3, cross_fraction_points=2, loss_points=2,
                buffer_points=2, fill_points=1,
            ),
            kernel=GaussianKernel(sigma=0.4),
            backend="vectorized",
        )
        for seq in range(4):
            belief.record_send(seq, 12_000.0, 0.5 * seq)
        belief.update(2.5)
        return belief

    def test_decide_is_materialization_free(self, forbid_materialize):
        belief = self.make_belief()
        planner = ExpectedUtilityPlanner(
            AlphaWeightedUtility(), top_k=8, rollout_backend="vectorized"
        )
        decision = planner.decide(belief, now=2.5)
        assert decision.hypotheses_evaluated == 8
        assert decision.expected_utilities

    def test_policy_cache_decide_is_materialization_free(self, forbid_materialize):
        belief = self.make_belief()
        planner = ExpectedUtilityPlanner(
            AlphaWeightedUtility(), top_k=8, rollout_backend="vectorized"
        )
        cache = PolicyCache(planner)
        first = cache.decide(belief, now=2.5)
        second = cache.decide(belief, now=2.5)
        assert cache.hits == 1 and cache.misses == 1
        assert second.expected_utilities == first.expected_utilities

    def test_full_isender_run_is_materialization_free(self, forbid_materialize):
        from repro.experiments.ablation import AblationConfig, run_ablation_config

        outcome = run_ablation_config(
            AblationConfig(
                label="vectorized/vectorized",
                backend="vectorized",
                rollout_backend="vectorized",
            ),
            duration=8.0,
        )
        assert outcome.packets_sent > 0
        assert outcome.rollouts > 0

    def test_scalar_rollout_backend_still_materializes(self):
        # Sanity check on the spy: the scalar rollout path *does* materialize.
        belief = self.make_belief()
        calls = {"count": 0}
        original = EnsembleState.materialize

        def counting(self, row):
            calls["count"] += 1
            return original(self, row)

        EnsembleState.materialize = counting
        try:
            planner = ExpectedUtilityPlanner(
                AlphaWeightedUtility(), top_k=8, rollout_backend="scalar"
            )
            planner.decide(belief, now=2.5)
        finally:
            EnsembleState.materialize = original
        assert calls["count"] > 0


class TestVectorizedBeliefAccessors:
    """top_rows / decision_signature / map_link_rate_bps backend parity."""

    def build_pair(self):
        prior = figure3_prior(
            link_rate_points=3, cross_fraction_points=2, loss_points=2,
            buffer_points=2, fill_points=1,
        )
        pair = []
        for backend in ("scalar", "vectorized"):
            belief = BeliefState.from_prior(
                prior, kernel=GaussianKernel(sigma=0.4), backend=backend
            )
            belief.record_send(0, 12_000.0, 0.0)
            belief.update(1.0, [AckObservation(seq=0, received_at=1.0, ack_at=1.0)])
            pair.append(belief)
        return pair

    def test_top_rows_matches_top(self):
        _, vectorized = self.build_pair()
        rows, weights = vectorized.top_rows(5)
        top = vectorized.top(5)
        assert [w for _, w in top] == weights
        for (hypothesis, _), row in zip(top, rows.tolist()):
            assert hypothesis.params == vectorized.state.params_dicts[row]

    def test_decision_signature_matches_across_backends(self):
        scalar, vectorized = self.build_pair()
        assert scalar.decision_signature(6, 3_000.0) == vectorized.decision_signature(
            6, 3_000.0
        )

    def test_map_link_rate_matches_across_backends(self):
        scalar, vectorized = self.build_pair()
        assert scalar.map_link_rate_bps() == vectorized.map_link_rate_bps()

    def test_pack_rows_equals_pack_hypotheses(self):
        _, vectorized = self.build_pair()
        rows, _ = vectorized.top_rows(4)
        from_rows = pack_rows(vectorized.state, rows)
        from_objects = pack_hypotheses(
            [hypothesis for hypothesis, _ in vectorized.top(4)]
        )
        batch_a = batched_rollout(from_rows, (0.0, 1.0), 5.0, 12_000.0, now=1.0)
        batch_b = batched_rollout(from_objects, (0.0, 1.0), 5.0, 12_000.0, now=1.0)
        for lane in range(batch_a.lanes):
            a, b = batch_a.lane_outcome(lane), batch_b.lane_outcome(lane)
            assert a.own_deliveries == b.own_deliveries
            assert a.cross_deliveries == b.cross_deliveries
            assert a.final_queue_bits == b.final_queue_bits
