"""Cache-semantics suite: hits, misses, invalidation, corruption, races.

Covers the persistent :class:`~repro.runner.cache.ResultCache` (grid-point
reuse keyed on scenario/params/seed/config-fingerprint), the policy-table
disk cache in :mod:`repro.api.policy`, and the CLI surface — including the
failure modes: a corrupted cache file must read as a miss and heal, a
config-semantics change must invalidate without a params change, and
parallel runner processes racing on one cache directory must all produce
correct, bit-identical artifacts.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from pathlib import Path

import pytest

from repro.api.config import SenderConfig
from repro.api.policy import (
    load_or_precompute_policy_table,
    policy_table_cache_path,
)
from repro.inference import single_link_prior
from repro.runner import (
    AsyncRunner,
    ResultCache,
    ScenarioRegistry,
    SerialRunner,
    grid,
    run_specs,
)
from repro.runner.cli import main as cli_main

#: Cheap built-in grid the suite sweeps (sub-second per point).
SPECS = grid("single_link_tcp", base={"duration": 2.0}, loss_rate=(0.0, 0.05))


def _toy_metrics(seed: int = 0, scale: float = 1.0) -> dict[str, float]:
    return {"scaled": 2.0 * scale, "seed": float(seed)}


#: Module-global the invalidation test flips to simulate a semantics change
#: that scenario params cannot see (e.g. a new SenderConfig default).
_TOY_ALPHA = 1.0


def _toy_config(params) -> SenderConfig:
    return SenderConfig(alpha=_TOY_ALPHA, top_k=params.get("top_k", 16))


def _registry_with_toy() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    registry.register("toy", config_factory=_toy_config)(_toy_metrics)
    return registry


def _run_grid_with_cache(cache_dir: str):
    """Top-level so the racing-workers test can pickle it into a pool."""
    return run_specs(SPECS, cache_dir=cache_dir).to_json()


def _poisoned_scenario(seed: int = 0, idx: int = 0, out_dir: str = "") -> dict[str, float]:
    """Top-level so the async runner's pool can pickle it; point 0 fails."""
    if idx == 0:
        raise ValueError("poisoned point")
    Path(out_dir, f"ran_{idx}").write_text("x")
    return {"idx": float(idx)}


class TestPointKeys:
    def test_key_covers_spec_identity_and_config_fingerprint(self, tmp_path):
        global _TOY_ALPHA
        registry = _registry_with_toy()
        cache = ResultCache(tmp_path)
        specs = grid("toy", seeds=(0, 1), scale=(1.0, 2.0))
        keys = {cache.point_key(spec, registry=registry) for spec in specs}
        assert len(keys) == 4  # every (params, seed) combination is distinct

        base = cache.point_key(specs[0], registry=registry)
        assert cache.point_key(specs[0], registry=registry) == base  # stable
        _TOY_ALPHA = 2.0
        try:
            assert cache.point_key(specs[0], registry=registry) != base
        finally:
            _TOY_ALPHA = 1.0

    def test_key_covers_registration_defaults(self, tmp_path):
        """Same scenario name, different registered defaults → distinct keys."""
        cache = ResultCache(tmp_path)
        slow = ScenarioRegistry()
        slow.register("toy", scale=2.0)(_toy_metrics)
        fast = ScenarioRegistry()
        fast.register("toy", scale=5.0)(_toy_metrics)
        spec = grid("toy")[0]
        assert cache.point_key(spec, registry=slow) != cache.point_key(
            spec, registry=fast
        )

    def test_explicit_default_spelling_is_a_distinct_point(self, tmp_path):
        """Spelling out a signature default is a *different* point.

        derived_seed hashes the raw spec params, so ``{}`` and
        ``{"scale": 1.0}`` execute with different seeds — the key must
        separate them or the two spellings would evict and mis-replay each
        other.
        """
        cache = ResultCache(tmp_path)
        registry = _registry_with_toy()
        implicit = grid("toy")[0]
        explicit = grid("toy", scale=(1.0,))[0]  # the signature default
        assert implicit.derived_seed != explicit.derived_seed
        assert cache.point_key(implicit, registry=registry) != cache.point_key(
            explicit, registry=registry
        )

    def test_changed_signature_default_invalidates(self, tmp_path):
        """A drifted signature default changes the key for an implicit spec."""
        import dataclasses

        cache = ResultCache(tmp_path)
        registry = _registry_with_toy()
        spec = grid("toy")[0]
        before = cache.point_key(spec, registry=registry)
        entry = registry.get("toy")
        registry._entries["toy"] = dataclasses.replace(
            entry, signature_defaults={**entry.signature_defaults, "scale": 7.0}
        )
        assert cache.point_key(spec, registry=registry) != before

    def test_builtin_scenarios_with_config_factories_key_on_fingerprint(self):
        from repro.runner import DEFAULT_REGISTRY

        entry = DEFAULT_REGISTRY.get("figure3_alpha")
        scalar = entry.config_fingerprint({"alpha": 1.0})
        vectorized = entry.config_fingerprint(
            {"alpha": 1.0, "belief_backend": "vectorized"}
        )
        assert scalar and vectorized and scalar != vectorized
        # Scenarios without a sender configuration key on params alone.
        assert DEFAULT_REGISTRY.get("single_link_tcp").config_fingerprint({}) == ""


class TestHitMissInvalidation:
    def test_cold_miss_warm_hit_bit_identical(self, tmp_path):
        cold = SerialRunner(cache=ResultCache(tmp_path)).run(SPECS)
        assert (cold.cache_hits, cold.cache_misses) == (0, len(SPECS))

        warm_cache = ResultCache(tmp_path)
        warm = SerialRunner(cache=warm_cache).run(SPECS)
        assert (warm.cache_hits, warm.cache_misses) == (len(SPECS), 0)
        assert warm_cache.invalid == 0
        assert warm.to_json() == cold.to_json()
        # Even the timing view replays (original wall times are stored).
        assert warm.to_json(include_timing=True) == cold.to_json(include_timing=True)
        # Metric *insertion order* replays too: CSV columns and printed
        # tables must come back identical, not alphabetized by the cache.
        assert [list(r.metrics) for r in warm] == [list(r.metrics) for r in cold]
        cold_path = tmp_path / "cold.csv"
        warm_path = tmp_path / "warm.csv"
        cold.to_csv(cold_path)
        warm.to_csv(warm_path)
        assert warm_path.read_bytes() == cold_path.read_bytes()

    def test_partial_warm_run_executes_only_new_points(self, tmp_path):
        SerialRunner(cache=ResultCache(tmp_path)).run(SPECS)
        widened = grid(
            "single_link_tcp", base={"duration": 2.0}, loss_rate=(0.0, 0.05, 0.1)
        )
        store = SerialRunner(cache=ResultCache(tmp_path)).run(widened)
        assert (store.cache_hits, store.cache_misses) == (2, 1)

    def test_config_semantics_change_invalidates_without_param_change(self, tmp_path):
        global _TOY_ALPHA
        registry = _registry_with_toy()
        specs = grid("toy", scale=(1.0,))
        first = SerialRunner(registry=registry, cache=ResultCache(tmp_path)).run(specs)
        assert first.cache_misses == 1
        try:
            _TOY_ALPHA = 3.0  # the simulated code change
            second = SerialRunner(registry=registry, cache=ResultCache(tmp_path)).run(
                specs
            )
        finally:
            _TOY_ALPHA = 1.0
        assert (second.cache_hits, second.cache_misses) == (0, 1)

    def test_runs_without_cache_never_touch_disk(self, tmp_path):
        SerialRunner().run(SPECS[:1])
        assert list(tmp_path.iterdir()) == []


class TestCorruptionRecovery:
    def _cached_files(self, root: Path) -> list[Path]:
        return sorted((root / "results").rglob("*.json"))

    def test_corrupt_file_reads_as_miss_and_heals(self, tmp_path):
        cold = SerialRunner(cache=ResultCache(tmp_path)).run(SPECS)
        victim = self._cached_files(tmp_path)[0]
        victim.write_text("{ not json", encoding="utf-8")

        cache = ResultCache(tmp_path)
        healed = SerialRunner(cache=cache).run(SPECS)
        assert (healed.cache_hits, healed.cache_misses) == (1, 1)
        assert cache.invalid == 1
        assert healed.to_json() == cold.to_json()

        rewarmed = SerialRunner(cache=ResultCache(tmp_path)).run(SPECS)
        assert (rewarmed.cache_hits, rewarmed.cache_misses) == (2, 0)

    def test_schema_or_spec_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        SerialRunner(cache=cache).run(SPECS[:1])
        victim = self._cached_files(tmp_path)[0]

        payload = json.loads(victim.read_text())
        payload["schema"] = 999
        victim.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load_point(cache.point_key(SPECS[0]), SPECS[0]) is None

        payload["schema"] = 1
        payload["spec"] = "something else entirely"
        victim.write_text(json.dumps(payload), encoding="utf-8")
        assert cache.load_point(cache.point_key(SPECS[0]), SPECS[0]) is None


class TestRacingWorkers:
    def test_concurrent_processes_share_one_cache_dir(self, tmp_path):
        """Two whole runner processes race the same grid into one cache.

        Writes are atomic (temp file + rename), so both must finish with
        correct, identical artifacts regardless of interleaving, and the
        directory must be left fully warmed.
        """
        cache_dir = str(tmp_path)
        with multiprocessing.get_context().Pool(2) as pool:
            artifacts = pool.map(_run_grid_with_cache, [cache_dir, cache_dir])
        assert artifacts[0] == artifacts[1]

        warm = SerialRunner(cache=ResultCache(cache_dir)).run(SPECS)
        assert (warm.cache_hits, warm.cache_misses) == (len(SPECS), 0)
        assert warm.to_json() == artifacts[0]
        # No temp-file debris from the race.
        assert not list(Path(cache_dir).rglob("*.tmp.*"))


class TestAsyncRunnerCache:
    def test_async_backend_replays_and_populates(self, tmp_path):
        cold = AsyncRunner(workers=2, cache=ResultCache(tmp_path)).run(SPECS)
        assert cold.cache_misses == len(SPECS)
        warm = AsyncRunner(workers=2, cache=ResultCache(tmp_path)).run(SPECS)
        assert (warm.cache_hits, warm.cache_misses) == (len(SPECS), 0)
        assert warm.to_json() == cold.to_json()

    def test_async_matches_serial_without_cache(self):
        serial = SerialRunner().run(SPECS)
        from_async = AsyncRunner(workers=2).run(SPECS)
        assert from_async.to_json() == serial.to_json()

    def test_poisoned_point_propagates_and_cancels_queued_siblings(self, tmp_path):
        """Regression test for the async runner's failure path.

        The first failing point must surface its own exception (not a
        ``CancelledError``) and cancel the submissions queued behind the
        ``max_in_flight`` gate before they ever reach the worker pool.  The
        sibling points write sentinel files when they execute; at most the
        one waiter already woken when the failure lands may slip through.
        """
        registry = ScenarioRegistry()
        registry.register("poisoned")(_poisoned_scenario)
        specs = grid(
            "poisoned", base={"out_dir": str(tmp_path)}, idx=tuple(range(8))
        )
        runner = AsyncRunner(workers=2, max_in_flight=1, registry=registry)
        with pytest.raises(ValueError, match="poisoned point"):
            runner.run(specs)
        assert len(list(tmp_path.glob("ran_*"))) <= 1


class TestPolicyTableCache:
    PRIOR_KWARGS = dict(link_rate_points=2, fill_points=1)
    SWEEP_KWARGS = dict(pilot_duration=5.0, burst_levels=(0, 2))

    def _config(self, **overrides) -> SenderConfig:
        kwargs = dict(
            prior=single_link_prior(**self.PRIOR_KWARGS),
            policy="table",
            top_k=4,
            max_hypotheses=32,
        )
        kwargs.update(overrides)
        return SenderConfig(**kwargs)

    def test_first_computes_second_loads(self, tmp_path):
        config = self._config()
        first = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        second = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        assert first.loaded_from_cache is False
        assert second.loaded_from_cache is True
        assert second.to_payload() == first.to_payload()

    def test_config_and_sweep_changes_miss(self, tmp_path):
        config = self._config()
        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.SWEEP_KWARGS)
        other_config = load_or_precompute_policy_table(
            self._config(alpha=2.0), cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        assert other_config.loaded_from_cache is False
        other_sweep = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, pilot_duration=6.0, burst_levels=(0, 2)
        )
        assert other_sweep.loaded_from_cache is False

    def test_omitted_and_explicit_sweep_defaults_share_one_artifact(self, tmp_path):
        config = self._config()
        implicit = policy_table_cache_path(tmp_path, config, {})
        explicit = policy_table_cache_path(tmp_path, config, {"pilot_duration": 30.0})
        assert implicit == explicit  # 30.0 is the precompute default
        changed = policy_table_cache_path(tmp_path, config, {"pilot_duration": 31.0})
        assert changed != implicit

    def test_ablation_outcome_is_independent_of_cache_state(
        self, tmp_path, monkeypatch
    ):
        """Cold (precomputing) and warm (loading) runs report one outcome.

        A freshly precomputed table carries pilot-run counter traffic that
        a cache-loaded one lacks; run_ablation_point must neutralize that
        so a point's metrics are a pure function of its config and seed.
        """
        from repro.experiments.ablation import run_ablation_point

        kwargs = dict(duration=6.0, seed=3)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cold = run_ablation_point("t", SenderConfig(policy="table"), **kwargs)
        warm = run_ablation_point("t", SenderConfig(policy="table"), **kwargs)
        monkeypatch.delenv("REPRO_CACHE_DIR")
        uncached = run_ablation_point("t", SenderConfig(policy="table"), **kwargs)
        for outcome in (warm, uncached):
            assert (outcome.policy_hits, outcome.policy_misses) == (
                cold.policy_hits,
                cold.policy_misses,
            )
            assert outcome.packets_sent == cold.packets_sent
            assert outcome.goodput_bps == cold.goodput_bps

    def test_programmatic_cache_dir_shares_tables_too(self, tmp_path, monkeypatch):
        """run_specs(cache_dir=...) shares policy tables like the CLI does.

        The runner exports $REPRO_CACHE_DIR for the duration of a cached
        run, so a table-mode seed fan launched programmatically still
        precomputes one table, and the caller's environment is untouched
        afterwards.
        """
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        specs = grid(
            "inference_ablation_point",
            seeds=(0, 1),
            base={"duration": 4.0, "policy": "table"},
        )
        store = run_specs(specs, cache_dir=tmp_path)
        assert len(store) == 2
        assert len(list((tmp_path / "policy").glob("*.json"))) == 1
        assert "REPRO_CACHE_DIR" not in os.environ

    def test_corrupt_table_recomputed_in_place(self, tmp_path):
        config = self._config()
        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.SWEEP_KWARGS)
        path = policy_table_cache_path(
            tmp_path, config, dict(self.SWEEP_KWARGS)
        )
        assert path.exists()
        path.write_text("garbage", encoding="utf-8")
        healed = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        assert healed.loaded_from_cache is False
        reloaded = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        assert reloaded.loaded_from_cache is True

    def test_fingerprint_mismatch_inside_file_recomputed(self, tmp_path):
        config = self._config()
        load_or_precompute_policy_table(config, cache_dir=tmp_path, **self.SWEEP_KWARGS)
        path = policy_table_cache_path(tmp_path, config, dict(self.SWEEP_KWARGS))
        payload = json.loads(path.read_text())
        payload["fingerprint"] = "0123456789abcdef"
        path.write_text(json.dumps(payload), encoding="utf-8")
        table = load_or_precompute_policy_table(
            config, cache_dir=tmp_path, **self.SWEEP_KWARGS
        )
        assert table.loaded_from_cache is False

    def test_build_sender_shares_tables_via_cache_env(self, tmp_path, monkeypatch):
        from repro.api.sender import build_components

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        config = self._config()
        first = build_components(config)
        second = build_components(config)
        assert first.policy.loaded_from_cache is False
        assert second.policy.loaded_from_cache is True
        assert (tmp_path / "policy").exists()


class TestCliCacheFlags:
    def test_cache_dir_flag_reports_hits_and_restores_env(
        self, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/somewhere/else")
        argv = [
            "run",
            "single_link_tcp",
            "--set",
            "duration=2",
            "--sweep",
            "loss_rate=0.0,0.05",
            "--cache-dir",
            str(tmp_path),
        ]
        assert cli_main(argv) == 0
        assert "cache: 0 hit(s), 2 miss(es)" in capsys.readouterr().out
        # The export lives only while workers run; the caller's value wins
        # afterwards, so repeated in-process invocations don't leak.
        assert os.environ["REPRO_CACHE_DIR"] == "/somewhere/else"
        assert cli_main(argv) == 0
        assert "cache: 2 hit(s), 0 miss(es)" in capsys.readouterr().out

    def test_no_cache_flag_forces_execution(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = [
            "run",
            "single_link_tcp",
            "--set",
            "duration=2",
            "--no-cache",
        ]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        # Genuinely cache-free: no result files, and no policy-table reuse
        # either (the env var is cleared during the run, restored after).
        assert not any(tmp_path.iterdir())
        assert os.environ["REPRO_CACHE_DIR"] == str(tmp_path)

    def test_no_cache_with_cache_dir_is_rejected(self, tmp_path, capsys):
        argv = [
            "run",
            "single_link_tcp",
            "--set",
            "duration=2",
            "--cache-dir",
            str(tmp_path),
            "--no-cache",
        ]
        assert cli_main(argv) == 2
        assert "contradictory" in capsys.readouterr().err

    def test_env_var_enables_cache_without_flag(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        argv = ["run", "single_link_tcp", "--set", "duration=2"]
        assert cli_main(argv) == 0
        assert "cache: 0 hit(s), 1 miss(es)" in capsys.readouterr().out
        assert (tmp_path / "results").exists()
