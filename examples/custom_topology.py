#!/usr/bin/env python3
"""Building a custom network from the paper's element language.

The point of the paper's architecture is that the network model is a
*composable* first-class object: new subnetwork behaviours are expressed by
combining idealized elements rather than by changing the transport protocol.
This example hand-builds a path that exercises most of the element
vocabulary — a jittery cross-traffic source, an intermittently connected
segment, stochastic loss — runs a fixed-rate probe and a TCP flow through
it, and prints what each flow experienced.

Run with:  python examples/custom_topology.py
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.baselines import NewRenoSender
from repro.baselines.rate_sender import FixedRateSender
from repro.elements import (
    Buffer,
    Collector,
    Delay,
    Diverter,
    Intermittent,
    Jitter,
    Loss,
    Pinger,
    Receiver,
    Series,
    Throughput,
)
from repro.metrics import format_table
from repro.metrics.summary import ExperimentRow
from repro.sim.element import Network
from repro.topology import validate_network


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0, help="simulated seconds (default 120)")
    args = parser.parse_args(argv)
    duration = args.duration

    network = Network(seed=11)

    # A non-isochronous cross-traffic source: PINGER followed by JITTER (§3.1).
    cross_source = Pinger(rate_pps=4.0, packet_bits=12_000, flow="cross", name="cross-pinger")
    cross_shaper = Series(
        Jitter(delay=0.05, probability=0.5, name="cross-jitter"),
        Delay(delay=0.02, name="cross-delay"),
        name="cross-shaper",
    )

    # The shared bottleneck: buffer -> 1 Mbit/s link -> intermittent segment ->
    # stochastic loss, then a diverter that routes each flow to its own sink.
    bottleneck_buffer = Buffer(capacity_bits=480_000, name="bottleneck-buffer")
    bottleneck_link = Throughput(rate_bps=1_000_000, name="bottleneck-link")
    flaky_segment = Intermittent(mean_time_to_switch=20.0, name="flaky-segment")
    last_mile_loss = Loss(rate=0.02, name="last-mile-loss")

    tcp_receiver = Receiver(name="tcp-receiver", accept_flows={"tcp"})
    probe_sink = Collector(name="probe-sink")
    other_sink = Collector(name="other-sink")
    split_probe = Diverter("probe", probe_sink, other_sink, name="probe-diverter")
    split_tcp = Diverter("tcp", tcp_receiver, split_probe, name="tcp-diverter")

    cross_source >> cross_shaper
    cross_shaper >> bottleneck_buffer
    bottleneck_buffer >> bottleneck_link
    bottleneck_link >> flaky_segment
    flaky_segment >> last_mile_loss
    last_mile_loss >> split_tcp

    # Two measured senders share the path with the cross traffic.
    tcp_sender = NewRenoSender(tcp_receiver, flow="tcp", name="tcp-sender")
    tcp_sender.connect(bottleneck_buffer)
    probe = FixedRateSender(rate_pps=5.0, flow="probe", name="probe-sender")
    probe.connect(bottleneck_buffer)

    network.add(cross_source, tcp_sender, probe)
    problems = validate_network(network)
    if problems:
        raise SystemExit(f"mis-wired topology: {problems}")

    network.run(until=duration)

    rows = [
        ExperimentRow(
            label="tcp",
            values={
                "delivered": tcp_receiver.count,
                "goodput (bps)": tcp_receiver.throughput_bps(0.0, duration, flow="tcp"),
                "mean delay (s)": tcp_receiver.mean_delay() or 0.0,
                "timeouts": tcp_sender.timeouts,
            },
        ),
        ExperimentRow(
            label="probe",
            values={
                "delivered": probe_sink.count("probe"),
                "goodput (bps)": probe_sink.throughput_bps(0.0, duration, flow="probe"),
                "mean delay (s)": probe_sink.flows["probe"].mean_delay if "probe" in probe_sink.flows else 0.0,
                "sent": probe.packets_sent,
            },
        ),
        ExperimentRow(
            label="cross",
            values={
                "delivered": other_sink.count("cross"),
                "goodput (bps)": other_sink.throughput_bps(0.0, duration, flow="cross"),
                "mean delay (s)": other_sink.flows["cross"].mean_delay if "cross" in other_sink.flows else 0.0,
                "offered (bps)": cross_source.rate_bps,
            },
        ),
    ]
    print(format_table(rows, title=f"Custom topology: per-flow outcomes over {duration:.0f} s"))
    print()
    print(f"intermittent segment switched {len(flaky_segment.switch_times)} times")
    print(f"bottleneck buffer dropped {bottleneck_buffer.drop_count} packets")
    print(f"last-mile loss dropped {last_mile_loss.drop_count} packets")


if __name__ == "__main__":
    main()
