#!/usr/bin/env python3
"""Figure 3 reproduction: how much should the sender defer to cross traffic?

Runs the paper's main experiment — the Figure-2 network with intermittent
cross traffic and 20 % stochastic loss — once per value of α and prints the
sequence-number traces and the per-phase sending rates.  Pass ``--full`` to
use the paper's full 300 s / 100 s-switching setup (takes a minute or two);
the default is a shortened run.  The α points are independent simulations,
so ``--workers 4`` fans them out over the parallel scenario-runner backend
(results are identical to the serial run, just faster on multicore).

Run with:  python examples/alpha_sweep.py [--full] [--workers N]
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.experiments import run_figure3
from repro.metrics import format_table
from repro.runner import ParallelRunner, SerialRunner
from repro.viz import ascii_plot, write_series_csv


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true", help="use the paper's 300 s / 100 s setup")
    parser.add_argument("--duration", type=float, default=None, help="override the simulated duration (s)")
    parser.add_argument("--switch", type=float, default=None, help="override the cross-traffic half-period (s)")
    parser.add_argument(
        "--alphas",
        default="0.9,1.0,2.5,5.0",
        help="comma-separated α values to sweep (default: the paper's 0.9,1,2.5,5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run the α points on this many parallel workers (default 1 = serial)",
    )
    parser.add_argument("--csv", default=None, help="optional path to write the traces as CSV")
    args = parser.parse_args(argv)

    if args.full:
        duration, switch = 300.0, 100.0
    else:
        duration, switch = 120.0, 40.0
    if args.duration is not None:
        duration = args.duration
    if args.switch is not None:
        switch = args.switch
    alphas = tuple(float(value) for value in args.alphas.split(",") if value)

    runner = ParallelRunner(workers=args.workers) if args.workers > 1 else SerialRunner()
    result = run_figure3(alphas=alphas, duration=duration, switch_interval=switch, runner=runner)

    print(format_table(result.rows(), title=f"Figure 3 (duration={duration:.0f}s, switch={switch:.0f}s)"))
    print()
    print(
        ascii_plot(
            result.series(),
            title="Sequence number vs. time (one curve per alpha)",
            y_label="packets acked",
            height=18,
        )
    )
    print()
    print("Qualitative claims from the paper:")
    for claim, holds in result.check_claims().items():
        print(f"  {'PASS' if holds else 'FAIL'}  {claim}")

    if args.csv:
        path = write_series_csv(args.csv, result.series())
        print(f"\nwrote traces to {path}")


if __name__ == "__main__":
    main()
