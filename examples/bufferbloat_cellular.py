#!/usr/bin/env python3
"""Figure 1 reproduction: bufferbloat on a loss-hiding cellular link.

A NewReno bulk download runs over the synthetic LTE-like link (deep buffer,
time-varying rate, link-layer retransmission hiding stochastic loss).  The
RTT starts near the propagation delay and inflates by orders of magnitude as
the loss-blind sender fills the buffer — the paper's motivating observation.

Run with:  python examples/bufferbloat_cellular.py
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.experiments import run_figure1
from repro.metrics import format_table
from repro.viz import ascii_plot


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=200.0, help="simulated seconds (default 200)")
    args = parser.parse_args(argv)

    result = run_figure1(duration=args.duration)

    print(format_table(result.rows(window=25.0), title="Figure 1 — RTT during a TCP download (synthetic LTE)"))
    print()
    print(
        ascii_plot(
            {"rtt (s)": result.rtt},
            title="Round-trip time vs. time (log y-axis, compare paper Figure 1)",
            y_label="RTT",
            logy=True,
            height=16,
        )
    )
    print()
    print(f"base RTT               : {result.base_rtt * 1000:.0f} ms")
    print(f"median RTT             : {result.median_rtt:.2f} s")
    print(f"worst RTT              : {result.max_rtt:.2f} s")
    print(f"RTT inflation factor   : {result.inflation_factor:.0f}x")
    print(f"link-layer retransmits : {result.link_layer_retransmissions}")
    print(f"download goodput       : {result.throughput_bps / 1e6:.2f} Mbit/s")


if __name__ == "__main__":
    main()
