#!/usr/bin/env python3
"""Quickstart: a model-based sender discovering an unknown link.

This is the paper's simplest scenario (§4): one ISender connected to a
tail-drop buffer drained by a throughput-limited link whose speed the sender
does not know.  The sender starts tentatively, infers the link speed from
acknowledgement timings, and then sends at exactly the link speed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.core import AlphaWeightedUtility, ExpectedUtilityPlanner, ISender
from repro.inference import BeliefState, GaussianKernel, single_link_prior
from repro.metrics import format_table
from repro.metrics.summary import ExperimentRow
from repro.topology import single_link_network
from repro.viz import ascii_plot


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0, help="simulated seconds (default 120)")
    args = parser.parse_args(argv)
    duration = args.duration

    # 1. Build the "real" network: buffer -> 12 kbit/s link -> receiver.
    net = single_link_network(link_rate_bps=12_000.0, buffer_capacity_bits=96_000.0)

    # 2. Give the sender a prior over what the link might be.
    prior = single_link_prior(
        link_rate_low=8_000.0, link_rate_high=16_000.0, link_rate_points=5, fill_points=1
    )
    belief = BeliefState.from_prior(prior, kernel=GaussianKernel(sigma=0.25))

    # 3. The explicit utility it maximizes, and the planner that maximizes it.
    utility = AlphaWeightedUtility(alpha=0.0, discount_timescale=20.0)
    planner = ExpectedUtilityPlanner(utility, top_k=8)

    # 4. Wire the ISender into the network and run it (two minutes by default).
    sender = ISender(belief, planner, net.sender_receiver)
    sender.connect(net.entry)
    net.network.add(sender)
    net.network.run(until=duration)

    # 5. Report what happened.
    rows = [
        ExperimentRow(
            label="quickstart",
            values={
                "packets sent": sender.packets_sent,
                "packets acked": sender.packets_acked,
                "inferred link rate (bps)": belief.posterior_mean("link_rate_bps"),
                "late goodput (bps)": net.sender_receiver.throughput_bps(duration / 2.0, duration),
                "buffer drops": net.buffer.drop_count,
            },
        )
    ]
    print(format_table(rows, title="Quickstart: unknown 12 kbit/s link"))
    print()
    print(
        ascii_plot(
            {"acked packets": sender.sequence_series()},
            title="Cumulative acknowledged packets vs. time",
            y_label="packets",
            height=12,
        )
    )
    print()
    print("Posterior over the link rate:")
    for value, probability in sorted(belief.posterior_marginal("link_rate_bps").items()):
        bar = "#" * int(round(probability * 40))
        print(f"  {value:>8.0f} bps  {probability:6.3f}  {bar}")


if __name__ == "__main__":
    main()
