#!/usr/bin/env python3
"""Quickstart: a model-based sender discovering an unknown link.

This is the paper's simplest scenario (§4): one ISender connected to a
tail-drop buffer drained by a throughput-limited link whose speed the sender
does not know.  The sender starts tentatively, infers the link speed from
acknowledgement timings, and then sends at exactly the link speed.

The sender is described by one frozen :class:`repro.api.SenderConfig` —
prior, utility, kernel, engine selection — and built with
:func:`repro.api.build_sender`, the canonical construction path.  Try
``--backend vectorized`` to run the same sender on the NumPy inference
engine, or ``--policy cache`` to memoize steady-state decisions (§3.3).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.api import SenderConfig, build_sender
from repro.inference import single_link_prior
from repro.metrics import format_table
from repro.metrics.summary import ExperimentRow
from repro.topology import single_link_network
from repro.viz import ascii_plot


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=120.0, help="simulated seconds (default 120)")
    parser.add_argument("--backend", default="scalar", help="belief/rollout engines (scalar or vectorized)")
    parser.add_argument("--policy", default="none", help="decision policy: none or cache")
    args = parser.parse_args(argv)
    duration = args.duration

    # 1. Build the "real" network: buffer -> 12 kbit/s link -> receiver.
    net = single_link_network(link_rate_bps=12_000.0, buffer_capacity_bits=96_000.0)

    # 2. One frozen config fully describes the sender: a prior over what the
    #    link might be, the utility it maximizes (alpha=0: own throughput
    #    only), the likelihood kernel, and the engine/policy selection.
    config = SenderConfig(
        prior=single_link_prior(
            link_rate_low=8_000.0, link_rate_high=16_000.0, link_rate_points=5, fill_points=1
        ),
        alpha=0.0,
        discount_timescale=20.0,
        kernel="gaussian",
        kernel_scale=0.25,
        top_k=8,
        belief_backend=args.backend,
        rollout_backend=args.backend,
        policy=args.policy,
    )

    # 3. Wire the ISender into the network and run it (two minutes by default).
    sender = build_sender(config, net)
    net.network.run(until=duration)

    # 4. Report what happened.
    belief = sender.belief
    rows = [
        ExperimentRow(
            label="quickstart",
            values={
                "packets sent": sender.packets_sent,
                "packets acked": sender.packets_acked,
                "inferred link rate (bps)": belief.posterior_mean("link_rate_bps"),
                "late goodput (bps)": net.sender_receiver.throughput_bps(duration / 2.0, duration),
                "buffer drops": net.buffer.drop_count,
            },
        )
    ]
    print(format_table(rows, title="Quickstart: unknown 12 kbit/s link"))
    print()
    print(
        ascii_plot(
            {"acked packets": sender.sequence_series()},
            title="Cumulative acknowledged packets vs. time",
            y_label="packets",
            height=12,
        )
    )
    print()
    print("Posterior over the link rate:")
    for value, probability in sorted(belief.posterior_marginal("link_rate_bps").items()):
        bar = "#" * int(round(probability * 40))
        print(f"  {value:>8.0f} bps  {probability:6.3f}  {bar}")


if __name__ == "__main__":
    main()
