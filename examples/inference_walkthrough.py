#!/usr/bin/env python3
"""A step-by-step look inside the sender's belief state.

The script builds the Figure-2 network and an ISender with the paper's
prior, then runs the simulation in short slices, printing how the posterior
over the unknown parameters (link speed, cross-traffic rate, loss rate) and
the probability that the cross traffic is currently on evolve as
acknowledgements arrive.  This is the "sequential application of Bayes'
theorem" of §3.2 made visible.

Run with:  python examples/inference_walkthrough.py
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.api import SenderConfig, build_sender
from repro.inference import BeliefState, figure3_prior
from repro.topology import figure2_network


def describe(belief: BeliefState, time: float) -> None:
    gate_on = sum(
        weight for hypothesis, weight in zip(belief.hypotheses, belief.weights)
        if hypothesis.model.gate_on
    )
    print(
        f"t={time:6.1f}s  hypotheses={len(belief):4d}  "
        f"ESS={belief.effective_sample_size():7.1f}  "
        f"E[link rate]={belief.posterior_mean('link_rate_bps'):8.0f} bps  "
        f"E[loss]={belief.posterior_mean('loss_rate'):.2f}  "
        f"E[cross fraction]={belief.posterior_mean('cross_fraction'):.2f}  "
        f"P(cross on)={gate_on:.2f}"
    )


def main(argv: Sequence[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=180.0, help="simulated seconds (default 180)")
    parser.add_argument("--slice", type=float, default=10.0, help="report interval in simulated seconds")
    args = parser.parse_args(argv)

    network = figure2_network(switch_interval=60.0, seed=1)
    prior = figure3_prior(
        link_rate_points=4, cross_fraction_points=4, loss_points=3, buffer_points=2, fill_points=1
    )
    # The canonical construction path: one frozen SenderConfig (prior,
    # utility, kernel, caps, engines) handed to build_sender.
    config = SenderConfig(
        prior=prior, alpha=1.0, discount_timescale=20.0,
        kernel="gaussian", kernel_scale=0.4, max_hypotheses=200, top_k=16,
    )
    sender = build_sender(config, network)
    belief = sender.belief

    print("True configuration: link=12000 bps, cross=0.7*link (on/off every 60 s), loss=0.2")
    print(f"Prior support: {prior.size} configurations\n")

    slice_end = 0.0
    while slice_end < args.duration:
        slice_end = min(slice_end + args.slice, args.duration)
        network.network.run(until=slice_end)
        describe(belief, slice_end)

    print(f"\nMAP configuration after {args.duration:.0f} s:")
    map_hypothesis = belief.map_estimate()
    for key in ("link_rate_bps", "cross_fraction", "loss_rate", "buffer_capacity_bits"):
        if key in map_hypothesis.params:
            print(f"  {key:22s} = {map_hypothesis.params[key]:g}")
    print(f"\npackets sent: {sender.packets_sent}, acked: {sender.packets_acked}")
    print(f"degenerate updates (observation ignored): {belief.degenerate_updates}")
    print(f"hypotheses compacted away: {belief.compacted_away}")


if __name__ == "__main__":
    main()
