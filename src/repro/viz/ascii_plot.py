"""Minimal ASCII scatter/line plots for terminal output.

The paper's figures are line plots (RTT vs. time, sequence number vs. time).
Matplotlib is not available offline, so examples and benches render compact
character plots instead; they are good enough to see the slopes, plateaus,
and crossovers the paper's figures convey.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.metrics.timeseries import TimeSeries

#: Characters used to distinguish multiple series on one plot.
SERIES_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, TimeSeries] | Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "time (s)",
    y_label: str = "value",
    logy: bool = False,
) -> str:
    """Render one or more time series as an ASCII plot.

    Parameters
    ----------
    series:
        Mapping of series name to a :class:`TimeSeries` or ``(x, y)`` pairs.
    width, height:
        Plot area size in characters.
    logy:
        Plot ``log10(y)`` instead of ``y`` (used for Figure 1's RTT axis).
    """
    import math

    prepared: dict[str, list[tuple[float, float]]] = {}
    for name, value in series.items():
        pairs = list(value) if not isinstance(value, TimeSeries) else list(value)
        if logy:
            pairs = [(x, math.log10(y)) for x, y in pairs if y > 0]
        prepared[name] = pairs

    all_points = [point for pairs in prepared.values() for point in pairs]
    if not all_points:
        return (title or "") + "\n(no data)"

    xs = [x for x, _ in all_points]
    ys = [y for _, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, pairs) in enumerate(prepared.items()):
        marker = SERIES_MARKERS[index % len(SERIES_MARKERS)]
        for x, y in pairs:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    y_axis_label = f"{y_label} [{'log10 ' if logy else ''}{y_min:.3g} .. {y_max:.3g}]"
    lines.append(y_axis_label)
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label} [{x_min:.3g} .. {x_max:.3g}]")
    legend = "  ".join(
        f"{SERIES_MARKERS[index % len(SERIES_MARKERS)]} = {name}"
        for index, name in enumerate(prepared)
    )
    lines.append(" legend: " + legend)
    return "\n".join(lines)
