"""CSV export of experiment rows and time series."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.metrics.summary import ExperimentRow
from repro.metrics.timeseries import TimeSeries


def write_series_csv(
    path: str | Path,
    series: Mapping[str, TimeSeries] | Mapping[str, Sequence[tuple[float, float]]],
) -> Path:
    """Write one or more ``(time, value)`` series to a long-format CSV file.

    Columns are ``series``, ``time``, ``value`` so the file can be pivoted
    directly by any plotting tool.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "time", "value"])
        for name, value in series.items():
            for time, sample in value:
                writer.writerow([name, f"{time:.6f}", f"{sample:.6f}"])
    return path


def write_rows_csv(path: str | Path, rows: Iterable[ExperimentRow]) -> Path:
    """Write :class:`ExperimentRow` objects to a CSV file (union of columns)."""
    rows = list(rows)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    columns: list[str] = []
    for row in rows:
        for key in row.values:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["label", *columns])
        for row in rows:
            writer.writerow([row.label, *[row.values.get(column, "") for column in columns]])
    return path
