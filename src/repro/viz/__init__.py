"""Plotting and export helpers (text-only: no plotting libraries required)."""

from repro.viz.ascii_plot import ascii_plot
from repro.viz.csv_out import write_rows_csv, write_series_csv

__all__ = ["ascii_plot", "write_rows_csv", "write_series_csv"]
