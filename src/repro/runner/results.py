"""Result aggregation for scenario runs.

Every executed point becomes a :class:`PointResult`; a :class:`ResultStore`
collects them (in spec order, regardless of which worker finished first)
and renders one comparable artifact: canonical JSON whose bytes are a
function of the specs and seeds alone, plus CSV / table views for humans.

Timing is recorded per point but excluded from the canonical artifact by
default, so replay-equivalence checks can compare artifacts byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.metrics.summary import ExperimentRow
from repro.runner.spec import ScenarioSpec
from repro.viz.csv_out import write_rows_csv


@dataclass
class PointResult:
    """Outcome of one executed scenario point."""

    spec: ScenarioSpec
    metrics: dict[str, Any]
    wall_time: float = 0.0

    def row(self) -> ExperimentRow:
        """The point as a printable table row."""
        return ExperimentRow(label=self.spec.label, values=dict(self.metrics))

    def to_obj(self, include_timing: bool = False) -> dict[str, Any]:
        """JSON-ready representation of the point."""
        obj: dict[str, Any] = {
            "scenario": self.spec.scenario,
            "params": dict(self.spec.params),
            "seed": self.spec.seed,
            "metrics": dict(self.metrics),
        }
        if include_timing:
            obj["wall_time"] = self.wall_time
        return obj


@dataclass
class QuarantinedPoint:
    """A point that exhausted its retries and was set aside, not lost.

    Under partial (non-strict) supervision a repeatedly failing point no
    longer poisons the sweep: its spec, final error, and traceback are
    recorded here (and in the sweep journal) so the failure is diagnosable
    after the fact, while every healthy point still lands in the store.
    """

    spec: ScenarioSpec
    error: str
    traceback: str = ""
    attempts: int = 1

    def to_obj(self) -> dict[str, Any]:
        return {
            "scenario": self.spec.scenario,
            "params": dict(self.spec.params),
            "seed": self.spec.seed,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class ResultStore:
    """An ordered collection of :class:`PointResult` with stable serialization."""

    results: list[PointResult] = field(default_factory=list)
    #: Points replayed from a :class:`~repro.runner.cache.ResultCache` /
    #: executed fresh by the run that produced this store.  Bookkeeping
    #: only — deliberately excluded from the canonical JSON artifact, which
    #: must stay a pure function of specs and metrics (a warm rerun is
    #: byte-identical to the cold run that populated the cache).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Cache entries found corrupt at read time and moved to the cache's
    #: ``quarantine/`` directory during this run.
    cache_corrupt: int = 0
    #: ``True`` when the producing run tolerated failures: quarantined
    #: points are absent from ``results`` but listed in ``quarantined``.
    partial: bool = False
    #: Points set aside after exhausting their retries (partial mode only).
    quarantined: list[QuarantinedPoint] = field(default_factory=list)
    #: Failed attempts that were retried during the run.
    retries: int = 0
    #: Points replayed from a sweep journal by ``resume=True``.
    resumed: int = 0

    # ------------------------------------------------------------- collection

    def add(self, result: PointResult) -> None:
        self.results.append(result)

    def extend(self, results: Iterator[PointResult] | list[PointResult]) -> None:
        self.results.extend(results)

    def merge(self, other: "ResultStore") -> "ResultStore":
        """Return a new store holding this store's points then ``other``'s."""
        return ResultStore(
            results=[*self.results, *other.results],
            cache_hits=self.cache_hits + other.cache_hits,
            cache_misses=self.cache_misses + other.cache_misses,
            cache_corrupt=self.cache_corrupt + other.cache_corrupt,
            partial=self.partial or other.partial,
            quarantined=[*self.quarantined, *other.quarantined],
            retries=self.retries + other.retries,
            resumed=self.resumed + other.resumed,
        )

    def counts(self) -> dict[str, int]:
        """Completed/quarantined/retry bookkeeping as one reportable dict."""
        return {
            "completed": len(self.results),
            "quarantined": len(self.quarantined),
            "retries": self.retries,
            "resumed": self.resumed,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_corrupt": self.cache_corrupt,
        }

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    # ------------------------------------------------------------------ views

    def rows(self) -> list[ExperimentRow]:
        """All points as printable table rows, in run order."""
        return [result.row() for result in self.results]

    def metric(self, name: str) -> list[Any]:
        """One metric across all points, in run order."""
        return [result.metrics.get(name) for result in self.results]

    @property
    def total_wall_time(self) -> float:
        """Sum of per-point execution times (not wall-clock of the sweep)."""
        return sum(result.wall_time for result in self.results)

    # -------------------------------------------------------------- artifacts

    def to_obj(self, include_timing: bool = False) -> dict[str, Any]:
        obj: dict[str, Any] = {
            "schema": "repro.runner/1",
            "results": [result.to_obj(include_timing=include_timing) for result in self.results],
        }
        # Quarantined points appear only when there are any, so a clean
        # run's artifact stays byte-identical to pre-supervision output
        # (and a resumed clean run to an uninterrupted one).
        if self.quarantined:
            obj["quarantined"] = [point.to_obj() for point in self.quarantined]
        return obj

    def to_json(
        self,
        path: str | Path | None = None,
        include_timing: bool = False,
    ) -> str:
        """Canonical JSON artifact (sorted keys, fixed separators).

        With ``include_timing=False`` (the default) the bytes are fully
        determined by the executed specs and their metrics — the property
        the replay-equivalence tests assert across backends and worker
        counts.
        """
        text = json.dumps(
            self.to_obj(include_timing=include_timing),
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )
        if path is not None:
            Path(path).write_text(text + "\n", encoding="utf-8")
        return text

    def fingerprint(self) -> str:
        """SHA-256 of the canonical JSON artifact — a comparable run identity."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    def to_csv(self, path: str | Path) -> Path:
        """Write the points as a CSV table (one row per point)."""
        return write_rows_csv(path, self.rows())

    @classmethod
    def from_json(cls, text: str) -> "ResultStore":
        """Rehydrate a store from :meth:`to_json` output."""
        payload = json.loads(text)
        store = cls()
        for obj in payload.get("results", []):
            store.add(
                PointResult(
                    spec=ScenarioSpec(
                        scenario=obj["scenario"],
                        params=dict(obj.get("params", {})),
                        seed=int(obj.get("seed", 0)),
                    ),
                    metrics=dict(obj.get("metrics", {})),
                    wall_time=float(obj.get("wall_time", 0.0)),
                )
            )
        return store
