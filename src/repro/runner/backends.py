"""Execution backends: a serial loop and a multiprocessing fan-out.

Both backends expose the same two operations:

* ``run(specs)`` — execute registered :class:`~repro.runner.spec.ScenarioSpec`
  points and aggregate their metrics into a
  :class:`~repro.runner.results.ResultStore`;
* ``map(fn, kwargs_list)`` — execute an arbitrary top-level function once
  per kwargs dict (what the experiment sweeps use, since they return rich
  result dataclasses rather than flat metric dicts).

Results always come back in input order, and element-name counters are
reset before every point, so a sweep's outcome is a pure function of its
specs and seeds — identical serially, in parallel, and at any worker count.
Only picklable tasks can cross process boundaries: specs, top-level
functions, and dataclass results all qualify; closures do not.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.runner.results import PointResult, ResultStore
from repro.runner.spec import ScenarioSpec
from repro.sim.element import fresh_instance_counters


def _execute_point(task: tuple[ScenarioRegistry | None, ScenarioSpec]) -> PointResult:
    """Run one registered spec (top-level so worker processes can import it)."""
    registry, spec = task
    registry = registry if registry is not None else DEFAULT_REGISTRY
    with fresh_instance_counters():
        started = time.perf_counter()
        metrics = registry.run_point(spec)
        return PointResult(spec=spec, metrics=metrics, wall_time=time.perf_counter() - started)


def _execute_call(task: tuple[Callable[..., Any], Mapping[str, Any]]) -> Any:
    """Run one ``fn(**kwargs)`` task (top-level for picklability)."""
    fn, kwargs = task
    with fresh_instance_counters():
        return fn(**kwargs)


class SerialRunner:
    """Runs every point in the current process, one after another.

    The default backend: zero overhead, ideal for tiny sweeps and for unit
    tests, and the reference a parallel run must reproduce byte-for-byte.
    """

    backend_name = "serial"

    def __init__(self, registry: ScenarioRegistry | None = None) -> None:
        self._registry = registry

    def map(self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]) -> list[Any]:
        """``[fn(**kwargs) for kwargs in tasks]`` with per-point counter resets."""
        return [_execute_call((fn, kwargs)) for kwargs in tasks]

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """Execute registered scenario points and aggregate their metrics."""
        store = ResultStore()
        store.extend(_execute_point((self._registry, spec)) for spec in specs)
        return store


class ParallelRunner:
    """Fans points out over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count capped at
        the number of tasks submitted.
    registry:
        Registry to resolve spec names against (defaults to the process-wide
        one).  A custom registry must hold module-level functions so it can
        be pickled to the workers.
    chunksize:
        Tasks handed to a worker at a time.  1 (the default) gives the best
        load balance for heterogeneous points like an α sweep, where the
        aggressive senders simulate many more events than the deferential
        ones.
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform default
        (``fork`` on Linux, which avoids re-import cost).
    """

    backend_name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        chunksize: int = 1,
        start_method: str | None = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize!r}")
        self.workers = workers
        self._registry = registry
        self.chunksize = chunksize
        self.start_method = start_method

    def _pool_size(self, task_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, task_count))

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        if not tasks:
            return []
        pool_size = self._pool_size(len(tasks))
        if pool_size == 1 and self.workers in (None, 1):
            # Nothing to fan out — skip the pool entirely.
            return [worker(task) for task in tasks]
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=pool_size) as pool:
            # Pool.map preserves input order, which keeps artifacts canonical
            # regardless of completion order.
            return pool.map(worker, tasks, chunksize=self.chunksize)

    def map(self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]) -> list[Any]:
        """Run ``fn(**kwargs)`` per task across the pool, preserving order."""
        return self._map(_execute_call, [(fn, kwargs) for kwargs in tasks])

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """Execute registered scenario points across the pool."""
        store = ResultStore()
        store.extend(self._map(_execute_point, [(self._registry, spec) for spec in specs]))
        return store


#: Either execution backend — what experiment sweeps accept as ``runner=``.
RunnerBackend = SerialRunner | ParallelRunner


def make_runner(
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
) -> SerialRunner | ParallelRunner:
    """Build a backend by name — the switch the CLI and examples expose."""
    if backend == "serial":
        return SerialRunner(registry=registry)
    if backend == "parallel":
        return ParallelRunner(workers=workers, registry=registry)
    raise ConfigurationError(f"unknown backend {backend!r}; expected 'serial' or 'parallel'")


def run_specs(
    specs: Sequence[ScenarioSpec],
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
) -> ResultStore:
    """One-call convenience: build a backend and run ``specs`` through it."""
    return make_runner(backend=backend, workers=workers, registry=registry).run(specs)
