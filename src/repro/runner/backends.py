"""Execution backends: serial loop, multiprocessing fan-out, asyncio pool.

Every backend derives from :class:`RunnerBase` and exposes the same two
operations:

* ``run(specs)`` — execute registered :class:`~repro.runner.spec.ScenarioSpec`
  points and aggregate their metrics into a
  :class:`~repro.runner.results.ResultStore`.  When the backend carries a
  :class:`~repro.runner.cache.ResultCache`, points whose fingerprint-keyed
  results are already on disk are replayed instead of executed — the store
  comes back bit-identical to a cold run, with hit/miss counts attached;
* ``map(fn, kwargs_list)`` — execute an arbitrary top-level function once
  per kwargs dict (what the experiment sweeps use, since they return rich
  result dataclasses rather than flat metric dicts).

Results always come back in input order, and element-name counters are
reset before every point, so a sweep's outcome is a pure function of its
specs and seeds — identical serially, in parallel, asynchronously, and at
any worker count.  Only picklable tasks can cross process boundaries:
specs, top-level functions, and dataclass results all qualify; closures do
not.

Backends resolve by name through :data:`RUNNER_BACKENDS` — the same
string-keyed :class:`~repro.api.backends.BackendRegistry` mechanism the
belief and rollout engines use — so ``--backend async`` on the CLI and
``make_runner("async")`` in code go through one lookup, and third-party
backends can self-register without touching this module.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
import multiprocessing
import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence

from repro._persist import cache_dir_override
from repro.api.backends import BackendRegistry
from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.faults import NO_FAULTS, corrupt_entry
from repro.runner.journal import SweepJournal, journal_path, replay_journal
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.runner.results import PointResult, QuarantinedPoint, ResultStore
from repro.runner.spec import ScenarioSpec, grid_digest
from repro.runner.supervise import (
    Supervision,
    SupervisedJob,
    SweepObserver,
    run_supervised,
)
from repro.sim.element import fresh_instance_counters


def _execute_point(
    task: tuple[ScenarioRegistry | None, ScenarioSpec, str | None]
) -> PointResult:
    """Run one registered spec (top-level so worker processes can import it).

    ``task`` carries the runner's cache directory (or ``None``): it is
    exported as ``$REPRO_CACHE_DIR`` around this one execution, in this
    process, so scenario internals that cache their own artifacts — the
    policy-table precompute — share the directory whether the run was
    launched from the CLI or programmatically, and concurrent runs with
    different caches never see each other's export.
    """
    registry, spec, cache_env = task
    registry = registry if registry is not None else DEFAULT_REGISTRY
    with fresh_instance_counters(), cache_dir_override(cache_env):
        started = time.perf_counter()
        metrics = registry.run_point(spec)
        return PointResult(spec=spec, metrics=metrics, wall_time=time.perf_counter() - started)


def _execute_call(task: tuple[Callable[..., Any], Mapping[str, Any]]) -> Any:
    """Run one ``fn(**kwargs)`` task (top-level for picklability)."""
    fn, kwargs = task
    with fresh_instance_counters():
        return fn(**kwargs)


class _RunObserver(SweepObserver):
    """Wires supervised-execution transitions into the journal and cache.

    Called in the supervisor (parent) as each point changes state, so both
    durability mechanisms — the append-only journal and the fingerprint-
    keyed cache — record a point the moment it completes, not when the
    whole sweep does.  ``corrupt`` carries the fault plan's cache-entry
    targets: those entries are truncated right after being stored.
    """

    def __init__(
        self,
        journal: Optional[SweepJournal],
        cache: Optional[ResultCache],
        keys: dict[int, str],
        registry: ScenarioRegistry | None,
        corrupt: frozenset[int],
    ) -> None:
        self.journal = journal
        self.cache = cache
        self.keys = keys
        self.registry = registry
        self.corrupt = corrupt

    def on_running(self, index: int, attempt: int) -> None:
        if self.journal is not None:
            self.journal.running(index, attempt)

    def on_done(self, index: int, result: PointResult) -> None:
        if self.journal is not None:
            self.journal.done(index, result.metrics, result.wall_time)
        if self.cache is not None:
            key = self.keys.get(index)
            if key is None:
                key = self.cache.point_key(result.spec, registry=self.registry)
            path = self.cache.store_point(key, result)
            if index in self.corrupt:
                corrupt_entry(path)

    def on_failed(self, index: int, attempt: int, error: str) -> None:
        if self.journal is not None:
            self.journal.failed(index, attempt, error)

    def on_quarantined(self, index: int, point: QuarantinedPoint) -> None:
        if self.journal is not None:
            self.journal.quarantined(
                index, point.error, point.traceback, point.attempts
            )


class RunnerBase:
    """Shared run/map plumbing; subclasses supply ``_map`` (the fan-out).

    Parameters
    ----------
    registry:
        Registry to resolve spec names against (defaults to the
        process-wide one).  A custom registry must hold module-level
        functions for the process-pool backends, so it can be pickled.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`.  ``run`` then
        consults it per point before executing, stores every freshly
        executed point, and stamps the returned store's
        ``cache_hits`` / ``cache_misses``.
    supervision:
        Optional :class:`~repro.runner.supervise.Supervision` policy.
        When present, ``run`` switches from the raw fan-out to the
        supervised path: per-point retries with seeded backoff, heartbeat
        timeouts and worker-death recovery (process backends), quarantine
        instead of sweep poisoning, fault injection, and — when a journal
        location exists — a durable, resumable sweep journal.
    resume:
        Skip points a prior (killed) run of the *same grid* already
        journalled as done, and re-enqueue everything that was in flight.
        Implies supervision; requires a journal location.
    journal_dir:
        Where sweep journals live.  Defaults to the cache directory when a
        cache is attached; an explicit value enables journalling without a
        result cache.
    """

    backend_name = "base"

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        cache: Optional[ResultCache] = None,
        supervision: Optional[Supervision] = None,
        resume: bool = False,
        journal_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        self._registry = registry
        self.cache = cache
        self.resume = bool(resume)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        if supervision is None and (self.resume or self.journal_dir is not None):
            supervision = Supervision()
        self.supervision = supervision
        if self.resume and self._journal_root() is None:
            raise ConfigurationError(
                "resume=True needs a journal location: attach a cache "
                "(cache=/cache_dir=) or pass journal_dir="
            )

    def _journal_root(self) -> Optional[Path]:
        if self.journal_dir is not None:
            return self.journal_dir
        return self.cache.root if self.cache is not None else None

    # ----------------------------------------------------------------- fan-out

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        raise NotImplementedError

    def map(self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]) -> list[Any]:
        """Run ``fn(**kwargs)`` per task, preserving input order."""
        return self._map(_execute_call, [(fn, kwargs) for kwargs in tasks])

    # --------------------------------------------------------- cache plumbing

    def _point_task(
        self, spec: ScenarioSpec
    ) -> tuple[ScenarioRegistry | None, ScenarioSpec, str | None]:
        """The ``_execute_point`` task for one spec, cache directory included."""
        cache_env = str(self.cache.root) if self.cache is not None else None
        return (self._registry, spec, cache_env)

    def _cache_partition(
        self, specs: Sequence[ScenarioSpec]
    ) -> tuple[dict[int, PointResult], list[str], list[tuple[int, ScenarioSpec]]]:
        """Split ``specs`` into replayed hits and still-pending points."""
        results: dict[int, PointResult] = {}
        keys: list[str] = []
        pending: list[tuple[int, ScenarioSpec]] = []
        for index, spec in enumerate(specs):
            key = self.cache.point_key(spec, registry=self._registry)
            keys.append(key)
            cached = self.cache.load_point(key, spec)
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, spec))
        return results, keys, pending

    def _cache_assemble(
        self,
        specs: Sequence[ScenarioSpec],
        results: dict[int, PointResult],
        keys: list[str],
        pending: list[tuple[int, ScenarioSpec]],
        executed: list[PointResult],
    ) -> ResultStore:
        """Store fresh executions and reassemble the store in spec order."""
        for (index, _), result in zip(pending, executed):
            self.cache.store_point(keys[index], result)
            results[index] = result
        store = ResultStore()
        store.extend(results[index] for index in range(len(specs)))
        store.cache_hits = len(specs) - len(pending)
        store.cache_misses = len(pending)
        return store

    # --------------------------------------------------------------------- run

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """Execute registered scenario points and aggregate their metrics.

        With a cache attached, each point's fingerprint-derived key is
        looked up first; only the misses are fanned out, and their results
        are stored back.  The assembled store preserves spec order either
        way, so a warm rerun's canonical artifact is byte-identical to the
        cold run that populated the cache.

        With a :class:`~repro.runner.supervise.Supervision` policy (or
        ``resume=True``) attached, execution goes through the supervised
        path instead: journalled, retried, and quarantine-tolerant.
        """
        if self.supervision is not None:
            return self._run_supervised(specs)
        if self.cache is None:
            store = ResultStore()
            store.extend(self._map(_execute_point, [self._point_task(spec) for spec in specs]))
            return store
        corrupt_before = self.cache.corrupt
        results, keys, pending = self._cache_partition(specs)
        executed = self._map(
            _execute_point, [self._point_task(spec) for _, spec in pending]
        )
        store = self._cache_assemble(specs, results, keys, pending, executed)
        store.cache_corrupt = self.cache.corrupt - corrupt_before
        return store

    # ------------------------------------------------------- supervised path

    def _supervised_context(self) -> Any:
        """The multiprocessing context supervised workers run under.

        ``None`` means inline execution (the serial backend): retries and
        quarantine still apply, but hangs cannot be preempted and kill
        faults take the sweep process down (the journal covers that).
        """
        return None

    def _supervised_workers(self, task_count: int) -> int:
        return 1

    def _run_supervised(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """Durable, fault-tolerant execution of ``specs``.

        Order of battle: replay the journal (``resume``), replay the
        cache, then fan the remaining points out under supervision —
        journalling and caching each point the moment it completes, so a
        killed sweep resumes mid-grid and re-executes only what was in
        flight.  The assembled store is in spec order with quarantined
        points set aside, and is byte-identical to an uninterrupted run
        when nothing was quarantined.
        """
        supervision = self.supervision
        assert supervision is not None
        specs = list(specs)
        digest = grid_digest(specs)
        journal_root = self._journal_root()

        prior_done: dict[int, dict] = {}
        journal: Optional[SweepJournal] = None
        if journal_root is not None:
            path = journal_path(journal_root, digest)
            if self.resume:
                prior_done = replay_journal(path).done
            journal = SweepJournal(
                path, grid=digest, points=len(specs), append=self.resume
            )
        try:
            results: dict[int, PointResult] = {}
            resumed = 0
            for index, record in prior_done.items():
                if 0 <= index < len(specs) and isinstance(record.get("metrics"), dict):
                    results[index] = PointResult(
                        spec=specs[index],
                        metrics=dict(record["metrics"]),
                        wall_time=float(record.get("wall_time", 0.0)),
                    )
                    resumed += 1

            hits = 0
            keys: dict[int, str] = {}
            corrupt_before = self.cache.corrupt if self.cache is not None else 0
            if self.cache is not None:
                for index, spec in enumerate(specs):
                    if index in results:
                        continue
                    key = self.cache.point_key(spec, registry=self._registry)
                    keys[index] = key
                    cached = self.cache.load_point(key, spec)
                    if cached is not None:
                        results[index] = cached
                        hits += 1
                        if journal is not None:
                            journal.done(
                                index, cached.metrics, cached.wall_time, source="cache"
                            )

            pending = [index for index in range(len(specs)) if index not in results]
            assignment = (
                supervision.fault_plan.assign(specs)
                if supervision.fault_plan is not None
                else NO_FAULTS
            )
            observer = _RunObserver(
                journal=journal,
                cache=self.cache,
                keys=keys,
                registry=self._registry,
                corrupt=assignment.corrupt,
            )
            jobs = [
                SupervisedJob(index, specs[index], self._point_task(specs[index]))
                for index in pending
            ]
            outcome = run_supervised(
                jobs,
                _execute_point,
                supervision=supervision,
                assignment=assignment,
                observer=observer,
                workers=self._supervised_workers(len(jobs)),
                mp_context=self._supervised_context(),
            )
            results.update(outcome.results)
            if journal is not None:
                journal.complete()

            store = ResultStore()
            store.extend(results[index] for index in sorted(results))
            store.quarantined = [
                outcome.quarantined[index] for index in sorted(outcome.quarantined)
            ]
            store.partial = bool(store.quarantined)
            if self.cache is not None:
                store.cache_hits = hits
                store.cache_misses = len(pending)
                store.cache_corrupt = self.cache.corrupt - corrupt_before
            store.retries = outcome.retries
            store.resumed = resumed
            return store
        finally:
            if journal is not None:
                journal.close()


class SerialRunner(RunnerBase):
    """Runs every point in the current process, one after another.

    The default backend: zero overhead, ideal for tiny sweeps and for unit
    tests, and the reference a parallel run must reproduce byte-for-byte.
    ``workers`` is accepted and ignored, so every registered backend shares
    one construction signature (the ``RUNNER_BACKENDS`` contract).
    """

    backend_name = "serial"

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        cache: Optional[ResultCache] = None,
        *,
        workers: int | None = None,
        supervision: Optional[Supervision] = None,
        resume: bool = False,
        journal_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        super().__init__(
            registry=registry,
            cache=cache,
            supervision=supervision,
            resume=resume,
            journal_dir=journal_dir,
        )

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        return [worker(task) for task in tasks]


class _PoolSizingMixin:
    """Worker-count resolution shared by the process-pool backends."""

    workers: int | None

    def _pool_size(self, task_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, task_count))


class ParallelRunner(_PoolSizingMixin, RunnerBase):
    """Fans points out over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count capped at
        the number of tasks submitted.
    registry / cache:
        See :class:`RunnerBase`.
    chunksize:
        Tasks handed to a worker at a time.  1 (the default) gives the best
        load balance for heterogeneous points like an α sweep, where the
        aggressive senders simulate many more events than the deferential
        ones.
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform default
        (``fork`` on Linux, which avoids re-import cost).
    """

    backend_name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        chunksize: int = 1,
        start_method: str | None = None,
        cache: Optional[ResultCache] = None,
        supervision: Optional[Supervision] = None,
        resume: bool = False,
        journal_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize!r}")
        super().__init__(
            registry=registry,
            cache=cache,
            supervision=supervision,
            resume=resume,
            journal_dir=journal_dir,
        )
        self.workers = workers
        self.chunksize = chunksize
        self.start_method = start_method

    def _supervised_context(self) -> Any:
        return multiprocessing.get_context(self.start_method)

    def _supervised_workers(self, task_count: int) -> int:
        return self._pool_size(max(1, task_count))

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        if not tasks:
            return []
        pool_size = self._pool_size(len(tasks))
        if pool_size == 1 and self.workers in (None, 1):
            # Nothing to fan out — skip the pool entirely.
            return [worker(task) for task in tasks]
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=pool_size) as pool:
            # Pool.map preserves input order, which keeps artifacts canonical
            # regardless of completion order.
            return pool.map(worker, tasks, chunksize=self.chunksize)


class AsyncRunner(_PoolSizingMixin, RunnerBase):
    """Schedules points as asyncio tasks over a process-pool executor.

    The asyncio layer is the seam for overlap: while worker processes chew
    on simulation points, the event loop stays free for cache lookups,
    result streaming, or (future) remote backends awaiting network I/O.
    ``run``/``map`` stay synchronous — they spin the loop internally — and
    :meth:`run_async` / :meth:`map_async` expose the coroutine surface for
    callers that already live inside an event loop (pass their own
    executor lifetime implicitly per call).

    Parameters
    ----------
    workers:
        Executor process count; defaults to the CPU count capped at the
        number of submitted tasks.
    registry / cache:
        See :class:`RunnerBase`.
    max_in_flight:
        Cap on simultaneously *submitted* tasks; ``None`` submits
        everything at once.  Useful to bound memory when a sweep has many
        thousands of points.
    start_method:
        ``multiprocessing`` start method for the executor's workers.
    """

    backend_name = "async"

    def __init__(
        self,
        workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        max_in_flight: int | None = None,
        start_method: str | None = None,
        cache: Optional[ResultCache] = None,
        supervision: Optional[Supervision] = None,
        resume: bool = False,
        journal_dir: "str | os.PathLike[str] | None" = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight!r}"
            )
        super().__init__(
            registry=registry,
            cache=cache,
            supervision=supervision,
            resume=resume,
            journal_dir=journal_dir,
        )
        self.workers = workers
        self.max_in_flight = max_in_flight
        self.start_method = start_method

    def _supervised_context(self) -> Any:
        return multiprocessing.get_context(self.start_method)

    def _supervised_workers(self, task_count: int) -> int:
        return self._pool_size(max(1, task_count))

    async def _gather(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self.start_method)
        semaphore = (
            asyncio.Semaphore(self.max_in_flight)
            if self.max_in_flight is not None
            else None
        )
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=self._pool_size(len(tasks)), mp_context=context
        )
        graceful = True
        try:

            async def submit(task: Any) -> Any:
                if semaphore is None:
                    return await loop.run_in_executor(pool, worker, task)
                async with semaphore:
                    return await loop.run_in_executor(pool, worker, task)

            # gather preserves argument order, which keeps artifacts
            # canonical regardless of completion order.  On the first
            # failure, every sibling is cancelled before the pool shuts
            # down — not-yet-running submissions never execute — and the
            # original error propagates, not a CancelledError.
            pending = [asyncio.ensure_future(submit(task)) for task in tasks]
            try:
                return list(await asyncio.gather(*pending))
            except (KeyboardInterrupt, asyncio.CancelledError):
                # User-initiated cancellation: shut down promptly.  Queued
                # submissions are dropped, and nobody waits on points that
                # are already in flight — their workers die with the
                # interpreter, and the interrupt propagates as itself.
                graceful = False
                for future in pending:
                    future.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                raise
            except BaseException:
                for future in pending:
                    future.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                raise
        finally:
            pool.shutdown(wait=graceful, cancel_futures=not graceful)

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        if not tasks:
            return []
        if self._pool_size(len(tasks)) == 1 and self.workers in (None, 1):
            return [worker(task) for task in tasks]
        return asyncio.run(self._gather(worker, tasks))

    # ------------------------------------------------------- coroutine surface

    async def map_async(
        self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]
    ) -> list[Any]:
        """``map`` as a coroutine, for callers already inside an event loop."""
        if not tasks:
            return []
        return await self._gather(_execute_call, [(fn, kwargs) for kwargs in tasks])

    async def run_async(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """``run`` as a coroutine (cache consulted on the event-loop thread).

        Shares :meth:`RunnerBase.run`'s cache partition/assemble helpers;
        only the fan-out in between is awaited instead of blocked on.
        With supervision attached, the blocking supervised driver runs on
        a thread so the caller's event loop stays free.
        """
        if self.supervision is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, functools.partial(self._run_supervised, list(specs))
            )

        async def gather(tasks: list[Any]) -> list[Any]:
            return await self._gather(_execute_point, tasks) if tasks else []

        if self.cache is None:
            store = ResultStore()
            store.extend(await gather([self._point_task(spec) for spec in specs]))
            return store
        corrupt_before = self.cache.corrupt
        results, keys, pending = self._cache_partition(specs)
        executed = await gather([self._point_task(spec) for _, spec in pending])
        store = self._cache_assemble(specs, results, keys, pending, executed)
        store.cache_corrupt = self.cache.corrupt - corrupt_before
        return store


#: Any execution backend — what experiment sweeps accept as ``runner=``.
RunnerBackend = RunnerBase

#: Runner backends by name — the registry ``make_runner`` and the CLI's
#: ``--backend`` flag resolve through, mirroring ``BELIEF_BACKENDS`` /
#: ``ROLLOUT_BACKENDS``.  Third-party backends register a RunnerBase
#: subclass accepting ``(workers=, registry=, cache=, supervision=,
#: resume=, journal_dir=)`` keywords.
RUNNER_BACKENDS = BackendRegistry(
    "runner",
    builtin_modules={
        "serial": "repro.runner.backends",
        "parallel": "repro.runner.backends",
        "async": "repro.runner.backends",
    },
)
RUNNER_BACKENDS.register("serial", SerialRunner)
RUNNER_BACKENDS.register("parallel", ParallelRunner)
RUNNER_BACKENDS.register("async", AsyncRunner)


def make_runner(
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
    cache: Optional[ResultCache] = None,
    cache_dir: "str | os.PathLike[str] | None" = None,
    supervision: Optional[Supervision] = None,
    resume: bool = False,
    journal_dir: "str | os.PathLike[str] | None" = None,
) -> RunnerBase:
    """Build a backend by name — the switch the CLI and examples expose.

    ``cache_dir`` is shorthand for ``cache=ResultCache(cache_dir)``; an
    explicit ``cache`` instance wins when both are given.  ``workers`` is
    accepted (and ignored) by the serial backend so sweep code can thread
    one knob through regardless of the chosen backend.  ``supervision``,
    ``resume`` and ``journal_dir`` opt the runner into fault-tolerant
    execution (see :class:`RunnerBase`).
    """
    cls = RUNNER_BACKENDS.resolve(backend)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    return cls(
        workers=workers,
        registry=registry,
        cache=cache,
        supervision=supervision,
        resume=resume,
        journal_dir=journal_dir,
    )


def run_specs(
    specs: Sequence[ScenarioSpec],
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
    cache: Optional[ResultCache] = None,
    cache_dir: "str | os.PathLike[str] | None" = None,
    supervision: Optional[Supervision] = None,
    resume: bool = False,
    journal_dir: "str | os.PathLike[str] | None" = None,
) -> ResultStore:
    """One-call convenience: build a backend and run ``specs`` through it."""
    return make_runner(
        backend=backend,
        workers=workers,
        registry=registry,
        cache=cache,
        cache_dir=cache_dir,
        supervision=supervision,
        resume=resume,
        journal_dir=journal_dir,
    ).run(specs)
