"""Execution backends: serial loop, multiprocessing fan-out, asyncio pool.

Every backend derives from :class:`RunnerBase` and exposes the same two
operations:

* ``run(specs)`` — execute registered :class:`~repro.runner.spec.ScenarioSpec`
  points and aggregate their metrics into a
  :class:`~repro.runner.results.ResultStore`.  When the backend carries a
  :class:`~repro.runner.cache.ResultCache`, points whose fingerprint-keyed
  results are already on disk are replayed instead of executed — the store
  comes back bit-identical to a cold run, with hit/miss counts attached;
* ``map(fn, kwargs_list)`` — execute an arbitrary top-level function once
  per kwargs dict (what the experiment sweeps use, since they return rich
  result dataclasses rather than flat metric dicts).

Results always come back in input order, and element-name counters are
reset before every point, so a sweep's outcome is a pure function of its
specs and seeds — identical serially, in parallel, asynchronously, and at
any worker count.  Only picklable tasks can cross process boundaries:
specs, top-level functions, and dataclass results all qualify; closures do
not.

Backends resolve by name through :data:`RUNNER_BACKENDS` — the same
string-keyed :class:`~repro.api.backends.BackendRegistry` mechanism the
belief and rollout engines use — so ``--backend async`` on the CLI and
``make_runner("async")`` in code go through one lookup, and third-party
backends can self-register without touching this module.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import multiprocessing
import os
import time
from typing import Any, Callable, Mapping, Optional, Sequence

from repro._persist import cache_dir_override
from repro.api.backends import BackendRegistry
from repro.errors import ConfigurationError
from repro.runner.cache import ResultCache
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.runner.results import PointResult, ResultStore
from repro.runner.spec import ScenarioSpec
from repro.sim.element import fresh_instance_counters


def _execute_point(
    task: tuple[ScenarioRegistry | None, ScenarioSpec, str | None]
) -> PointResult:
    """Run one registered spec (top-level so worker processes can import it).

    ``task`` carries the runner's cache directory (or ``None``): it is
    exported as ``$REPRO_CACHE_DIR`` around this one execution, in this
    process, so scenario internals that cache their own artifacts — the
    policy-table precompute — share the directory whether the run was
    launched from the CLI or programmatically, and concurrent runs with
    different caches never see each other's export.
    """
    registry, spec, cache_env = task
    registry = registry if registry is not None else DEFAULT_REGISTRY
    with fresh_instance_counters(), cache_dir_override(cache_env):
        started = time.perf_counter()
        metrics = registry.run_point(spec)
        return PointResult(spec=spec, metrics=metrics, wall_time=time.perf_counter() - started)


def _execute_call(task: tuple[Callable[..., Any], Mapping[str, Any]]) -> Any:
    """Run one ``fn(**kwargs)`` task (top-level for picklability)."""
    fn, kwargs = task
    with fresh_instance_counters():
        return fn(**kwargs)


class RunnerBase:
    """Shared run/map plumbing; subclasses supply ``_map`` (the fan-out).

    Parameters
    ----------
    registry:
        Registry to resolve spec names against (defaults to the
        process-wide one).  A custom registry must hold module-level
        functions for the process-pool backends, so it can be pickled.
    cache:
        Optional :class:`~repro.runner.cache.ResultCache`.  ``run`` then
        consults it per point before executing, stores every freshly
        executed point, and stamps the returned store's
        ``cache_hits`` / ``cache_misses``.
    """

    backend_name = "base"

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        self._registry = registry
        self.cache = cache

    # ----------------------------------------------------------------- fan-out

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        raise NotImplementedError

    def map(self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]) -> list[Any]:
        """Run ``fn(**kwargs)`` per task, preserving input order."""
        return self._map(_execute_call, [(fn, kwargs) for kwargs in tasks])

    # --------------------------------------------------------- cache plumbing

    def _point_task(
        self, spec: ScenarioSpec
    ) -> tuple[ScenarioRegistry | None, ScenarioSpec, str | None]:
        """The ``_execute_point`` task for one spec, cache directory included."""
        cache_env = str(self.cache.root) if self.cache is not None else None
        return (self._registry, spec, cache_env)

    def _cache_partition(
        self, specs: Sequence[ScenarioSpec]
    ) -> tuple[dict[int, PointResult], list[str], list[tuple[int, ScenarioSpec]]]:
        """Split ``specs`` into replayed hits and still-pending points."""
        results: dict[int, PointResult] = {}
        keys: list[str] = []
        pending: list[tuple[int, ScenarioSpec]] = []
        for index, spec in enumerate(specs):
            key = self.cache.point_key(spec, registry=self._registry)
            keys.append(key)
            cached = self.cache.load_point(key, spec)
            if cached is not None:
                results[index] = cached
            else:
                pending.append((index, spec))
        return results, keys, pending

    def _cache_assemble(
        self,
        specs: Sequence[ScenarioSpec],
        results: dict[int, PointResult],
        keys: list[str],
        pending: list[tuple[int, ScenarioSpec]],
        executed: list[PointResult],
    ) -> ResultStore:
        """Store fresh executions and reassemble the store in spec order."""
        for (index, _), result in zip(pending, executed):
            self.cache.store_point(keys[index], result)
            results[index] = result
        store = ResultStore()
        store.extend(results[index] for index in range(len(specs)))
        store.cache_hits = len(specs) - len(pending)
        store.cache_misses = len(pending)
        return store

    # --------------------------------------------------------------------- run

    def run(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """Execute registered scenario points and aggregate their metrics.

        With a cache attached, each point's fingerprint-derived key is
        looked up first; only the misses are fanned out, and their results
        are stored back.  The assembled store preserves spec order either
        way, so a warm rerun's canonical artifact is byte-identical to the
        cold run that populated the cache.
        """
        if self.cache is None:
            store = ResultStore()
            store.extend(self._map(_execute_point, [self._point_task(spec) for spec in specs]))
            return store
        results, keys, pending = self._cache_partition(specs)
        executed = self._map(
            _execute_point, [self._point_task(spec) for _, spec in pending]
        )
        return self._cache_assemble(specs, results, keys, pending, executed)


class SerialRunner(RunnerBase):
    """Runs every point in the current process, one after another.

    The default backend: zero overhead, ideal for tiny sweeps and for unit
    tests, and the reference a parallel run must reproduce byte-for-byte.
    ``workers`` is accepted and ignored, so every registered backend shares
    one construction signature (the ``RUNNER_BACKENDS`` contract).
    """

    backend_name = "serial"

    def __init__(
        self,
        registry: ScenarioRegistry | None = None,
        cache: Optional[ResultCache] = None,
        *,
        workers: int | None = None,
    ) -> None:
        super().__init__(registry=registry, cache=cache)

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        return [worker(task) for task in tasks]


class _PoolSizingMixin:
    """Worker-count resolution shared by the process-pool backends."""

    workers: int | None

    def _pool_size(self, task_count: int) -> int:
        workers = self.workers if self.workers is not None else (os.cpu_count() or 1)
        return max(1, min(workers, task_count))


class ParallelRunner(_PoolSizingMixin, RunnerBase):
    """Fans points out over a ``multiprocessing`` pool.

    Parameters
    ----------
    workers:
        Worker process count; defaults to the machine's CPU count capped at
        the number of tasks submitted.
    registry / cache:
        See :class:`RunnerBase`.
    chunksize:
        Tasks handed to a worker at a time.  1 (the default) gives the best
        load balance for heterogeneous points like an α sweep, where the
        aggressive senders simulate many more events than the deferential
        ones.
    start_method:
        ``multiprocessing`` start method; ``None`` uses the platform default
        (``fork`` on Linux, which avoids re-import cost).
    """

    backend_name = "parallel"

    def __init__(
        self,
        workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        chunksize: int = 1,
        start_method: str | None = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if chunksize < 1:
            raise ConfigurationError(f"chunksize must be >= 1, got {chunksize!r}")
        super().__init__(registry=registry, cache=cache)
        self.workers = workers
        self.chunksize = chunksize
        self.start_method = start_method

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        if not tasks:
            return []
        pool_size = self._pool_size(len(tasks))
        if pool_size == 1 and self.workers in (None, 1):
            # Nothing to fan out — skip the pool entirely.
            return [worker(task) for task in tasks]
        context = multiprocessing.get_context(self.start_method)
        with context.Pool(processes=pool_size) as pool:
            # Pool.map preserves input order, which keeps artifacts canonical
            # regardless of completion order.
            return pool.map(worker, tasks, chunksize=self.chunksize)


class AsyncRunner(_PoolSizingMixin, RunnerBase):
    """Schedules points as asyncio tasks over a process-pool executor.

    The asyncio layer is the seam for overlap: while worker processes chew
    on simulation points, the event loop stays free for cache lookups,
    result streaming, or (future) remote backends awaiting network I/O.
    ``run``/``map`` stay synchronous — they spin the loop internally — and
    :meth:`run_async` / :meth:`map_async` expose the coroutine surface for
    callers that already live inside an event loop (pass their own
    executor lifetime implicitly per call).

    Parameters
    ----------
    workers:
        Executor process count; defaults to the CPU count capped at the
        number of submitted tasks.
    registry / cache:
        See :class:`RunnerBase`.
    max_in_flight:
        Cap on simultaneously *submitted* tasks; ``None`` submits
        everything at once.  Useful to bound memory when a sweep has many
        thousands of points.
    start_method:
        ``multiprocessing`` start method for the executor's workers.
    """

    backend_name = "async"

    def __init__(
        self,
        workers: int | None = None,
        registry: ScenarioRegistry | None = None,
        max_in_flight: int | None = None,
        start_method: str | None = None,
        cache: Optional[ResultCache] = None,
    ) -> None:
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers!r}")
        if max_in_flight is not None and max_in_flight < 1:
            raise ConfigurationError(
                f"max_in_flight must be >= 1, got {max_in_flight!r}"
            )
        super().__init__(registry=registry, cache=cache)
        self.workers = workers
        self.max_in_flight = max_in_flight
        self.start_method = start_method

    async def _gather(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        loop = asyncio.get_running_loop()
        context = multiprocessing.get_context(self.start_method)
        semaphore = (
            asyncio.Semaphore(self.max_in_flight)
            if self.max_in_flight is not None
            else None
        )
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=self._pool_size(len(tasks)), mp_context=context
        ) as pool:

            async def submit(task: Any) -> Any:
                if semaphore is None:
                    return await loop.run_in_executor(pool, worker, task)
                async with semaphore:
                    return await loop.run_in_executor(pool, worker, task)

            # gather preserves argument order, which keeps artifacts
            # canonical regardless of completion order.  On the first
            # failure, every sibling is cancelled before the pool shuts
            # down — not-yet-running submissions never execute — and the
            # original error propagates, not a CancelledError.
            pending = [asyncio.ensure_future(submit(task)) for task in tasks]
            try:
                return list(await asyncio.gather(*pending))
            except BaseException:
                for future in pending:
                    future.cancel()
                await asyncio.gather(*pending, return_exceptions=True)
                raise

    def _map(self, worker: Callable[[Any], Any], tasks: list[Any]) -> list[Any]:
        if not tasks:
            return []
        if self._pool_size(len(tasks)) == 1 and self.workers in (None, 1):
            return [worker(task) for task in tasks]
        return asyncio.run(self._gather(worker, tasks))

    # ------------------------------------------------------- coroutine surface

    async def map_async(
        self, fn: Callable[..., Any], tasks: Sequence[Mapping[str, Any]]
    ) -> list[Any]:
        """``map`` as a coroutine, for callers already inside an event loop."""
        if not tasks:
            return []
        return await self._gather(_execute_call, [(fn, kwargs) for kwargs in tasks])

    async def run_async(self, specs: Sequence[ScenarioSpec]) -> ResultStore:
        """``run`` as a coroutine (cache consulted on the event-loop thread).

        Shares :meth:`RunnerBase.run`'s cache partition/assemble helpers;
        only the fan-out in between is awaited instead of blocked on.
        """

        async def gather(tasks: list[Any]) -> list[Any]:
            return await self._gather(_execute_point, tasks) if tasks else []

        if self.cache is None:
            store = ResultStore()
            store.extend(await gather([self._point_task(spec) for spec in specs]))
            return store
        results, keys, pending = self._cache_partition(specs)
        executed = await gather([self._point_task(spec) for _, spec in pending])
        return self._cache_assemble(specs, results, keys, pending, executed)


#: Any execution backend — what experiment sweeps accept as ``runner=``.
RunnerBackend = RunnerBase

#: Runner backends by name — the registry ``make_runner`` and the CLI's
#: ``--backend`` flag resolve through, mirroring ``BELIEF_BACKENDS`` /
#: ``ROLLOUT_BACKENDS``.  Third-party backends register a RunnerBase
#: subclass accepting ``(workers=, registry=, cache=)`` keywords.
RUNNER_BACKENDS = BackendRegistry(
    "runner",
    builtin_modules={
        "serial": "repro.runner.backends",
        "parallel": "repro.runner.backends",
        "async": "repro.runner.backends",
    },
)
RUNNER_BACKENDS.register("serial", SerialRunner)
RUNNER_BACKENDS.register("parallel", ParallelRunner)
RUNNER_BACKENDS.register("async", AsyncRunner)


def make_runner(
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
    cache: Optional[ResultCache] = None,
    cache_dir: "str | os.PathLike[str] | None" = None,
) -> RunnerBase:
    """Build a backend by name — the switch the CLI and examples expose.

    ``cache_dir`` is shorthand for ``cache=ResultCache(cache_dir)``; an
    explicit ``cache`` instance wins when both are given.  ``workers`` is
    accepted (and ignored) by the serial backend so sweep code can thread
    one knob through regardless of the chosen backend.
    """
    cls = RUNNER_BACKENDS.resolve(backend)
    if cache is None and cache_dir is not None:
        cache = ResultCache(cache_dir)
    return cls(workers=workers, registry=registry, cache=cache)


def run_specs(
    specs: Sequence[ScenarioSpec],
    backend: str = "serial",
    workers: int | None = None,
    registry: ScenarioRegistry | None = None,
    cache: Optional[ResultCache] = None,
    cache_dir: "str | os.PathLike[str] | None" = None,
) -> ResultStore:
    """One-call convenience: build a backend and run ``specs`` through it."""
    return make_runner(
        backend=backend,
        workers=workers,
        registry=registry,
        cache=cache,
        cache_dir=cache_dir,
    ).run(specs)
