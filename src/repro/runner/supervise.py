"""Supervised point execution: timeouts, retries, backoff, quarantine.

The unsupervised fan-out paths (``pool.map``, the asyncio gather) are fast
but brittle: one poisoned point fails the sweep, a killed worker loses its
task, and a hung point blocks forever.  This module is the robust
alternative the backends switch to when a :class:`Supervision` policy is
attached:

* every in-flight point runs in its *own* worker process (fork-cheap on
  Linux), so the supervisor holds a pid it can actually kill;
* liveness is heartbeat-based — a worker beats once when it starts its
  point, and a point that has not completed within ``point_timeout`` of
  its last beat is killed and treated as hung;
* failures (exceptions, worker death, hangs) are retried up to
  ``max_retries`` times with exponential backoff and *deterministic*
  seeded jitter, so a replayed chaos run schedules identically;
* a point that exhausts its retries is **quarantined** — recorded with
  its error and traceback instead of poisoning the sweep — unless
  ``strict`` asks for fail-fast (:class:`~repro.errors.PointFailureError`);
* user-initiated cancellation (``KeyboardInterrupt`` / ``CancelledError``)
  is never retried or quarantined: all workers are killed and the
  interrupt propagates promptly.

The driver reports every transition to an observer (the runner wires in
the sweep journal and the result cache), which is what makes a supervised
sweep durable and resumable.
"""

from __future__ import annotations

import gc
import hashlib
import os
import time
import traceback as traceback_module
from dataclasses import dataclass, field
from heapq import heappop, heappush
from multiprocessing import connection
from typing import Any, Callable, Optional, Sequence

from repro.errors import PointFailureError
from repro.runner.faults import (
    NO_FAULTS,
    KILLED_WORKER_EXIT,
    FaultAssignment,
    FaultPlan,
    perform_fault,
)
from repro.runner.results import PointResult, QuarantinedPoint
from repro.runner.spec import ScenarioSpec

__all__ = [
    "Supervision",
    "SupervisedJob",
    "SupervisedOutcome",
    "SweepObserver",
    "run_supervised",
]

#: Exception names from a worker that mean "the user cancelled", which must
#: shut the sweep down promptly instead of being retried or quarantined.
_CANCEL_NAMES = ("KeyboardInterrupt", "CancelledError")

#: Supervisor poll tick (seconds) — bounds hang-detection latency.
_TICK = 0.05


@dataclass(frozen=True)
class Supervision:
    """Fault-tolerance policy for one sweep.

    Parameters
    ----------
    max_retries:
        Failed attempts a point may retry before being quarantined (or,
        under ``strict``, failing the sweep).
    point_timeout:
        Seconds a point may run past its last heartbeat before the
        supervisor kills it as hung.  ``None`` disables hang detection.
        Enforced by the process backends; the serial backend executes
        inline and cannot preempt a hung point.
    backoff / backoff_cap:
        Base delay before retry ``k`` is ``backoff * 2**(k-1)``, jittered
        and capped at ``backoff_cap``.
    jitter:
        Relative jitter width: the delay is scaled by a deterministic
        factor in ``[1 - jitter/2, 1 + jitter/2]`` derived from
        ``(seed, point identity, attempt)`` — seeded, so replays schedule
        byte-identically.
    seed:
        Seeds the jitter stream (independent of the points' RNG seeds).
    strict:
        ``True`` restores fail-fast: the first exhausted point raises
        :class:`~repro.errors.PointFailureError`.  The default degrades
        gracefully to partial results with quarantine records.
    fault_plan:
        Optional :class:`~repro.runner.faults.FaultPlan` to inject
        deliberate failures — the chaos harness the recovery paths are
        tested against.
    """

    max_retries: int = 2
    point_timeout: Optional[float] = None
    backoff: float = 0.1
    backoff_cap: float = 5.0
    jitter: float = 0.5
    seed: int = 0
    strict: bool = False
    fault_plan: Optional[FaultPlan] = None

    def delay(self, key: str, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based) of point ``key``."""
        if attempt < 1 or self.backoff <= 0.0:
            return 0.0
        base = self.backoff * 2.0 ** (attempt - 1)
        digest = hashlib.sha256(
            f"{self.seed}:backoff:{key}:{attempt}".encode("utf-8")
        ).digest()
        uniform = int.from_bytes(digest[:8], "big") / 2.0**64
        jittered = base * (1.0 + self.jitter * (uniform - 0.5))
        return min(jittered, self.backoff_cap)


@dataclass(frozen=True)
class SupervisedJob:
    """One pending point: its grid index, spec, and the worker's task."""

    index: int
    spec: ScenarioSpec
    task: Any


@dataclass
class SupervisedOutcome:
    """What a supervised fan-out produced, keyed by grid index."""

    results: dict[int, PointResult] = field(default_factory=dict)
    quarantined: dict[int, QuarantinedPoint] = field(default_factory=dict)
    retries: int = 0


class SweepObserver:
    """No-op observer; the runner subclasses it to journal and cache."""

    def on_running(self, index: int, attempt: int) -> None:  # pragma: no cover
        pass

    def on_done(self, index: int, result: PointResult) -> None:  # pragma: no cover
        pass

    def on_failed(self, index: int, attempt: int, error: str) -> None:  # pragma: no cover
        pass

    def on_quarantined(self, index: int, point: QuarantinedPoint) -> None:  # pragma: no cover
        pass


# --------------------------------------------------------------- worker side


def _child_main(
    conn: connection.Connection,
    worker: Callable[[Any], Any],
    task: Any,
    fault: str | None,
    hang_seconds: float,
    label: str,
) -> None:
    """Run one attempt in a dedicated worker process.

    Protocol on ``conn``: ``("beat",)`` once at start (the heartbeat the
    hang detector times against), then ``("ok", result)`` or
    ``("err", type_name, message, traceback)``.  A worker that dies
    without a final message is classified as killed by its exit code.
    """
    try:
        conn.send(("beat",))
        if fault is not None:
            perform_fault(fault, hang_seconds=hang_seconds, label=label, in_worker=True)
        result = worker(task)
        conn.send(("ok", result))
    except BaseException as error:  # noqa: BLE001 - everything must be reported
        try:
            conn.send(
                (
                    "err",
                    type(error).__name__,
                    str(error),
                    traceback_module.format_exc(),
                )
            )
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover - defensive
            pass
        # Skip interpreter finalization: the result is already delivered,
        # and a forked child's teardown would copy-on-write (and then free)
        # every page it inherited — easily dwarfing the point itself.  The
        # pipe above is the only resource that needed an orderly goodbye.
        os._exit(0)


# ----------------------------------------------------------- supervisor side


@dataclass
class _InFlight:
    """Bookkeeping for one running worker."""

    job: SupervisedJob
    attempt: int
    process: Any
    conn: connection.Connection
    launched: float
    beat: Optional[float] = None
    final: Optional[tuple] = None

    @property
    def deadline_base(self) -> float:
        return self.beat if self.beat is not None else self.launched


class _Driver:
    def __init__(
        self,
        jobs: Sequence[SupervisedJob],
        worker: Callable[[Any], Any],
        *,
        supervision: Supervision,
        assignment: FaultAssignment,
        observer: SweepObserver,
        workers: int,
        mp_context: Any,
    ) -> None:
        self.worker = worker
        self.sup = supervision
        self.assignment = assignment
        self.observer = observer
        self.workers = max(1, workers)
        self.context = mp_context
        self.outcome = SupervisedOutcome()
        self._seq = 0
        #: Min-heap of (ready_at, seq, job, attempt) awaiting a worker slot.
        self.queue: list[tuple[float, int, SupervisedJob, int]] = []
        self.running: dict[Any, _InFlight] = {}  # sentinel → info
        for job in jobs:
            self._enqueue(job, attempt=0, ready_at=0.0)

    # ------------------------------------------------------------- scheduling

    def _enqueue(self, job: SupervisedJob, attempt: int, ready_at: float) -> None:
        heappush(self.queue, (ready_at, self._seq, job, attempt))
        self._seq += 1

    def _launch_ready(self) -> None:
        now = time.monotonic()
        while self.queue and len(self.running) < self.workers and self.queue[0][0] <= now:
            _, _, job, attempt = heappop(self.queue)
            self.observer.on_running(job.index, attempt)
            fault = self.assignment.fault_for(job.index, attempt)
            parent_conn, child_conn = self.context.Pipe(duplex=False)
            process = self.context.Process(
                target=_child_main,
                args=(
                    child_conn,
                    self.worker,
                    job.task,
                    fault,
                    self.assignment.hang_seconds,
                    job.spec.label,
                ),
                daemon=False,
            )
            process.start()
            child_conn.close()
            self.running[process.sentinel] = _InFlight(
                job=job,
                attempt=attempt,
                process=process,
                conn=parent_conn,
                launched=time.monotonic(),
            )

    def _wait_timeout(self) -> float:
        now = time.monotonic()
        timeout = _TICK if self.sup.point_timeout is not None else 0.5
        if self.queue and len(self.running) < self.workers:
            # A retry is backing off into a free slot: wake when it's due.
            # (A ready job with a free slot was already launched, so this
            # delta is positive and the wait never busy-spins.)
            timeout = min(timeout, max(0.0, self.queue[0][0] - now))
        return timeout

    # --------------------------------------------------------------- messages

    def _drain(self, info: _InFlight) -> None:
        try:
            while info.conn.poll(0):
                message = info.conn.recv()
                if message[0] == "beat":
                    info.beat = time.monotonic()
                else:
                    info.final = message
        except (EOFError, OSError):
            pass

    # --------------------------------------------------------------- failures

    def _failure(self, info: _InFlight, reason: str, trace: str = "") -> None:
        job, attempt = info.job, info.attempt
        if attempt < self.sup.max_retries:
            self.outcome.retries += 1
            self.observer.on_failed(job.index, attempt, reason)
            delay = self.sup.delay(job.spec.canonical(), attempt + 1)
            self._enqueue(job, attempt + 1, time.monotonic() + delay)
            return
        attempts = attempt + 1
        if self.sup.strict:
            self._kill_all()
            raise PointFailureError(job.spec, attempts, reason)
        point = QuarantinedPoint(
            spec=job.spec, error=reason, traceback=trace, attempts=attempts
        )
        self.outcome.quarantined[job.index] = point
        self.observer.on_quarantined(job.index, point)

    def _kill_all(self) -> None:
        for info in self.running.values():
            try:
                info.process.kill()
            except Exception:  # pragma: no cover - already dead
                pass
        for info in self.running.values():
            info.process.join()
            info.conn.close()
        self.running.clear()

    # ------------------------------------------------------------ transitions

    def _finalize(self, sentinel: Any) -> None:
        info = self.running.pop(sentinel)
        self._drain(info)
        info.process.join()
        info.conn.close()
        final = info.final
        if final is not None and final[0] == "ok":
            self.outcome.results[info.job.index] = final[1]
            self.observer.on_done(info.job.index, final[1])
            return
        if final is not None and final[0] == "err":
            _, name, message, trace = final
            if name in _CANCEL_NAMES:
                # User-initiated cancellation: never a point failure.
                self._kill_all()
                raise KeyboardInterrupt(message or name)
            self._failure(info, f"{name}: {message}", trace)
            return
        code = info.process.exitcode
        label = "injected kill" if code == KILLED_WORKER_EXIT else "worker died"
        self._failure(info, f"{label} (exit code {code})")

    def _reap_hangs(self) -> None:
        if self.sup.point_timeout is None:
            return
        now = time.monotonic()
        for sentinel, info in list(self.running.items()):
            self._drain(info)
            if info.final is not None or not info.process.is_alive():
                continue
            if now - info.deadline_base > self.sup.point_timeout:
                info.process.kill()
                info.process.join()
                info.conn.close()
                self.running.pop(sentinel)
                self._failure(
                    info, f"hang (no result within {self.sup.point_timeout:g}s of last heartbeat)"
                )

    # --------------------------------------------------------------- main loop

    def run(self) -> SupervisedOutcome:
        # Freeze the heap before fanning out: every point forks a fresh
        # child, and a child's first GC pass would otherwise scan — and
        # copy-on-write — every page inherited from this process, costing
        # more than a short point itself.  Frozen objects are exempt from
        # collection in parent and children alike; unfreeze restores
        # normal collection once the sweep is done.
        gc.collect()
        gc.freeze()
        try:
            while self.queue or self.running:
                self._launch_ready()
                if not self.running:
                    # Every pending retry is backing off; nothing to wait on.
                    time.sleep(min(self._wait_timeout(), _TICK))
                    continue
                ready = connection.wait(
                    list(self.running) + [info.conn for info in self.running.values()],
                    timeout=self._wait_timeout(),
                )
                fired = set()
                for handle in ready:
                    for sentinel, info in self.running.items():
                        if handle is sentinel or handle is info.conn:
                            fired.add(sentinel)
                for sentinel in fired:
                    info = self.running.get(sentinel)
                    if info is None:
                        continue
                    self._drain(info)
                    if info.final is not None or not info.process.is_alive():
                        self._finalize(sentinel)
                self._reap_hangs()
            return self.outcome
        except BaseException:
            self._kill_all()
            raise
        finally:
            gc.unfreeze()


# ---------------------------------------------------------------- serial path


def _run_inline(
    jobs: Sequence[SupervisedJob],
    worker: Callable[[Any], Any],
    *,
    supervision: Supervision,
    assignment: FaultAssignment,
    observer: SweepObserver,
) -> SupervisedOutcome:
    """Serial supervision: same retry/quarantine semantics, in-process.

    No preemption is possible here, so ``point_timeout`` is not enforced
    (an injected hang simply sleeps) and ``kill`` faults take the whole
    sweep down — which is exactly what the journal-and-resume path is for.
    """
    outcome = SupervisedOutcome()
    for job in jobs:
        attempt = 0
        while True:
            observer.on_running(job.index, attempt)
            fault = assignment.fault_for(job.index, attempt)
            try:
                if fault is not None:
                    perform_fault(
                        fault,
                        hang_seconds=assignment.hang_seconds,
                        label=job.spec.label,
                        in_worker=False,
                    )
                result = worker(job.task)
            except (KeyboardInterrupt, SystemExit):
                raise
            except BaseException as error:  # noqa: BLE001 - quarantine anything
                if type(error).__name__ in _CANCEL_NAMES:
                    raise
                reason = f"{type(error).__name__}: {error}"
                if attempt < supervision.max_retries:
                    outcome.retries += 1
                    observer.on_failed(job.index, attempt, reason)
                    time.sleep(supervision.delay(job.spec.canonical(), attempt + 1))
                    attempt += 1
                    continue
                if supervision.strict:
                    raise PointFailureError(job.spec, attempt + 1, reason) from error
                point = QuarantinedPoint(
                    spec=job.spec,
                    error=reason,
                    traceback=traceback_module.format_exc(),
                    attempts=attempt + 1,
                )
                outcome.quarantined[job.index] = point
                observer.on_quarantined(job.index, point)
                break
            else:
                outcome.results[job.index] = result
                observer.on_done(job.index, result)
                break
    return outcome


# ------------------------------------------------------------------ front door


def run_supervised(
    jobs: Sequence[SupervisedJob],
    worker: Callable[[Any], Any],
    *,
    supervision: Supervision,
    assignment: FaultAssignment = NO_FAULTS,
    observer: Optional[SweepObserver] = None,
    workers: int = 1,
    mp_context: Any = None,
) -> SupervisedOutcome:
    """Execute ``jobs`` under supervision and return per-index outcomes.

    ``mp_context`` selects the engine: a :mod:`multiprocessing` context
    runs one worker process per in-flight point (timeouts, kill recovery);
    ``None`` runs inline (the serial backend).
    """
    observer = observer if observer is not None else SweepObserver()
    if not jobs:
        return SupervisedOutcome()
    if mp_context is None:
        return _run_inline(
            jobs, worker, supervision=supervision, assignment=assignment, observer=observer
        )
    driver = _Driver(
        jobs,
        worker,
        supervision=supervision,
        assignment=assignment,
        observer=observer,
        workers=workers,
        mp_context=mp_context,
    )
    return driver.run()
