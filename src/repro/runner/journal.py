"""Durable sweep journal: append-only, crash-safe per-point state.

A supervised sweep records every point-state transition
(``running → done / failed / quarantined``) as one JSON line in an
append-only journal keyed by the grid's digest
(:func:`~repro.runner.spec.grid_digest`), so a sweep killed mid-grid —
worker death, OOM, a SIGKILL to the whole process — can be resumed:
``run_specs(..., resume=True)`` replays ``done`` records (metrics and wall
time are stored inline, so resume works with or without a result cache)
and re-enqueues everything still ``running`` or ``failed`` at the time of
death.

Durability model
----------------
Each record is a single ``write()`` of one ``\\n``-terminated line,
flushed immediately — so a line is either wholly present or wholly absent
after a process kill, and :func:`replay_journal` simply ignores an
undecodable tail.  ``fsync`` is batched (every ``fsync_every`` appends and
at close) as a compromise between machine-crash durability and per-point
overhead; losing the last few un-synced ``done`` records to a power cut
merely re-executes those points on resume.

The journal lives under the cache directory (``<root>/journal/<grid>.jsonl``)
or an explicit ``journal_dir``, one file per grid digest — sweeps over
different grids never share a journal, and a *fresh* (non-resume) run of
the same grid truncates its journal and starts over.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalState",
    "SweepJournal",
    "journal_path",
    "replay_journal",
]

#: Journal line-format version; bumping it orphans existing journals
#: (replay treats a mismatched header as an empty journal).
JOURNAL_SCHEMA_VERSION = 1


def journal_path(root: str | os.PathLike[str], grid: str) -> Path:
    """Where the journal for grid digest ``grid`` lives under ``root``."""
    return Path(root) / "journal" / f"{grid}.jsonl"


@dataclass
class JournalState:
    """What a replayed journal says about each point of the grid.

    ``last`` maps grid index → the point's final recorded state line, from
    which the accessors partition the grid: ``done`` points are skipped on
    resume, while ``in_flight`` (``running`` with no terminal record —
    the points lost to the crash) and ``failed``/``quarantined`` points
    are re-enqueued fresh.
    """

    header: dict[str, Any] | None = None
    last: dict[int, dict[str, Any]] = field(default_factory=dict)
    complete: bool = False

    def _by_state(self, state: str) -> dict[int, dict[str, Any]]:
        return {i: rec for i, rec in self.last.items() if rec.get("state") == state}

    @property
    def done(self) -> dict[int, dict[str, Any]]:
        """Completed points: index → record carrying ``metrics``/``wall_time``."""
        return self._by_state("done")

    @property
    def in_flight(self) -> dict[int, dict[str, Any]]:
        """Points that were ``running`` when the journal stopped."""
        return self._by_state("running")

    @property
    def quarantined(self) -> dict[int, dict[str, Any]]:
        return self._by_state("quarantined")


def replay_journal(path: str | os.PathLike[str]) -> JournalState:
    """Reconstruct per-point state from a journal file.

    Tolerates everything a crash can leave behind: a missing file is an
    empty journal, an undecodable line (the torn tail of a killed append)
    is skipped, and a header with the wrong schema version voids the whole
    file rather than mis-resuming against a changed format.
    """
    state = JournalState()
    try:
        text = Path(path).read_text(encoding="utf-8")
    except (FileNotFoundError, OSError):
        return state
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn append — the line never durably happened
        if not isinstance(record, dict):
            continue
        if "journal" in record:
            if record.get("v") != JOURNAL_SCHEMA_VERSION:
                return JournalState()  # unknown format: resume from scratch
            if state.header is None:
                state.header = record
            continue
        if record.get("state") == "complete":
            state.complete = True
            continue
        index = record.get("i")
        if isinstance(index, int):
            state.last[index] = record
            state.complete = False
    return state


class SweepJournal:
    """Append-only writer for one sweep's journal file.

    Parameters
    ----------
    path:
        Journal file location (parents created on open).
    grid:
        The grid digest this journal records; stamped into the header so a
        replayed file is self-describing.
    points:
        Grid size, recorded in the header for forensics.
    append:
        ``True`` on resume — prior records are kept and a ``resume``
        header marks the new run's start.  ``False`` truncates.
    fsync_every:
        Batch size for fsync; every append is flushed regardless.
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        *,
        grid: str,
        points: int,
        append: bool = False,
        fsync_every: int = 16,
    ) -> None:
        self.path = Path(path)
        self.fsync_every = max(1, int(fsync_every))
        self._pending_sync = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "a" if append else "w", encoding="utf-8")
        self._append(
            {
                "journal": "repro.runner/sweep",
                "v": JOURNAL_SCHEMA_VERSION,
                "grid": grid,
                "points": points,
                "run": "resume" if append else "fresh",
            }
        )

    # -------------------------------------------------------------- recording

    def _append(self, record: Mapping[str, Any]) -> None:
        if self._file.closed:  # pragma: no cover - defensive
            return
        line = json.dumps(record, separators=(",", ":"), default=str)
        # One write per line: a killed process leaves at most one torn tail
        # line, which replay_journal discards.
        self._file.write(line + "\n")
        self._file.flush()
        self._pending_sync += 1
        if self._pending_sync >= self.fsync_every:
            self._fsync()

    def _fsync(self) -> None:
        if self._pending_sync and not self._file.closed:
            try:
                os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - fsync-less filesystems
                pass
            self._pending_sync = 0

    def running(self, index: int, attempt: int) -> None:
        self._append({"i": index, "state": "running", "attempt": attempt})

    def done(
        self,
        index: int,
        metrics: Mapping[str, Any],
        wall_time: float,
        *,
        source: str = "exec",
    ) -> None:
        # Metrics ride inline (insertion order preserved by JSON objects),
        # so a resumed store replays byte-identically without needing the
        # result cache.
        self._append(
            {
                "i": index,
                "state": "done",
                "metrics": dict(metrics),
                "wall_time": wall_time,
                "source": source,
            }
        )

    def failed(self, index: int, attempt: int, error: str) -> None:
        self._append({"i": index, "state": "failed", "attempt": attempt, "error": error})

    def quarantined(
        self, index: int, error: str, traceback: str, attempts: int
    ) -> None:
        self._append(
            {
                "i": index,
                "state": "quarantined",
                "error": error,
                "traceback": traceback,
                "attempts": attempts,
            }
        )

    def complete(self) -> None:
        """Mark the sweep finished (resume of a complete journal is a no-op)."""
        self._append({"state": "complete"})
        self._fsync()

    # ------------------------------------------------------------------ close

    def close(self) -> None:
        if not self._file.closed:
            self._fsync()
            self._file.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
