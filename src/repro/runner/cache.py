"""Persistent, fingerprint-keyed reuse of executed grid points.

A sweep's value here comes from running the paper's sender across many
scenarios — alpha grids, backend ablations, policy modes — and most of a
re-run repeats points an earlier run already executed.  :class:`ResultCache`
makes those repeats free: every executed :class:`~repro.runner.results.PointResult`
is stored on disk under a key derived from

* the spec identity (scenario name, canonical params, base seed), and
* the point's :meth:`~repro.api.config.SenderConfig.fingerprint`, when the
  scenario declares how its parameters map to a sender configuration
  (see ``config_factory`` on :class:`~repro.runner.registry.ScenarioEntry`).

The fingerprint component catches configuration-semantics drift that
scenario params alone cannot see — a changed ``SenderConfig`` default, a
bumped ``FINGERPRINT_VERSION`` — and the package version is folded into
every key so released behaviour changes invalidate wholesale.  What no key
can see is an *unreleased* edit to simulator or scenario code: after such a
change, bump :data:`CACHE_SCHEMA_VERSION` or point sweeps at a fresh
``--cache-dir`` (the cache is opt-in precisely so stale replay is never a
silent default).

Warm replays are bit-identical by construction — the cache stores the
point's metrics (and original wall time) and the runner reassembles the
same canonical :class:`~repro.runner.results.ResultStore` artifact, which
``benchmarks/bench_runner_cache.py`` gates at a ≥5× warm-rerun speedup.

Writes are atomic (process-unique temp file + :func:`os.replace`), so any
number of runner processes can share one cache directory.  A corrupted or
mismatched entry discovered at *read* time is never silently deleted: it
is moved to the cache's ``quarantine/`` subdirectory (preserving the
evidence for :mod:`repro.diagnostics` triage), counted on the instance's
``corrupt`` counter, and read as a miss — the next execution stores a
fresh entry in the vacated slot.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

from repro._persist import CACHE_DIR_ENV, atomic_write_text, default_cache_dir
from repro._version import __version__
from repro.api.config import canonical_digest
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.runner.results import PointResult
from repro.runner.spec import ScenarioSpec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "default_cache_dir",
]

#: Cache layout version; bumping it invalidates every stored point.
CACHE_SCHEMA_VERSION = 1


class ResultCache:
    """Disk-backed map from grid-point identity to executed results.

    Parameters
    ----------
    root:
        Directory to store entries under (created lazily on first write).
        Point files live at ``root/results/<key[:2]>/<key>.json``.

    Hit/miss/store counts accumulate on the instance; the runner copies
    them onto the :class:`~repro.runner.results.ResultStore` it returns so
    the CLI can report them per sweep.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Files that existed but could not be read back (corruption).
        self.invalid = 0
        #: Unreadable entries moved to ``quarantine/`` this session; the
        #: runner surfaces the per-run delta as ``ResultStore.cache_corrupt``.
        self.corrupt = 0

    # ---------------------------------------------------------------- identity

    def point_key(
        self, spec: ScenarioSpec, registry: Optional[ScenarioRegistry] = None
    ) -> str:
        """The cache key of one grid point.

        ``params`` enter the key exactly as the spec spells them — the
        same raw form :attr:`~repro.runner.spec.ScenarioSpec.derived_seed`
        hashes, so two spellings that execute with different derived seeds
        (an omitted default vs. the same value written out) never share a
        slot.  The *resolved defaults* are a separate key component: two
        registries that register one name with different defaults never
        share entries, and a changed signature or registration default
        invalidates naturally.  The scenario function's module-qualified
        identity and the scenario's config fingerprint tie the entry to
        the code object and the exact
        :class:`~repro.api.config.SenderConfig` semantics that produced it.
        """
        registry = registry if registry is not None else DEFAULT_REGISTRY
        entry = registry.get(spec.scenario)
        return canonical_digest(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "version": __version__,
                "scenario": spec.scenario,
                "fn": f"{entry.fn.__module__}.{entry.fn.__qualname__}",
                "params": spec.params,
                "defaults": entry.effective_params({}),
                "seed": spec.seed,
                "config": entry.config_fingerprint(spec.params),
            },
            length=64,
        )

    def _path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def _quarantine_entry(self, path: Path) -> None:
        """Move an unreadable entry aside (never silently delete it)."""
        self.invalid += 1
        self.corrupt += 1
        destination = self.root / "quarantine" / path.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, destination)
        except OSError:  # pragma: no cover - racing reader already moved it
            pass

    # ------------------------------------------------------------------ lookup

    def load_point(self, key: str, spec: ScenarioSpec) -> Optional[PointResult]:
        """The cached result under ``key``, or ``None`` (a miss).

        Every failure mode — missing file, truncated JSON, wrong schema,
        or an entry whose recorded spec does not match ``spec`` (hash
        paranoia) — reads as a miss.  An entry that *existed* but could
        not be trusted is quarantined (moved to ``quarantine/`` and
        counted on ``corrupt``), so the subsequent execution stores a
        fresh file and the evidence survives for triage.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._quarantine_entry(path)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("spec") != spec.canonical()
            or not isinstance(payload.get("metrics"), dict)
        ):
            self._quarantine_entry(path)
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(
            spec=spec,
            metrics=dict(payload["metrics"]),
            wall_time=float(payload.get("wall_time", 0.0)),
        )

    # ------------------------------------------------------------------- store

    def store_point(self, key: str, result: PointResult) -> Path:
        """Persist ``result`` under ``key`` (atomic, last writer wins)."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": result.spec.canonical(),
            "metrics": dict(result.metrics),
            "wall_time": result.wall_time,
        }
        # No sort_keys: the scenario's metric *insertion order* is part of
        # the replayed artifact (CSV columns and printed tables follow it),
        # and JSON object order survives the round trip.  default=str
        # matches ResultStore.to_json, so a replayed store serializes
        # byte-for-byte like the cold run that populated it.
        text = json.dumps(payload, separators=(",", ":"), default=str)
        path = atomic_write_text(self._path(key), text + "\n")
        self.stores += 1
        return path
