"""Persistent, fingerprint-keyed reuse of executed grid points.

A sweep's value here comes from running the paper's sender across many
scenarios — alpha grids, backend ablations, policy modes — and most of a
re-run repeats points an earlier run already executed.  :class:`ResultCache`
makes those repeats free: every executed :class:`~repro.runner.results.PointResult`
is stored on disk under a key derived from

* the spec identity (scenario name, canonical params, base seed), and
* the point's :meth:`~repro.api.config.SenderConfig.fingerprint`, when the
  scenario declares how its parameters map to a sender configuration
  (see ``config_factory`` on :class:`~repro.runner.registry.ScenarioEntry`).

The fingerprint component catches configuration-semantics drift that
scenario params alone cannot see — a changed ``SenderConfig`` default, a
bumped ``FINGERPRINT_VERSION`` — and the package version is folded into
every key so released behaviour changes invalidate wholesale.  What no key
can see is an *unreleased* edit to simulator or scenario code: after such a
change, bump :data:`CACHE_SCHEMA_VERSION` or point sweeps at a fresh
``--cache-dir`` (the cache is opt-in precisely so stale replay is never a
silent default).

Warm replays are bit-identical by construction — the cache stores the
point's metrics (and original wall time) and the runner reassembles the
same canonical :class:`~repro.runner.results.ResultStore` artifact, which
``benchmarks/bench_runner_cache.py`` gates at a ≥5× warm-rerun speedup.

Writes are atomic (process-unique temp file + :func:`os.replace`), so any
number of runner processes can share one cache directory.  A corrupted or
mismatched entry discovered at *read* time is never silently deleted: it
is moved to the cache's ``quarantine/`` subdirectory (preserving the
evidence for :mod:`repro.diagnostics` triage), counted on the instance's
``corrupt`` counter, and read as a miss — the next execution stores a
fresh entry in the vacated slot.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro._persist import (
    CACHE_DIR_ENV,
    atomic_write_text,
    default_cache_dir,
    quarantine_file,
)
from repro._version import __version__
from repro.api.config import canonical_digest
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioRegistry
from repro.runner.results import PointResult
from repro.runner.spec import ScenarioSpec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CacheGCReport",
    "CacheStats",
    "ResultCache",
    "default_cache_dir",
]

#: Cache layout version; bumping it invalidates every stored point.
CACHE_SCHEMA_VERSION = 1


class ResultCache:
    """Disk-backed map from grid-point identity to executed results.

    Parameters
    ----------
    root:
        Directory to store entries under (created lazily on first write).
        Point files live at ``root/results/<key[:2]>/<key>.json``.

    Hit/miss/store counts accumulate on the instance; the runner copies
    them onto the :class:`~repro.runner.results.ResultStore` it returns so
    the CLI can report them per sweep.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        #: Files that existed but could not be read back (corruption).
        self.invalid = 0
        #: Unreadable entries moved to ``quarantine/`` this session; the
        #: runner surfaces the per-run delta as ``ResultStore.cache_corrupt``.
        self.corrupt = 0

    # ---------------------------------------------------------------- identity

    def point_key(
        self, spec: ScenarioSpec, registry: Optional[ScenarioRegistry] = None
    ) -> str:
        """The cache key of one grid point.

        ``params`` enter the key exactly as the spec spells them — the
        same raw form :attr:`~repro.runner.spec.ScenarioSpec.derived_seed`
        hashes, so two spellings that execute with different derived seeds
        (an omitted default vs. the same value written out) never share a
        slot.  The *resolved defaults* are a separate key component: two
        registries that register one name with different defaults never
        share entries, and a changed signature or registration default
        invalidates naturally.  The scenario function's module-qualified
        identity and the scenario's config fingerprint tie the entry to
        the code object and the exact
        :class:`~repro.api.config.SenderConfig` semantics that produced it.
        """
        registry = registry if registry is not None else DEFAULT_REGISTRY
        entry = registry.get(spec.scenario)
        return canonical_digest(
            {
                "schema": CACHE_SCHEMA_VERSION,
                "version": __version__,
                "scenario": spec.scenario,
                "fn": f"{entry.fn.__module__}.{entry.fn.__qualname__}",
                "params": spec.params,
                "defaults": entry.effective_params({}),
                "seed": spec.seed,
                "config": entry.config_fingerprint(spec.params),
            },
            length=64,
        )

    def _path(self, key: str) -> Path:
        return self.root / "results" / key[:2] / f"{key}.json"

    def _quarantine_entry(self, path: Path) -> None:
        """Move an unreadable entry aside (never silently delete it)."""
        self.invalid += 1
        self.corrupt += 1
        quarantine_file(self.root, path)

    # ------------------------------------------------------------------ lookup

    def load_point(self, key: str, spec: ScenarioSpec) -> Optional[PointResult]:
        """The cached result under ``key``, or ``None`` (a miss).

        Every failure mode — missing file, truncated JSON, wrong schema,
        or an entry whose recorded spec does not match ``spec`` (hash
        paranoia) — reads as a miss.  An entry that *existed* but could
        not be trusted is quarantined (moved to ``quarantine/`` and
        counted on ``corrupt``), so the subsequent execution stores a
        fresh file and the evidence survives for triage.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self._quarantine_entry(path)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("spec") != spec.canonical()
            or not isinstance(payload.get("metrics"), dict)
        ):
            self._quarantine_entry(path)
            self.misses += 1
            return None
        self.hits += 1
        return PointResult(
            spec=spec,
            metrics=dict(payload["metrics"]),
            wall_time=float(payload.get("wall_time", 0.0)),
        )

    # ------------------------------------------------------------------- store

    def store_point(self, key: str, result: PointResult) -> Path:
        """Persist ``result`` under ``key`` (atomic, last writer wins)."""
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec": result.spec.canonical(),
            "metrics": dict(result.metrics),
            "wall_time": result.wall_time,
        }
        # No sort_keys: the scenario's metric *insertion order* is part of
        # the replayed artifact (CSV columns and printed tables follow it),
        # and JSON object order survives the round trip.  default=str
        # matches ResultStore.to_json, so a replayed store serializes
        # byte-for-byte like the cold run that populated it.
        text = json.dumps(payload, separators=(",", ":"), default=str)
        path = atomic_write_text(self._path(key), text + "\n")
        self.stores += 1
        return path

    # ------------------------------------------------------------ housekeeping

    #: Subdirectories whose files are regenerable artifacts the GC may
    #: prune.  The journal is deliberately excluded: it is the resume state
    #: of a possibly-interrupted sweep, not a cache.
    GC_SUBDIRS = ("results", "policy")

    def artifact_files(self) -> Iterator[Path]:
        """Every prunable artifact file (results and policy tables)."""
        for subdir in self.GC_SUBDIRS:
            base = self.root / subdir
            if base.is_dir():
                yield from sorted(p for p in base.rglob("*.json") if p.is_file())

    def corpus_files(self) -> Iterator[Path]:
        """Prunable trace-corpus blobs under ``corpus/traces/``.

        The corpus manifest (``corpus/manifest.json``) is deliberately
        *not* yielded: it is the index that makes every blob regenerable
        (generator entries rebuild from their recorded family/params/seed;
        ingested entries name their source file), so pruning it would turn
        a cheap recomputation into data loss.  Blobs themselves are fair
        game — the corpus store rebuilds or re-verifies them on demand.
        """
        base = self.root / "corpus" / "traces"
        if base.is_dir():
            yield from sorted(p for p in base.rglob("*.json") if p.is_file())

    def corpus_manifest_path(self) -> Path:
        """The co-located corpus manifest (never pruned)."""
        return self.root / "corpus" / "manifest.json"

    def quarantine_files(self) -> Iterator[Path]:
        """Every quarantined file (corrupt entries moved aside at read time)."""
        base = self.root / "quarantine"
        if base.is_dir():
            yield from sorted(p for p in base.iterdir() if p.is_file())

    def stats(self) -> "CacheStats":
        """Sizes and ages of everything under the cache directory."""
        stats = CacheStats(root=self.root)
        now = time.time()
        for path in self.artifact_files():
            info = path.stat()
            stats.entries += 1
            stats.bytes += info.st_size
            stats.oldest_age_s = max(stats.oldest_age_s, now - info.st_mtime)
        for path in self.corpus_files():
            info = path.stat()
            stats.corpus_entries += 1
            stats.corpus_bytes += info.st_size
        manifest = self.corpus_manifest_path()
        if manifest.is_file():
            stats.corpus_bytes += manifest.stat().st_size
        for path in self.quarantine_files():
            info = path.stat()
            stats.quarantined += 1
            stats.quarantined_bytes += info.st_size
        return stats

    def gc(
        self,
        *,
        max_age_s: Optional[float] = None,
        max_total_bytes: Optional[int] = None,
        sweep_quarantine: bool = False,
        dry_run: bool = False,
        now: Optional[float] = None,
    ) -> "CacheGCReport":
        """Prune cached artifacts by age and total size; optionally sweep
        the quarantine directory.

        Age pruning removes every results/policy artifact and corpus trace
        blob older than ``max_age_s``; size pruning then removes
        oldest-first until the remainder fits ``max_total_bytes``.  Both
        criteria apply to the regenerable stores only — the sweep journal
        and the corpus manifest are never touched.  The
        ``quarantine/`` directory (which otherwise grows without bound, one
        file per corruption ever observed) is emptied when
        ``sweep_quarantine`` is set; its files have normally been triaged
        by then.  ``dry_run`` reports what would be removed without
        touching anything.  Concurrent readers are safe: a pruned entry
        simply reads as a miss and is recomputed.
        """
        report = CacheGCReport(dry_run=dry_run)
        clock = time.time() if now is None else now
        survivors: list[tuple[float, Path, int]] = []
        # Corpus blobs are regenerable from the manifest, so they prune by
        # the same criteria; the manifest itself is never in this list.
        prunable = list(self.artifact_files()) + list(self.corpus_files())
        for path in prunable:
            info = path.stat()
            if max_age_s is not None and clock - info.st_mtime > max_age_s:
                report.removed.append(path)
                report.freed_bytes += info.st_size
            else:
                survivors.append((info.st_mtime, path, info.st_size))
        if max_total_bytes is not None:
            survivors.sort()  # oldest first
            total = sum(size for _, _, size in survivors)
            while survivors and total > max_total_bytes:
                _, path, size = survivors.pop(0)
                report.removed.append(path)
                report.freed_bytes += size
                total -= size
        if sweep_quarantine:
            for path in self.quarantine_files():
                report.quarantine_removed.append(path)
                report.quarantine_freed_bytes += path.stat().st_size
        if not dry_run:
            for path in report.removed + report.quarantine_removed:
                try:
                    path.unlink()
                except FileNotFoundError:  # pragma: no cover - racing GC
                    pass
        return report


@dataclass
class CacheStats:
    """What ``python -m repro.runner cache list`` reports."""

    root: Path
    entries: int = 0
    bytes: int = 0
    #: Trace blobs in the co-located corpus store (manifest excluded from
    #: the count; its size is folded into ``corpus_bytes``).
    corpus_entries: int = 0
    corpus_bytes: int = 0
    quarantined: int = 0
    quarantined_bytes: int = 0
    oldest_age_s: float = 0.0


@dataclass
class CacheGCReport:
    """What a :meth:`ResultCache.gc` pass removed (or would remove)."""

    dry_run: bool = False
    removed: list[Path] = field(default_factory=list)
    freed_bytes: int = 0
    quarantine_removed: list[Path] = field(default_factory=list)
    quarantine_freed_bytes: int = 0
