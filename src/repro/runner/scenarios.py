"""Built-in scenarios: the paper's figure experiments plus grid workloads.

Each scenario is a module-level function registered on the default
registry.  It receives the point's derived ``seed`` plus its parameters and
returns a flat dict of numeric summary metrics — the representation the
result store serializes canonically, so two runs of the same spec can be
compared byte-for-byte.

This module is imported lazily by the registry (first name resolution), so
``repro.experiments`` can import the runner backends without a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.api.config import SenderConfig, canonical_digest
from repro.api.pool import BatchedSenderPool
from repro.api.sender import build_components
from repro.baselines.aimd import AimdSender
from repro.baselines.cubic import CubicSender
from repro.baselines.newreno import NewRenoSender
from repro.baselines.reno import RenoSender
from repro.cellular.link import CellularLink, TraceDrivenLink
from repro.cellular.trace import RateProcess, constant_rate_process
from repro.core.isender import ISender
from repro.corpus.store import open_corpus_store
from repro.elements.buffer import Buffer
from repro.elements.delay import Delay
from repro.elements.diverter import FlowDemux
from repro.elements.loss import Loss
from repro.elements.receiver import Receiver
from repro.elements.throughput import Throughput
from repro.errors import ConfigurationError
from repro.experiments.ablation import run_ablation_point
from repro.experiments.comparison import run_loss_comparison
from repro.experiments.figure1 import run_figure1
from repro.experiments.figure3 import run_figure3_point
from repro.experiments.simple import run_convergence_scenario, run_drain_scenario
from repro.inference.prior import single_link_prior
from repro.metrics.fairness import convergence_time, flow_rate_matrix, jain_index
from repro.runner.registry import scenario
from repro.runner.spec import ScenarioSpec, grid
from repro.sim.element import Network
from repro.units import DEFAULT_PACKET_BITS

# ------------------------------------------------------------ config factories
#
# Scenarios that build a SenderConfig declare how their parameters map to
# one, in a single place shared by the scenario body and the registry's
# ``config_factory`` hook.  The result cache folds the factory's
# ``fingerprint()`` into each point's key, so cached points invalidate when
# configuration semantics change (a new SenderConfig default, a bumped
# FINGERPRINT_VERSION) even though the scenario params did not.
#
# Factories index ``params`` rather than carrying their own defaults: the
# registry hands them the point's *effective* params (signature defaults
# already resolved via ``ScenarioEntry.effective_params``), so a changed
# scenario-signature default can never drift from what the cache keys on.


def figure3_alpha_config(params: Mapping[str, Any]) -> SenderConfig:
    """The :class:`SenderConfig` a ``figure3_alpha`` point builds."""
    return SenderConfig(
        belief_backend=params["belief_backend"],
        rollout_backend=params["rollout_backend"],
        policy=params["policy"],
    )


def inference_ablation_config(params: Mapping[str, Any]) -> SenderConfig:
    """The :class:`SenderConfig` an ``inference_ablation_point`` builds."""
    policy = params["policy"]
    if not policy:
        policy = "cache" if params["use_policy_cache"] else "none"
    return SenderConfig(
        kernel=params["kernel"],
        kernel_scale=params["kernel_scale"],
        max_hypotheses=params["max_hypotheses"],
        top_k=params["top_k"],
        belief_backend=params["backend"],
        rollout_backend=params["rollout_backend"],
        policy=policy,
    )


# --------------------------------------------------------------------- figures


@scenario()
def figure1(
    seed: int = 7,
    duration: float = 90.0,
    nominal_rate_bps: float = 4_000_000.0,
    buffer_seconds: float = 10.0,
    link_loss_rate: float = 0.05,
) -> dict[str, float]:
    """Figure 1: RTT inflation of a TCP download over a bufferbloated cellular link."""
    result = run_figure1(
        duration=duration,
        nominal_rate_bps=nominal_rate_bps,
        buffer_seconds=buffer_seconds,
        link_loss_rate=link_loss_rate,
        seed=seed,
    )
    return {
        "base_rtt_s": result.base_rtt,
        "min_rtt_s": result.rtt.min(),
        "median_rtt_s": result.median_rtt,
        "max_rtt_s": result.max_rtt,
        "inflation_factor": result.inflation_factor,
        "throughput_bps": result.throughput_bps,
        "link_layer_retransmissions": result.link_layer_retransmissions,
        "buffer_drops": result.buffer_drops,
        "peak_buffer_bits": result.peak_buffer_bits,
    }


@scenario(config_factory=figure3_alpha_config)
def figure3_alpha(
    seed: int = 1,
    alpha: float = 1.0,
    duration: float = 90.0,
    switch_interval: float = 30.0,
    link_rate_bps: float = 12_000.0,
    cross_fraction: float = 0.7,
    loss_rate: float = 0.2,
    buffer_capacity_bits: float = 96_000.0,
    belief_backend: str = "scalar",
    rollout_backend: str = "scalar",
    policy: str = "none",
) -> dict[str, float]:
    """Figure 3: one α point of the cross-traffic-priority sweep.

    ``belief_backend`` / ``rollout_backend`` / ``policy`` select the
    engines through :class:`repro.api.SenderConfig`, so the CLI can sweep
    engine and policy combinations over the paper's main experiment::

        python -m repro.runner run figure3_alpha \\
            --sweep rollout_backend=scalar,vectorized --sweep policy=none,cache
    """
    result = run_figure3_point(
        alpha=alpha,
        duration=duration,
        switch_interval=switch_interval,
        link_rate_bps=link_rate_bps,
        cross_fraction=cross_fraction,
        loss_rate=loss_rate,
        buffer_capacity_bits=buffer_capacity_bits,
        seed=seed,
        settings=figure3_alpha_config(
            {
                "belief_backend": belief_backend,
                "rollout_backend": rollout_backend,
                "policy": policy,
            }
        ),
    )
    return {
        "alpha": alpha,
        "packets_sent": result.packets_sent,
        "packets_acked": result.packets_acked,
        "rate_cross_on_1_bps": result.rate_on1_bps,
        "rate_cross_off_bps": result.rate_off_bps,
        "rate_cross_on_2_bps": result.rate_on2_bps,
        "cross_rate_on_2_bps": result.cross_rate_on2_bps,
        "buffer_drops": result.buffer_drops,
        "cross_drops": result.cross_drops,
        "final_hypotheses": result.final_hypotheses,
        "degenerate_updates": result.degenerate_updates,
    }


@scenario()
def convergence(
    seed: int = 3,
    duration: float = 60.0,
    link_rate_bps: float = 12_000.0,
    buffer_capacity_bits: float = 96_000.0,
) -> dict[str, float]:
    """Scenario A of §4: the sender infers an unknown link speed and converges."""
    result = run_convergence_scenario(
        true_link_rate_bps=link_rate_bps,
        duration=duration,
        buffer_capacity_bits=buffer_capacity_bits,
        seed=seed,
    )
    return {
        "converged": int(result.converged),
        "true_link_rate_bps": result.true_link_rate_bps,
        "inferred_link_rate_bps": result.inferred_link_rate_bps,
        "early_rate_bps": result.early_rate_bps,
        "late_rate_bps": result.late_rate_bps,
        "packets_sent": result.packets_sent,
        "posterior_true_rate_probability": result.posterior_true_rate_probability,
    }


@scenario()
def drain(
    seed: int = 3,
    duration: float = 40.0,
    initial_fill_bits: float = 48_000.0,
    latency_penalty: float = 0.1,
) -> dict[str, float]:
    """Scenario B of §4: the latency-penalizing sender waits for the buffer to drain."""
    result = run_drain_scenario(
        duration=duration,
        initial_fill_bits=initial_fill_bits,
        latency_penalty=latency_penalty,
        seed=seed,
    )
    return {
        "first_send_plain_s": result.first_send_plain,
        "first_send_penalized_s": result.first_send_penalized,
        "late_rate_plain_bps": result.late_rate_plain_bps,
        "late_rate_penalized_bps": result.late_rate_penalized_bps,
        "drain_time_s": result.drain_time,
        "penalized_waits_longer": int(result.penalized_sender_waits_longer),
    }


@scenario()
def loss_comparison(
    seed: int = 5,
    duration: float = 90.0,
    loss_rate: float = 0.2,
    link_rate_bps: float = 12_000.0,
) -> dict[str, float]:
    """§1/§2 headline: loss-blind TCP vs. the model-based sender on a lossy link."""
    result = run_loss_comparison(
        loss_rate=loss_rate,
        link_rate_bps=link_rate_bps,
        duration=duration,
        seed=seed,
    )
    return {
        "tcp_goodput_bps": result.tcp_goodput_bps,
        "tcp_utilization": result.tcp_utilization,
        "tcp_timeouts": result.tcp_timeouts,
        "isender_goodput_bps": result.isender_goodput_bps,
        "isender_utilization": result.isender_utilization,
        "isender_advantage": result.isender_advantage,
    }


@scenario(config_factory=inference_ablation_config)
def inference_ablation_point(
    seed: int = 2,
    duration: float = 30.0,
    kernel: str = "gaussian",
    kernel_scale: float = 0.4,
    max_hypotheses: int = 200,
    top_k: int = 16,
    use_policy_cache: bool = False,
    backend: str = "scalar",
    rollout_backend: str = "scalar",
    policy: str = "",
    link_rate_bps: float = 12_000.0,
    loss_rate: float = 0.2,
) -> dict[str, float]:
    """One configuration of the inference-approximation ablation.

    ``policy`` is the §3.3 decision-policy mode (``none`` / ``cache`` /
    ``table``); empty keeps the older ``use_policy_cache`` flag's choice.
    Sweep engines and policies together, e.g.::

        python -m repro.runner run inference_ablation_point \\
            --sweep rollout_backend=scalar,vectorized \\
            --sweep policy=none,cache,table
    """
    # The factory owns the empty-policy fallback rule (use_policy_cache
    # compatibility), so the executed config and the cache-key fingerprint
    # can never resolve it differently.
    config = inference_ablation_config(
        {
            "kernel": kernel,
            "kernel_scale": kernel_scale,
            "max_hypotheses": max_hypotheses,
            "top_k": top_k,
            "backend": backend,
            "rollout_backend": rollout_backend,
            "policy": policy,
            "use_policy_cache": use_policy_cache,
        }
    )
    label = (
        f"{kernel}/{max_hypotheses}hyp/top{top_k}/{backend}/{rollout_backend}/"
        f"{config.policy}"
    )
    outcome = run_ablation_point(
        label,
        config,
        duration=duration,
        link_rate_bps=link_rate_bps,
        loss_rate=loss_rate,
        seed=seed,
    )
    return {
        "packets_sent": outcome.packets_sent,
        "goodput_bps": outcome.goodput_bps,
        "rollouts": outcome.rollouts,
        "final_hypotheses": outcome.final_hypotheses,
        "degenerate_updates": outcome.degenerate_updates,
        "posterior_true_link_rate": outcome.posterior_true_link_rate,
        "policy_hits": outcome.policy_hits,
        "policy_misses": outcome.policy_misses,
    }


# --------------------------------------------------------------- grid workloads


@scenario()
def single_link_tcp(
    seed: int = 0,
    duration: float = 30.0,
    link_rate_bps: float = 1_000_000.0,
    loss_rate: float = 0.0,
    extra_delay_s: float = 0.0,
    buffer_bits: float = 480_000.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
) -> dict[str, float]:
    """A NewReno bulk transfer over one bottleneck: the loss × delay × buffer grid cell.

    Cheap enough to sweep by the hundreds; the workload the determinism and
    scaling tests use.
    """
    network = Network(seed=seed)
    buffer = Buffer(capacity_bits=buffer_bits, name="buffer")
    link = Throughput(rate_bps=link_rate_bps, name="link")
    receiver = Receiver(name="receiver", accept_flows={"tcp"})
    sender = NewRenoSender(receiver, flow="tcp", packet_bits=packet_bits, name="tcp")

    sender.connect(buffer)
    buffer.connect(link)
    tail = link
    if extra_delay_s > 0.0:
        delay = Delay(delay=extra_delay_s, name="path-delay")
        tail.connect(delay)
        tail = delay
    loss = None
    if loss_rate > 0.0:
        loss = Loss(rate=loss_rate, name="loss")
        tail.connect(loss)
        tail = loss
    tail.connect(receiver)
    network.add(sender)
    network.run(until=duration)

    goodput = receiver.throughput_bps(0.0, duration, flow="tcp")
    return {
        "goodput_bps": goodput,
        "utilization": goodput / link_rate_bps,
        "packets_sent": sender.packets_sent,
        "timeouts": sender.timeouts,
        "buffer_drops": buffer.drop_count,
        "loss_drops": loss.drop_count if loss is not None else 0,
        "events_processed": network.sim.events_processed,
    }


@scenario()
def cellular_trace_tcp(
    seed: int = 0,
    duration: float = 60.0,
    nominal_rate_bps: float = 2_000_000.0,
    min_rate_bps: float = 200_000.0,
    max_rate_bps: float = 6_000_000.0,
    buffer_seconds: float = 4.0,
    loss_rate: float = 0.05,
    retransmit_delay: float = 0.05,
    propagation_delay: float = 0.03,
    packet_bits: float = DEFAULT_PACKET_BITS,
) -> dict[str, float]:
    """A trace-driven cellular run: TCP over a rate-process-modulated, loss-hiding link."""
    network = Network(seed=seed)
    rate_process = RateProcess(
        nominal_bps=nominal_rate_bps,
        min_bps=min_rate_bps,
        max_bps=max_rate_bps,
        duration=duration + 10.0,
        seed=seed,
    )
    link = CellularLink(
        rate_process=rate_process,
        buffer_bits=buffer_seconds * nominal_rate_bps,
        loss_rate=loss_rate,
        retransmit_delay=retransmit_delay,
        propagation_delay=propagation_delay,
        name="cellular-link",
    )
    receiver = Receiver(name="receiver", accept_flows={"tcp"})
    sender = NewRenoSender(
        receiver,
        flow="tcp",
        packet_bits=packet_bits,
        name="tcp",
        initial_ssthresh=1e9,
        max_rto=120.0,
    )
    sender.connect(link)
    link.connect(receiver)
    network.add(sender)
    network.run(until=duration)

    samples = sender.rtt_series()
    rtts = [rtt for _, rtt in samples] if samples else [propagation_delay]
    return {
        "throughput_bps": receiver.throughput_bps(0.0, duration, flow="tcp"),
        "max_rtt_s": max(rtts),
        "mean_rtt_s": sum(rtts) / len(rtts),
        "link_layer_retransmissions": link.link_layer_retransmissions,
        "buffer_drops": link.drop_count,
        "peak_buffer_bits": link.peak_occupancy_bits,
    }


# ------------------------------------------------------------ corpus scenarios
#
# Corpus-backed scenarios carry the *content* of their workload in the
# trace corpus, addressed by entry name.  Names are mutable (re-ingesting
# under the same name replaces the entry), so the cache must not key on
# them: the config factories below resolve the name to its content digest
# in the driver process and fold that digest — plus the sender-config
# fingerprint where one exists — into the point key via a lightweight
# composite that quacks like a SenderConfig (``fingerprint()`` is all the
# cache calls).


@dataclass(frozen=True)
class _CorpusEntryKey:
    """The cache-key identity of a corpus-backed point: digest + config."""

    trace_digest: str
    sender_fingerprint: str = ""

    def fingerprint(self) -> str:
        return canonical_digest(
            {"trace": self.trace_digest, "sender": self.sender_fingerprint}
        )


def corpus_trace_config(params: Mapping[str, Any]) -> _CorpusEntryKey:
    """Key a ``corpus_trace`` point on the named entry's content digest."""
    store = open_corpus_store(params["corpus_dir"] or None)
    return _CorpusEntryKey(trace_digest=store.digest_of(params["trace"]))


def many_flow_sender_config(params: Mapping[str, Any]) -> SenderConfig:
    """The :class:`SenderConfig` every ISender flow in the contention mix uses."""
    return SenderConfig(
        alpha=params["alpha"],
        belief_backend=params["belief_backend"],
        rollout_backend=params["rollout_backend"],
        policy=params["policy"],
        packet_bits=params["packet_bits"],
    )


def many_flow_contention_config(params: Mapping[str, Any]) -> _CorpusEntryKey:
    """Key a ``many_flow_contention`` point on trace digest + sender config."""
    digest = ""
    if params["trace"]:
        digest = open_corpus_store(params["corpus_dir"] or None).digest_of(
            params["trace"]
        )
    sender_fingerprint = ""
    if params["isender_flows"] > 0:
        sender_fingerprint = many_flow_sender_config(params).fingerprint()
    return _CorpusEntryKey(
        trace_digest=digest, sender_fingerprint=sender_fingerprint
    )


@scenario(config_factory=corpus_trace_config)
def corpus_trace(
    seed: int = 0,
    trace: str = "",
    corpus_dir: str = "",
    duration: float = 0.0,
    buffer_seconds: float = 4.0,
    loss_rate: float = 0.0,
    retransmit_delay: float = 0.05,
    propagation_delay: float = 0.03,
    packet_bits: float = DEFAULT_PACKET_BITS,
) -> dict[str, float]:
    """TCP over a corpus-registered link trace (ingested or generated).

    ``trace`` names a corpus entry (see ``python -m repro.corpus list``);
    ``corpus_dir`` overrides the default ``<cache-dir>/corpus`` root.
    ``duration`` of 0 runs the trace's full length.  The cache key folds
    in the entry's *content digest*, so re-ingesting different data under
    the same name invalidates cached points even though the params did
    not change.
    """
    if not trace:
        raise ConfigurationError(
            "corpus_trace needs a trace: pass --set trace=<corpus entry name>"
        )
    link_trace = open_corpus_store(corpus_dir or None).get(trace)
    run_for = duration if duration > 0.0 else link_trace.duration
    network = Network(seed=seed)
    link = CellularLink(
        rate_process=link_trace,
        buffer_bits=buffer_seconds * link_trace.mean_rate(),
        loss_rate=loss_rate,
        retransmit_delay=retransmit_delay,
        propagation_delay=propagation_delay,
        name="corpus-link",
    )
    receiver = Receiver(name="receiver", accept_flows={"tcp"})
    sender = NewRenoSender(
        receiver,
        flow="tcp",
        packet_bits=packet_bits,
        name="tcp",
        initial_ssthresh=1e9,
        max_rto=120.0,
    )
    sender.connect(link)
    link.connect(receiver)
    network.add(sender)
    network.run(until=run_for)

    goodput = receiver.throughput_bps(0.0, run_for, flow="tcp")
    samples = sender.rtt_series()
    rtts = [rtt for _, rtt in samples] if samples else [propagation_delay]
    return {
        "goodput_bps": goodput,
        "utilization": goodput / link_trace.mean_rate(),
        "trace_mean_rate_bps": link_trace.mean_rate(),
        "trace_min_rate_bps": link_trace.min_rate(),
        "max_rtt_s": max(rtts),
        "mean_rtt_s": sum(rtts) / len(rtts),
        "link_layer_retransmissions": link.link_layer_retransmissions,
        "buffer_drops": link.drop_count,
        "peak_buffer_bits": link.peak_occupancy_bits,
    }


#: Baseline sender classes a ``many_flow_contention`` mix may cycle through.
MANY_FLOW_SENDER_KINDS = {
    "reno": RenoSender,
    "newreno": NewRenoSender,
    "cubic": CubicSender,
    "aimd": AimdSender,
}


@scenario(config_factory=many_flow_contention_config)
def many_flow_contention(
    seed: int = 0,
    duration: float = 30.0,
    flows: int = 8,
    isender_flows: int = 1,
    mix: str = "reno,cubic,aimd",
    trace: str = "",
    corpus_dir: str = "",
    link_rate_bps: float = 8_000_000.0,
    buffer_seconds: float = 1.0,
    propagation_delay: float = 0.02,
    packet_bits: float = DEFAULT_PACKET_BITS,
    alpha: float = 1.0,
    policy: str = "cache",
    belief_backend: str = "scalar",
    rollout_backend: str = "scalar",
    fairness_window: float = 2.0,
    fairness_threshold: float = 0.9,
    per_flow_metrics: bool = False,
    sender_pool: bool = False,
) -> dict[str, float]:
    """N concurrent flows through one shared buffer and trace-driven link.

    The first ``isender_flows`` flows are inference-based
    :class:`~repro.core.isender.ISender` instances (configured by
    ``alpha``/``policy``/backends); the rest cycle through the ``mix`` of
    classic congestion controllers.  The bottleneck is a shared tail-drop
    :class:`~repro.elements.buffer.Buffer` drained by a
    :class:`~repro.cellular.link.TraceDrivenLink` — a corpus entry when
    ``trace`` is set, otherwise a constant ``link_rate_bps`` link.
    Emits per-flow throughput/delay summaries plus the fairness metrics
    (Jain's index over flow goodputs; convergence time of the windowed
    Jain index at ``fairness_threshold``)::

        python -m repro.runner run many_flow_contention \\
            --set flows=16 --set isender_flows=4 --set duration=20

    ``sender_pool=True`` builds the ISender flows' inference parts through
    one :class:`~repro.api.pool.BatchedSenderPool` instead of N
    independent ``build_components`` calls.  Construction — and therefore
    every metric — is byte-identical to the independent path (the pool
    calls ``build_components`` per prior, in flow order); it requires
    ``isender_flows >= 1`` and a row-ensemble belief backend
    (``vectorized`` or ``fused``), and exposes the pool's
    batch-synchronous ``decide_all`` lanes to drivers that wake senders in
    lockstep.
    """
    if flows < 1:
        raise ConfigurationError(f"flows must be at least 1, got {flows!r}")
    if not 0 <= isender_flows <= flows:
        raise ConfigurationError(
            f"isender_flows ({isender_flows!r}) must lie in [0, flows]"
        )
    if sender_pool and isender_flows < 1:
        raise ConfigurationError(
            "sender_pool=True needs at least one ISender flow "
            f"(isender_flows={isender_flows!r})"
        )
    mix_kinds = [kind.strip() for kind in mix.split(",") if kind.strip()]
    unknown = sorted(set(mix_kinds) - set(MANY_FLOW_SENDER_KINDS))
    if unknown:
        raise ConfigurationError(
            f"unknown sender kind(s) in mix: {', '.join(unknown)} "
            f"(known: {', '.join(sorted(MANY_FLOW_SENDER_KINDS))})"
        )
    if isender_flows < flows and not mix_kinds:
        raise ConfigurationError("mix must name at least one sender kind")

    if trace:
        link_trace = open_corpus_store(corpus_dir or None).get(trace)
    else:
        link_trace = constant_rate_process(link_rate_bps, duration=duration + 10.0)
    mean_rate = link_trace.mean_rate()
    buffer_bits = buffer_seconds * mean_rate

    network = Network(seed=seed)
    buffer = Buffer(capacity_bits=buffer_bits, name="shared-buffer")
    link = TraceDrivenLink(link_trace, name="bottleneck")
    buffer.connect(link)
    tail = link
    if propagation_delay > 0.0:
        delay = Delay(delay=propagation_delay, name="path-delay")
        tail.connect(delay)
        tail = delay

    # One Receiver per flow: every sender owns its receiver's on_deliver
    # ACK hook, so flows sharing a receiver would steal each other's ACK
    # clock.  The demux fans the bottleneck's output back out per flow.
    isender_config = (
        many_flow_sender_config(
            {
                "alpha": alpha,
                "belief_backend": belief_backend,
                "rollout_backend": rollout_backend,
                "policy": policy,
                "packet_bits": packet_bits,
            }
        )
        if isender_flows > 0
        else None
    )
    fair_share = mean_rate / flows

    def isender_prior():
        return single_link_prior(
            link_rate_low=fair_share / 4.0,
            link_rate_high=fair_share * 4.0,
            link_rate_points=7,
            buffer_capacity_bits=buffer_bits,
            fill_points=3,
            packet_bits=packet_bits,
        )

    # The pooled path builds the identical per-flow parts (same priors, in
    # flow order) through one BatchedSenderPool, so the scenario's results
    # are byte-identical either way; the pool additionally validates the
    # backend supports (sender × action × hypothesis) lanes.
    pool = (
        BatchedSenderPool(
            isender_config, [isender_prior() for _ in range(isender_flows)]
        )
        if sender_pool
        else None
    )
    flow_names: list[str] = []
    flow_kinds: list[str] = []
    senders: list[Any] = []
    receivers: dict[str, Receiver] = {}
    branches: dict[str, Any] = {}
    for index in range(flows):
        if index < isender_flows:
            kind = "isender"
        else:
            kind = mix_kinds[(index - isender_flows) % len(mix_kinds)]
        flow = f"{kind}-{index}"
        receiver = Receiver(name=f"recv-{flow}", accept_flows={flow})
        if kind == "isender":
            # A fresh belief/planner/policy per flow: senders must not
            # share mutable inference state.
            parts = (
                pool.parts[index]
                if pool is not None
                else build_components(isender_config, isender_prior())
            )
            sender = ISender(
                parts.belief,
                parts.planner,
                receiver,
                flow=flow,
                packet_bits=packet_bits,
                name=flow,
                policy=parts.policy,
            )
        else:
            sender = MANY_FLOW_SENDER_KINDS[kind](
                receiver, flow=flow, packet_bits=packet_bits, name=flow
            )
        sender.connect(buffer)
        senders.append(sender)
        flow_names.append(flow)
        flow_kinds.append(kind)
        receivers[flow] = receiver
        branches[flow] = receiver
    demux = FlowDemux(branches, name="flow-demux")
    tail.connect(demux)
    # Register roots only after the demux is wired: Network.add walks each
    # sender's downstream graph at add time, and the receivers are only
    # reachable through the demux.
    network.add(*senders)
    network.run(until=duration)

    goodputs = {
        flow: receivers[flow].throughput_bps(0.0, duration, flow=flow)
        for flow in flow_names
    }
    window_starts, rate_rows = flow_rate_matrix(
        {flow: receivers[flow].deliveries for flow in flow_names},
        start=0.0,
        end=duration,
        window=fairness_window,
    )
    converged_at = convergence_time(
        window_starts, rate_rows, threshold=fairness_threshold
    )
    delays = [
        delivery.delay
        for flow in flow_names
        for delivery in receivers[flow].deliveries
    ]
    total_goodput = sum(goodputs.values())
    kind_goodputs = {
        kind: [goodputs[flow] for flow, k in zip(flow_names, flow_kinds) if k == kind]
        for kind in set(flow_kinds)
    }
    isender_rates = kind_goodputs.get("isender", [])
    baseline_rates = [
        goodputs[flow]
        for flow, kind in zip(flow_names, flow_kinds)
        if kind != "isender"
    ]
    metrics = {
        "flows": float(flows),
        "isender_flows": float(isender_flows),
        "jain_index": jain_index(list(goodputs.values())),
        "convergence_time_s": converged_at if converged_at is not None else -1.0,
        "total_goodput_bps": total_goodput,
        "mean_flow_goodput_bps": total_goodput / flows,
        "min_flow_goodput_bps": min(goodputs.values()),
        "max_flow_goodput_bps": max(goodputs.values()),
        "utilization": total_goodput / mean_rate,
        "goodput_isender_bps": (
            sum(isender_rates) / len(isender_rates) if isender_rates else 0.0
        ),
        "goodput_baseline_bps": (
            sum(baseline_rates) / len(baseline_rates) if baseline_rates else 0.0
        ),
        "mean_delay_s": sum(delays) / len(delays) if delays else 0.0,
        "max_delay_s": max(delays) if delays else 0.0,
        "buffer_drops": buffer.drop_count,
        "demux_ignored": demux.ignored_count,
        "events_processed": network.sim.events_processed,
    }
    if per_flow_metrics:
        for index, flow in enumerate(flow_names):
            metrics[f"flow_{index:03d}_goodput_bps"] = goodputs[flow]
    return metrics


# ------------------------------------------------------------- spec generators


def alpha_sweep_specs(
    alphas: Sequence[float] = (0.9, 1.0, 2.5, 5.0),
    seed: int = 1,
    duration: float = 90.0,
    switch_interval: float = 30.0,
    **params: float,
) -> list[ScenarioSpec]:
    """Specs for the Figure-3 α sweep through the ``figure3_alpha`` scenario."""
    return grid(
        "figure3_alpha",
        seeds=(seed,),
        base={"duration": duration, "switch_interval": switch_interval, **params},
        alpha=list(alphas),
    )


def loss_delay_buffer_specs(
    losses: Sequence[float] = (0.0, 0.02, 0.1),
    delays: Sequence[float] = (0.0, 0.02, 0.08),
    buffers: Sequence[float] = (120_000.0, 480_000.0, 1_920_000.0),
    seeds: Sequence[int] | int = (0,),
    duration: float = 20.0,
    link_rate_bps: float = 1_000_000.0,
) -> list[ScenarioSpec]:
    """The loss × delay × buffer grid over the ``single_link_tcp`` scenario."""
    return grid(
        "single_link_tcp",
        seeds=seeds,
        base={"duration": duration, "link_rate_bps": link_rate_bps},
        loss_rate=list(losses),
        extra_delay_s=list(delays),
        buffer_bits=list(buffers),
    )


def cellular_trace_specs(
    seeds: Sequence[int] | int = 4,
    duration: float = 60.0,
    **params: float,
) -> list[ScenarioSpec]:
    """Per-seed trials of the trace-driven cellular scenario."""
    return grid("cellular_trace_tcp", seeds=seeds, base={"duration": duration, **params})


def corpus_sweep_specs(
    traces: Sequence[str],
    seeds: Sequence[int] | int = (0,),
    duration: float = 0.0,
    **params: Any,
) -> list[ScenarioSpec]:
    """One ``corpus_trace`` point per corpus entry name (× seeds)."""
    return grid(
        "corpus_trace",
        seeds=seeds,
        base={"duration": duration, **params},
        trace=list(traces),
    )


def many_flow_specs(
    flow_counts: Sequence[int] = (4, 16, 64),
    seeds: Sequence[int] | int = (0,),
    duration: float = 20.0,
    **params: Any,
) -> list[ScenarioSpec]:
    """A flow-count scaling sweep over ``many_flow_contention``."""
    return grid(
        "many_flow_contention",
        seeds=seeds,
        base={"duration": duration, **params},
        flows=list(flow_counts),
    )
