"""Deliberate failure: seeded fault injection for the runner stack.

Robustness claims are only as good as the failures they were tested
against, so the runner accepts a :class:`FaultPlan` — a declarative,
*seeded* description of which points of a sweep should misbehave and how:

* ``exception`` — the point raises :class:`InjectedFaultError`;
* ``hang`` — the point sleeps ``hang_seconds`` before continuing, long
  enough to trip the supervisor's heartbeat timeout;
* ``kill`` — the worker process dies abruptly (``os._exit``), the
  moral equivalent of the OOM killer visiting mid-point;
* ``kill_sweep`` — the *sweep* process itself is SIGKILLed from a worker,
  which is how the resume tests produce a deterministic mid-grid crash;
* ``corrupt`` — the point executes normally but its freshly stored
  :class:`~repro.runner.cache.ResultCache` entry is truncated afterwards,
  exercising the read-time corruption quarantine.

Faults are assigned deterministically: count-based kinds (``kills=2``)
sample point indices with a :class:`random.Random` seeded from the plan,
and rate-based exceptions hash each spec's canonical identity, so the same
plan over the same grid always injects at the same points — a chaos run is
as replayable as a clean one.  Probabilistic and count-based faults fire on
a point's *first* attempt only, so supervised retries can prove recovery;
targeted faults (``kill@3``) may name explicit attempt numbers.
"""

from __future__ import annotations

import hashlib
import os
import random
import signal
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.errors import ConfigurationError, ReproError
from repro.runner.spec import ScenarioSpec

__all__ = [
    "FAULT_KINDS",
    "FaultAssignment",
    "FaultPlan",
    "InjectedFaultError",
    "PointFault",
    "corrupt_entry",
    "perform_fault",
]

#: Every fault kind a plan may inject.
FAULT_KINDS = ("exception", "hang", "kill", "kill_sweep", "corrupt")

#: Exit status of a worker felled by an injected ``kill`` fault.
KILLED_WORKER_EXIT = 77


class InjectedFaultError(ReproError):
    """Raised by an ``exception`` fault — a stand-in for any point failure."""


def _point_uniform(seed: int, stream: str, key: str) -> float:
    """Deterministic uniform in [0, 1) from ``(seed, stream, key)``.

    Digest-based (not :mod:`random`) so the value is independent of call
    order and identical in every process — the property that keeps chaos
    runs replayable.
    """
    digest = hashlib.sha256(f"{seed}:{stream}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class PointFault:
    """One fault pinned to a specific grid point.

    ``index`` addresses the point by grid position; ``label`` by its
    :attr:`~repro.runner.spec.ScenarioSpec.label` (exact match).  At least
    one must be given.  ``attempts`` lists the attempt numbers (0-based)
    on which the fault fires — the default ``(0,)`` means "first try
    only", so a retry succeeds.
    """

    kind: str
    index: int | None = None
    label: str | None = None
    attempts: tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )
        if self.index is None and self.label is None:
            raise ConfigurationError("a PointFault needs an index or a label")

    def matches(self, index: int, label: str) -> bool:
        if self.index is not None:
            return index == self.index
        return label == self.label


@dataclass(frozen=True)
class FaultAssignment:
    """A plan resolved against one concrete spec list.

    ``execution`` maps grid index → the fault armed around that point's
    execution; ``corrupt`` is the set of indices whose cache entry is
    truncated after being stored.  Resolution happens once, in the
    supervisor, so worker processes receive an already-decided fault kind
    instead of the plan itself.
    """

    execution: Mapping[int, PointFault] = field(default_factory=dict)
    corrupt: frozenset[int] = frozenset()
    hang_seconds: float = 3600.0

    def fault_for(self, index: int, attempt: int) -> str | None:
        """The fault kind to arm for ``(point, attempt)``, or ``None``."""
        fault = self.execution.get(index)
        if fault is not None and attempt in fault.attempts:
            return fault.kind
        return None


#: The empty assignment — what a run without a plan supervises against.
NO_FAULTS = FaultAssignment()


@dataclass(frozen=True)
class FaultPlan:
    """Declarative chaos: which fraction/count of points fail, and how.

    Parameters
    ----------
    seed:
        Seeds every sampling decision; two runs of the same plan over the
        same grid inject identically.
    exception_rate:
        Per-point probability of an ``exception`` fault (first attempt
        only), decided by hashing the spec's canonical identity.
    kills / hangs / corrupt:
        Exact counts of worker kills, hangs, and cache-entry corruptions
        spread over the grid (sampled without replacement).
    hang_seconds:
        How long a ``hang`` fault sleeps.  Pick it well above the
        supervisor's ``point_timeout`` to prove hang detection, or small
        to model a transient stall that resolves by itself.
    targets:
        Explicitly pinned :class:`PointFault` entries; they take precedence
        over sampled faults on the same point.
    """

    seed: int = 0
    exception_rate: float = 0.0
    kills: int = 0
    hangs: int = 0
    corrupt: int = 0
    hang_seconds: float = 3600.0
    targets: tuple[PointFault, ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.exception_rate <= 1.0:
            raise ConfigurationError(
                f"exception_rate must be in [0, 1], got {self.exception_rate!r}"
            )
        for name in ("kills", "hangs", "corrupt"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {getattr(self, name)!r}")
        if self.hang_seconds <= 0:
            raise ConfigurationError(
                f"hang_seconds must be > 0, got {self.hang_seconds!r}"
            )

    # ------------------------------------------------------------- resolution

    def assign(self, specs: Sequence[ScenarioSpec]) -> FaultAssignment:
        """Resolve the plan against a concrete grid, deterministically.

        Targeted faults land first; count-based kinds then sample the
        still-free indices with a plan-seeded RNG; rate-based exceptions
        fill in by per-spec hash.  A point carries at most one execution
        fault (corruption is independent — it happens after a successful
        execution and may coexist).
        """
        return self._assign(
            [spec.label for spec in specs], [spec.canonical() for spec in specs]
        )

    def assign_keys(self, keys: Sequence[str]) -> FaultAssignment:
        """Resolve the plan against abstract slots named by ``keys``.

        The serving layer's chaos mode uses this to arm faults over a
        stream of *request indices* instead of grid points: same targeted /
        count-based / rate-based resolution as :meth:`assign`, with each
        key playing both the label (for ``kind@label`` targets) and the
        canonical identity (for the rate-based exception hash).
        """
        keys = [str(key) for key in keys]
        return self._assign(keys, keys)

    def _assign(self, labels: Sequence[str], keys: Sequence[str]) -> FaultAssignment:
        taken: dict[int, PointFault] = {}
        corrupt: set[int] = set()
        for target in self.targets:
            matched = [i for i, label in enumerate(labels) if target.matches(i, label)]
            if not matched:
                raise ConfigurationError(
                    f"fault target {target.kind!r}@{target.index if target.index is not None else target.label!r} "
                    f"matches no point of the {len(labels)}-slot grid"
                )
            for index in matched:
                if target.kind == "corrupt":
                    corrupt.add(index)
                else:
                    taken[index] = target

        rng = random.Random(f"repro.runner.faults:{self.seed}")
        for kind, count in (("kill", self.kills), ("hang", self.hangs)):
            free = [i for i in range(len(labels)) if i not in taken]
            if count > len(free):
                raise ConfigurationError(
                    f"plan wants {count} {kind} fault(s) but only {len(free)} "
                    f"point(s) are free to carry one"
                )
            for index in rng.sample(free, count):
                taken[index] = PointFault(kind=kind, index=index)

        if self.exception_rate > 0.0:
            for index, key in enumerate(keys):
                if index in taken:
                    continue
                if _point_uniform(self.seed, "exception", key) < self.exception_rate:
                    taken[index] = PointFault(kind="exception", index=index)

        if self.corrupt:
            pool = sorted(set(range(len(labels))) - corrupt)
            if self.corrupt > len(pool):
                raise ConfigurationError(
                    f"plan wants {self.corrupt} corrupt cache entr(ies) but the "
                    f"grid has only {len(pool)} uncorrupted point(s)"
                )
            corrupt.update(rng.sample(pool, self.corrupt))

        return FaultAssignment(
            execution=dict(taken),
            corrupt=frozenset(corrupt),
            hang_seconds=self.hang_seconds,
        )

    # ------------------------------------------------------------- CLI surface

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        """Build a plan from the CLI's ``--inject-faults`` argument.

        Comma-separated tokens, e.g.
        ``"exception=0.1,kills=2,hangs=1,corrupt=1,seed=7"`` for sampled
        chaos, plus targeted ``kind@index`` tokens such as ``kill@3`` or
        ``kill_sweep@2`` (fire on the point's first attempt).
        """
        plan = cls()
        targets: list[PointFault] = []
        for token in (t.strip() for t in text.split(",") if t.strip()):
            if "@" in token:
                kind, _, where = token.partition("@")
                try:
                    index = int(where)
                except ValueError:
                    raise ConfigurationError(
                        f"fault target {token!r} needs an integer point index"
                    ) from None
                targets.append(PointFault(kind=kind.strip(), index=index))
                continue
            if "=" not in token:
                raise ConfigurationError(
                    f"fault token {token!r} is neither key=value nor kind@index"
                )
            key, _, value = token.partition("=")
            key = key.strip()
            try:
                if key == "exception":
                    plan = replace(plan, exception_rate=float(value))
                elif key in ("kills", "hangs", "corrupt"):
                    plan = replace(plan, **{key: int(value)})
                elif key == "seed":
                    plan = replace(plan, seed=int(value))
                elif key == "hang_seconds":
                    plan = replace(plan, hang_seconds=float(value))
                else:
                    raise ConfigurationError(
                        f"unknown fault-plan key {key!r}; known keys: "
                        "exception, kills, hangs, corrupt, seed, hang_seconds, kind@index"
                    )
            except ValueError:
                raise ConfigurationError(
                    f"fault-plan value {value!r} for {key!r} is not a number"
                ) from None
        return replace(plan, targets=tuple(targets))

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        if self.exception_rate:
            parts.append(f"exception={self.exception_rate:g}")
        for name in ("kills", "hangs", "corrupt"):
            if getattr(self, name):
                parts.append(f"{name}={getattr(self, name)}")
        parts.extend(
            f"{t.kind}@{t.index if t.index is not None else t.label}" for t in self.targets
        )
        return ",".join(parts)


# ------------------------------------------------------------------- execution


def perform_fault(
    kind: str, *, hang_seconds: float, label: str, in_worker: bool
) -> None:
    """Execute one armed fault at the start of a point's attempt.

    ``in_worker`` distinguishes a supervised worker process (where a
    ``kill`` is a clean worker death and ``kill_sweep`` shoots the parent
    supervisor) from inline serial execution (where both kill the sweep
    process itself — which is the point: the journal is what survives).
    """
    if kind == "exception":
        raise InjectedFaultError(f"injected fault at {label}")
    if kind == "hang":
        time.sleep(hang_seconds)
        return
    if kind == "kill":
        if in_worker:
            os._exit(KILLED_WORKER_EXIT)
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == "kill_sweep":
        victim = os.getppid() if in_worker else os.getpid()
        if victim > 1:
            os.kill(victim, signal.SIGKILL)
        # The sweep is dead (or dying); this attempt must never report a
        # result.  Give the signal time to land, then fall on our sword.
        time.sleep(5.0)
        os._exit(KILLED_WORKER_EXIT)
    raise ConfigurationError(f"unknown fault kind {kind!r}")  # pragma: no cover


def corrupt_entry(path: str | os.PathLike[str]) -> None:
    """Truncate a cache entry in place, simulating a torn write.

    Deliberately *not* atomic — the whole point is to leave the kind of
    half-file the cache's read-time quarantine must catch.
    """
    target = Path(path)
    data = target.read_bytes()
    target.write_bytes(data[: max(1, len(data) // 2)])
