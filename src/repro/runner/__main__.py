"""``python -m repro.runner`` — scenario-runner CLI."""

from repro.runner.cli import main

raise SystemExit(main())
