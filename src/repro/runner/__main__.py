"""``python -m repro.runner`` — scenario-runner CLI."""

from repro.runner.cli import main

try:
    raise SystemExit(main())
except KeyboardInterrupt:
    # A Ctrl-C that lands outside main()'s own handler (argument parsing,
    # interpreter teardown) still exits with the conventional 130.
    raise SystemExit(130)
