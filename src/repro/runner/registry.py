"""The scenario registry — named, parameterized, seedable workloads.

A *scenario* is a plain function ``fn(seed=..., **params) -> mapping`` that
builds a network, runs it, and returns a flat dict of numeric summary
metrics.  Registering it under a name makes it addressable from a
:class:`~repro.runner.spec.ScenarioSpec`, which is what the parallel
backend pickles across process boundaries — worker processes re-resolve
the name against the registry instead of receiving a closure.

The built-in scenarios (the paper's figure experiments plus the grid
workloads) live in :mod:`repro.runner.scenarios` and are loaded lazily the
first time a name is resolved, which keeps ``repro.experiments`` ↔
``repro.runner`` imports acyclic.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro._persist import signature_defaults
from repro.errors import ConfigurationError
from repro.runner.spec import ScenarioSpec

#: Signature of a scenario function.
ScenarioFn = Callable[..., Mapping[str, Any]]

#: Module holding the built-in scenario definitions, imported on first use.
_BUILTIN_MODULE = "repro.runner.scenarios"


@dataclass(frozen=True)
class ScenarioEntry:
    """A registered scenario: the function plus its default parameters."""

    name: str
    fn: ScenarioFn
    description: str = ""
    defaults: dict[str, Any] = field(default_factory=dict)
    #: Parameter names the function accepts, or ``None`` if it takes **kwargs.
    accepted_params: frozenset[str] | None = None
    #: The function's own signature defaults, captured at registration so
    #: the result cache can key points on their fully *effective* params.
    signature_defaults: dict[str, Any] = field(default_factory=dict)
    #: Maps a point's effective params to the
    #: :class:`~repro.api.config.SenderConfig` the scenario will build for
    #: them, or ``None`` when the scenario has no sender configuration.  The
    #: result cache folds the config's ``fingerprint()`` into each point's
    #: key, so cached results invalidate when configuration *semantics*
    #: change even though the params did not.
    config_factory: Callable[[Mapping[str, Any]], Any] | None = None

    def effective_params(self, params: Mapping[str, Any]) -> dict[str, Any]:
        """The params the scenario actually executes with for a point.

        Signature defaults, overlaid by registration defaults, overlaid by
        the point's own params — the resolution
        :meth:`ScenarioRegistry.run_point` plus the function call perform.
        Captured from the signature at registration, so the cache and the
        config factory can never drift from what the function really uses.
        """
        merged = dict(self.signature_defaults)
        merged.update(self.defaults)
        merged.update(params)
        return merged

    def config_fingerprint(self, params: Mapping[str, Any]) -> str:
        """The point's ``SenderConfig.fingerprint()``, or ``""`` without one."""
        if self.config_factory is None:
            return ""
        return self.config_factory(self.effective_params(params)).fingerprint()

    def validate_params(self, params: Mapping[str, Any]) -> None:
        """Reject unknown or reserved parameter names with a readable error."""
        if "seed" in params:
            raise ConfigurationError(
                "'seed' is not a scenario parameter — it is derived from the "
                "spec's base seed (set ScenarioSpec.seed, or --seed/--seeds "
                "on the CLI)"
            )
        if self.accepted_params is None:
            return
        unknown = sorted(set(params) - self.accepted_params)
        if unknown:
            known = ", ".join(sorted(self.accepted_params - {"seed"})) or "<none>"
            raise ConfigurationError(
                f"scenario {self.name!r} does not accept parameter(s) "
                f"{', '.join(map(repr, unknown))}; known parameters: {known}"
            )


def _accepted_params(fn: ScenarioFn) -> frozenset[str] | None:
    """Keyword parameters ``fn`` accepts, or ``None`` when it takes **kwargs."""
    parameters = inspect.signature(fn).parameters.values()
    if any(parameter.kind is inspect.Parameter.VAR_KEYWORD for parameter in parameters):
        return None
    return frozenset(
        parameter.name
        for parameter in parameters
        if parameter.kind
        in (inspect.Parameter.POSITIONAL_OR_KEYWORD, inspect.Parameter.KEYWORD_ONLY)
    )


def _signature_defaults(fn: ScenarioFn) -> dict[str, Any]:
    """The function's own parameter defaults (``seed`` excluded)."""
    return signature_defaults(fn, exclude=("seed",))


class ScenarioRegistry:
    """Mutable mapping of scenario names to :class:`ScenarioEntry`.

    Parameters
    ----------
    load_builtin:
        Whether unresolved names should trigger an import of the built-in
        scenario module.  The default registry uses ``True``; isolated
        registries in tests typically pass ``False``.
    """

    def __init__(self, load_builtin: bool = False) -> None:
        self._entries: dict[str, ScenarioEntry] = {}
        self._load_builtin = load_builtin
        self._builtin_loaded = False

    # ------------------------------------------------------------ registration

    def register(
        self,
        name: str | None = None,
        *,
        description: str = "",
        config_factory: Callable[[Mapping[str, Any]], Any] | None = None,
        **defaults: Any,
    ) -> Callable[[ScenarioFn], ScenarioFn]:
        """Decorator registering a scenario function.

        ``name`` defaults to the function's own name; ``description``
        defaults to the first line of its docstring.  ``config_factory``
        (params → ``SenderConfig``) lets the result cache key the
        scenario's points on the config fingerprint.  Extra keywords become
        default parameters merged under the spec's params at run time.
        """

        def decorate(fn: ScenarioFn) -> ScenarioFn:
            scenario_name = name or fn.__name__
            if scenario_name in self._entries:
                raise ConfigurationError(f"scenario {scenario_name!r} is already registered")
            doc = description or (inspect.getdoc(fn) or "").split("\n", 1)[0]
            self._entries[scenario_name] = ScenarioEntry(
                name=scenario_name,
                fn=fn,
                description=doc,
                defaults=dict(defaults),
                accepted_params=_accepted_params(fn),
                signature_defaults=_signature_defaults(fn),
                config_factory=config_factory,
            )
            return fn

        return decorate

    # -------------------------------------------------------------- resolution

    def _ensure_builtin(self) -> None:
        if self._load_builtin and not self._builtin_loaded:
            self._builtin_loaded = True
            importlib.import_module(_BUILTIN_MODULE)

    def get(self, name: str) -> ScenarioEntry:
        """Resolve ``name``, loading the built-in scenarios if needed."""
        if name not in self._entries:
            self._ensure_builtin()
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise ConfigurationError(
                f"unknown scenario {name!r}; registered scenarios: {known}"
            ) from None

    def names(self) -> list[str]:
        """Sorted names of every registered scenario."""
        self._ensure_builtin()
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        self._ensure_builtin()
        return name in self._entries

    def __iter__(self) -> Iterator[ScenarioEntry]:
        self._ensure_builtin()
        for name in self.names():
            yield self._entries[name]

    # --------------------------------------------------------------- execution

    def run_point(self, spec: ScenarioSpec) -> dict[str, Any]:
        """Execute one spec and return its summary-metric dict.

        The scenario function receives ``seed=spec.derived_seed`` — the
        worker-safe per-point seed — plus the entry defaults overridden by
        the spec's params.
        """
        entry = self.get(spec.scenario)
        entry.validate_params(spec.params)
        kwargs = dict(entry.defaults)
        kwargs.update(spec.params)
        metrics = entry.fn(seed=spec.derived_seed, **kwargs)
        if not isinstance(metrics, Mapping):
            raise ConfigurationError(
                f"scenario {spec.scenario!r} returned {type(metrics).__name__}, "
                "expected a mapping of summary metrics"
            )
        return dict(metrics)


#: The process-wide registry the CLI and parallel workers resolve against.
DEFAULT_REGISTRY = ScenarioRegistry(load_builtin=True)

#: Decorator registering a scenario on the default registry.
scenario = DEFAULT_REGISTRY.register
