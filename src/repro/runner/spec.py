"""Scenario specifications — the unit of work the runner executes.

A :class:`ScenarioSpec` names a registered scenario, fixes its parameters,
and carries a base seed.  Specs are plain, picklable data: the parallel
backend ships them to worker processes instead of closures, and every
worker can recompute the point's derived RNG seed from the spec alone
(:func:`repro.sim.random.derive_seed` is process-independent).

:func:`grid` expands parameter axes into the cross-product list of specs —
the loss × delay × buffer sweeps and per-seed trial fans the experiments
declare.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.random import derive_seed

#: Parameter values a spec may carry — anything with a stable ``str``/JSON
#: form, so derived seeds and canonical artifacts are reproducible.
ParamValue = Any


def canonical_params(params: Mapping[str, ParamValue]) -> str:
    """Render ``params`` as canonical JSON (sorted keys, no whitespace).

    Two dicts with the same items in different insertion order canonicalize
    identically, so derived seeds never depend on how a spec was built.
    """
    try:
        return json.dumps(params, sort_keys=True, separators=(",", ":"), default=str)
    except TypeError as error:  # pragma: no cover - defensive
        raise ConfigurationError(f"scenario params are not serializable: {error}") from error


@dataclass(frozen=True)
class ScenarioSpec:
    """One runnable point: a scenario name, its parameters, and a seed."""

    scenario: str
    params: dict[str, ParamValue] = field(default_factory=dict)
    seed: int = 0

    @property
    def derived_seed(self) -> int:
        """The worker-safe RNG seed for this point.

        Derived from ``(seed, scenario, canonical params)`` so that every
        point of a sweep gets a decorrelated stream even when the whole
        sweep shares one base seed, and so any process — serial loop or
        forked worker — computes the same value.
        """
        return derive_seed(self.seed, "scenario", self.scenario, canonical_params(self.params))

    @property
    def label(self) -> str:
        """Human-readable identity, e.g. ``figure3_alpha[alpha=1,seed=1]``."""
        parts = [f"{key}={self.params[key]}" for key in sorted(self.params)]
        parts.append(f"seed={self.seed}")
        return f"{self.scenario}[{','.join(parts)}]"

    def canonical(self) -> str:
        """Canonical JSON identity of the spec (used in artifacts)."""
        return json.dumps(
            {"scenario": self.scenario, "params": self.params, "seed": self.seed},
            sort_keys=True,
            separators=(",", ":"),
            default=str,
        )


def grid_digest(specs: Sequence[ScenarioSpec]) -> str:
    """Stable identity of an *ordered* spec list.

    Keys the sweep journal (one journal file per grid), so ``resume=True``
    only ever replays state recorded for the byte-identical grid: a
    changed axis, an added seed, or a reordering produces a different
    digest and therefore a fresh journal.  Hashing is local (stdlib
    :mod:`hashlib` over each spec's canonical JSON) to keep this module
    dependency-free.
    """
    digest = hashlib.sha256(b"repro.runner/grid:1\n")
    for spec in specs:
        digest.update(spec.canonical().encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()[:32]


def grid(
    scenario: str,
    *,
    seeds: Sequence[int] | int = (0,),
    base: Mapping[str, ParamValue] | None = None,
    **axes: Iterable[ParamValue],
) -> list[ScenarioSpec]:
    """Expand parameter axes into the cross product of :class:`ScenarioSpec`.

    Parameters
    ----------
    scenario:
        Registered scenario name.
    seeds:
        Base seeds to replicate every grid point over; an ``int`` means
        ``range(n)`` trials.
    base:
        Parameters shared by every point (not swept).
    axes:
        Each keyword is one swept parameter with its iterable of values,
        e.g. ``grid("single_link_tcp", loss_rate=(0.0, 0.1), extra_delay_s=(0.0, 0.05))``.

    The expansion order is deterministic: axes vary in keyword order with
    the rightmost axis fastest, and seeds fastest of all, so the same call
    always produces the same spec list (which the result artifacts preserve).
    """
    if isinstance(seeds, int):
        seeds = tuple(range(seeds))
    else:
        seeds = tuple(seeds)
    if not seeds:
        raise ConfigurationError("grid() needs at least one seed")
    fixed = dict(base or {})
    names = list(axes)
    value_lists = []
    for name in names:
        values = list(axes[name])
        if not values:
            raise ConfigurationError(f"grid axis {name!r} has no values")
        value_lists.append(values)

    specs: list[ScenarioSpec] = []
    for combo in itertools.product(*value_lists) if names else [()]:
        params = dict(fixed)
        params.update(zip(names, combo))
        for seed in seeds:
            # Each spec gets its own params dict: the specs are frozen value
            # objects, and sharing one mutable dict across the per-seed
            # replicas would let one mutation corrupt its siblings' identity.
            specs.append(ScenarioSpec(scenario=scenario, params=dict(params), seed=seed))
    return specs
