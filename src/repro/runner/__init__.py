"""Parallel scenario-runner subsystem.

The runner turns the repo's embarrassingly parallel sweeps (alpha sweeps,
seed fans, loss × delay × buffer grids) into explicit, schedulable work:

* :mod:`repro.runner.spec` — :class:`ScenarioSpec` points and :func:`grid`
  expansion;
* :mod:`repro.runner.registry` — named scenario functions resolvable by
  worker processes;
* :mod:`repro.runner.backends` — :class:`SerialRunner` (default) and
  :class:`ParallelRunner` (multiprocessing fan-out), both deterministic;
* :mod:`repro.runner.results` — :class:`ResultStore`, the canonical
  JSON/CSV artifact runs are compared by;
* ``python -m repro.runner`` — the CLI entry point.

Built-in scenarios live in :mod:`repro.runner.scenarios` and are loaded on
first name resolution (keeping imports acyclic with ``repro.experiments``).
"""

from repro.runner.backends import ParallelRunner, RunnerBackend, SerialRunner, make_runner, run_specs
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioEntry, ScenarioRegistry, scenario
from repro.runner.results import PointResult, ResultStore
from repro.runner.spec import ScenarioSpec, grid

__all__ = [
    "DEFAULT_REGISTRY",
    "ParallelRunner",
    "PointResult",
    "ResultStore",
    "RunnerBackend",
    "ScenarioEntry",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SerialRunner",
    "grid",
    "make_runner",
    "run_specs",
    "scenario",
]
