"""Parallel scenario-runner subsystem.

The runner turns the repo's embarrassingly parallel sweeps (alpha sweeps,
seed fans, loss × delay × buffer grids) into explicit, schedulable work:

* :mod:`repro.runner.spec` — :class:`ScenarioSpec` points and :func:`grid`
  expansion;
* :mod:`repro.runner.registry` — named scenario functions resolvable by
  worker processes;
* :mod:`repro.runner.backends` — :class:`SerialRunner` (default),
  :class:`ParallelRunner` (multiprocessing fan-out), and
  :class:`AsyncRunner` (asyncio over a process-pool executor), all
  deterministic and resolvable by name through :data:`RUNNER_BACKENDS`;
* :mod:`repro.runner.cache` — :class:`ResultCache`, persistent
  fingerprint-keyed reuse of executed grid points;
* :mod:`repro.runner.results` — :class:`ResultStore`, the canonical
  JSON/CSV artifact runs are compared by;
* :mod:`repro.runner.supervise` — :class:`Supervision`, per-point
  timeouts, retries with deterministic backoff, and quarantine;
* :mod:`repro.runner.journal` — :class:`SweepJournal`, the durable
  per-grid record that makes killed sweeps resumable (``--resume``);
* :mod:`repro.runner.faults` — :class:`FaultPlan`, the seeded
  fault-injection harness the robustness tests drive chaos with;
* ``python -m repro.runner`` — the CLI entry point.

Built-in scenarios live in :mod:`repro.runner.scenarios` and are loaded on
first name resolution (keeping imports acyclic with ``repro.experiments``).
"""

from repro.runner.backends import (
    RUNNER_BACKENDS,
    AsyncRunner,
    ParallelRunner,
    RunnerBackend,
    RunnerBase,
    SerialRunner,
    make_runner,
    run_specs,
)
from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.faults import FaultPlan, InjectedFaultError, PointFault
from repro.runner.journal import SweepJournal, journal_path, replay_journal
from repro.runner.registry import DEFAULT_REGISTRY, ScenarioEntry, ScenarioRegistry, scenario
from repro.runner.results import PointResult, QuarantinedPoint, ResultStore
from repro.runner.spec import ScenarioSpec, grid, grid_digest
from repro.runner.supervise import Supervision

__all__ = [
    "AsyncRunner",
    "CACHE_DIR_ENV",
    "DEFAULT_REGISTRY",
    "FaultPlan",
    "InjectedFaultError",
    "ParallelRunner",
    "PointFault",
    "PointResult",
    "QuarantinedPoint",
    "RUNNER_BACKENDS",
    "ResultCache",
    "ResultStore",
    "RunnerBackend",
    "RunnerBase",
    "ScenarioEntry",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SerialRunner",
    "Supervision",
    "SweepJournal",
    "default_cache_dir",
    "grid",
    "grid_digest",
    "journal_path",
    "make_runner",
    "run_specs",
    "scenario",
]
