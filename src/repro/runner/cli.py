"""Command-line entry point for the scenario runner.

::

    python -m repro.runner list
    python -m repro.runner run figure3_alpha --sweep alpha=0.9,1,2.5,5 \
        --backend parallel --workers 4 --json sweep.json
    python -m repro.runner run figure3_alpha --sweep alpha=0.9,1,2.5,5 \
        --backend async --cache-dir .repro-cache

``run`` expands ``--sweep`` axes into the cross product of points (times
``--seeds`` trials), executes them on the chosen backend, prints the metric
table, and optionally writes the canonical JSON / CSV artifacts.

With ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) every executed point is
persisted under its fingerprint-derived key and replayed on later runs —
a warm rerun of the same grid reports all hits and produces bit-identical
artifacts.  ``--no-cache`` forces execution even when a cache directory is
configured in the environment.

Fault tolerance is opt-in: any of ``--resume``, ``--max-retries``,
``--point-timeout``, ``--strict`` or ``--inject-faults`` switches the run
onto the supervised execution path (durable journal under the cache
directory, per-point retries with deterministic backoff, quarantine of
persistently failing points).  Exit codes: 0 full success, 1 partial
(quarantined points remain), 2 configuration error, 3 strict-mode point
failure, 130 interrupted.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Optional, Sequence

from repro._persist import cache_dir_override
from repro.errors import ConfigurationError, PointFailureError
from repro.metrics.summary import format_table
from repro.runner.backends import RUNNER_BACKENDS, run_specs
from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.faults import FaultPlan
from repro.runner.registry import DEFAULT_REGISTRY
from repro.runner.spec import grid
from repro.runner.supervise import Supervision


def _parse_value(text: str) -> Any:
    """Parse a CLI parameter value: int, float, bool, or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _parse_assignment(text: str) -> tuple[str, str]:
    if "=" not in text:
        raise ConfigurationError(f"expected key=value, got {text!r}")
    key, _, value = text.partition("=")
    return key.strip(), value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run registered simulation scenarios, serially or in parallel.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list registered scenarios (alias for the 'list' command)",
    )
    commands = parser.add_subparsers(dest="command", required=False)

    commands.add_parser("list", help="list registered scenarios")

    run = commands.add_parser("run", help="run one scenario over a parameter grid")
    run.add_argument("scenario", help="registered scenario name (see 'list')")
    run.add_argument(
        "--set",
        dest="fixed",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="fix one parameter for every point (repeatable)",
    )
    run.add_argument(
        "--sweep",
        dest="sweeps",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep one parameter axis; repeat for a cross product",
    )
    run.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    run.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of seed trials per grid point, seeds seed..seed+N-1",
    )
    run.add_argument(
        "--backend",
        choices=tuple(RUNNER_BACKENDS.names()),
        default="serial",
        help="execution backend (default serial)",
    )
    run.add_argument("--workers", type=int, default=None, help="parallel worker count")
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persist executed points under PATH and replay them on reruns "
            f"(default: ${CACHE_DIR_ENV} when set, else no caching)"
        ),
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="execute every point even when a cache directory is configured",
    )
    run.add_argument("--json", default=None, metavar="PATH", help="write canonical JSON artifact")
    run.add_argument("--csv", default=None, metavar="PATH", help="write CSV artifact")
    run.add_argument("--timing", action="store_true", help="include per-point wall time")

    faults = run.add_argument_group(
        "fault tolerance",
        "any of these switches the run onto the supervised execution path "
        "(journalled, retried, quarantining)",
    )
    faults.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay completed points from the sweep journal of an earlier "
            "(possibly killed) run of this exact grid; needs --cache-dir or "
            f"${CACHE_DIR_ENV} to locate the journal"
        ),
    )
    faults.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="re-run a failing point up to N times before quarantining it (default 2)",
    )
    faults.add_argument(
        "--point-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a point whose worker goes silent this long",
    )
    faults.add_argument(
        "--retry-backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay before a retry, doubled per attempt (default 0.1)",
    )
    faults.add_argument(
        "--strict",
        action="store_true",
        help="fail the whole sweep on the first exhausted point (no quarantine)",
    )
    faults.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help=(
            "chaos-test the run with a seeded fault plan, e.g. "
            "'exception=0.1,kills=2,hangs=1,seed=7' or targeted 'kill@3'"
        ),
    )

    cache = commands.add_parser(
        "cache", help="inspect and garbage-collect the result cache"
    )
    cache.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=f"cache directory (default: ${CACHE_DIR_ENV} when set)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)
    cache_commands.add_parser("list", help="report entry counts, sizes, and ages")
    prune = cache_commands.add_parser(
        "prune", help="remove entries by age and total size"
    )
    prune.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        metavar="DAYS",
        help="remove results/policy artifacts older than DAYS",
    )
    prune.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        metavar="MB",
        help="then remove oldest-first until the cache fits MB",
    )
    prune.add_argument(
        "--sweep-quarantine",
        action="store_true",
        help="also empty the quarantine/ directory of triaged corrupt files",
    )
    prune.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be removed without touching anything",
    )
    return parser


def _cmd_list() -> int:
    for entry in DEFAULT_REGISTRY:
        print(f"{entry.name:24s} {entry.description}")
        # One indented line of accepted params with their effective
        # defaults, so every scenario is sweepable without reading source.
        effective = entry.effective_params({})
        parts = [f"{key}={effective[key]!r}" for key in sorted(effective)]
        if entry.accepted_params is None:
            parts.append("**params")
        if parts:
            print(f"{'':24s} params: {' '.join(parts)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    base: dict[str, Any] = {}
    for assignment in args.fixed:
        key, value = _parse_assignment(assignment)
        base[key] = _parse_value(value)
    axes: dict[str, list[Any]] = {}
    for assignment in args.sweeps:
        key, values = _parse_assignment(assignment)
        axes[key] = [_parse_value(value) for value in values.split(",") if value != ""]

    specs = grid(
        args.scenario,
        seeds=range(args.seed, args.seed + max(1, args.seeds)),
        base=base,
        **axes,
    )
    # Fail fast on unknown scenario names or parameter typos, before the
    # backend starts chewing through the grid.
    entry = DEFAULT_REGISTRY.get(args.scenario)
    entry.validate_params({**base, **axes})

    if args.no_cache and args.cache_dir is not None:
        raise ConfigurationError(
            "--no-cache and --cache-dir are contradictory; pass one or the other"
        )
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
        if cache_dir is not None:
            # The runner exports the directory per point execution, so
            # workers and the policy-table precompute path share it.
            cache = ResultCache(cache_dir)

    supervision = _build_supervision(args)
    if args.resume and cache is None:
        raise ConfigurationError(
            "--resume needs a journal location: pass --cache-dir or set "
            f"${CACHE_DIR_ENV} (the journal lives under the cache directory)"
        )

    started = time.perf_counter()
    # With --no-cache, clear the inherited $REPRO_CACHE_DIR for the run's
    # duration so the policy-table precompute path cannot reuse artifacts
    # either; the caller's environment is restored afterwards.
    with cache_dir_override(None, clear=args.no_cache):
        store = run_specs(
            specs,
            backend=args.backend,
            workers=args.workers,
            cache=cache,
            supervision=supervision,
            resume=args.resume,
        )
    elapsed = time.perf_counter() - started

    title = f"{args.scenario}: {len(store)} points via {args.backend} backend in {elapsed:.2f}s"
    print(format_table(store.rows(), title=title))
    if cache is not None:
        corrupt = f", {store.cache_corrupt} corrupt" if store.cache_corrupt else ""
        print(
            f"cache: {store.cache_hits} hit(s), {store.cache_misses} miss(es)"
            f"{corrupt} in {cache.root}"
        )
    if supervision is not None:
        counts = store.counts()
        print(
            f"supervision: {counts['completed']} completed, "
            f"{counts['quarantined']} quarantined, {counts['retries']} retried, "
            f"{counts['resumed']} resumed from journal"
        )
        for point in store.quarantined:
            print(
                f"quarantined: {point.spec.label} after {point.attempts} "
                f"attempt(s): {point.error}",
                file=sys.stderr,
            )
    if args.timing:
        print(f"\nper-point wall time total: {store.total_wall_time:.2f}s")
    if args.json:
        store.to_json(args.json, include_timing=args.timing)
        print(f"wrote JSON artifact to {args.json}")
    if args.csv:
        store.to_csv(args.csv)
        print(f"wrote CSV artifact to {args.csv}")
    return 1 if store.quarantined else 0


def _format_bytes(count: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024
    return f"{int(count)} B"  # pragma: no cover - unreachable


def _cmd_cache(args: argparse.Namespace) -> int:
    cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
    if cache_dir is None:
        raise ConfigurationError(
            f"no cache directory: pass --cache-dir or set ${CACHE_DIR_ENV}"
        )
    cache = ResultCache(cache_dir)

    if args.cache_command == "list":
        stats = cache.stats()
        print(f"cache: {stats.root}")
        print(f"entries: {stats.entries} ({_format_bytes(stats.bytes)})")
        print(
            f"corpus traces: {stats.corpus_entries} "
            f"({_format_bytes(stats.corpus_bytes)}, manifest never pruned)"
        )
        print(
            f"quarantined: {stats.quarantined} "
            f"({_format_bytes(stats.quarantined_bytes)})"
        )
        print(f"oldest entry: {stats.oldest_age_s / 86_400.0:.1f} day(s)")
        return 0

    if (
        args.max_age_days is None
        and args.max_size_mb is None
        and not args.sweep_quarantine
    ):
        raise ConfigurationError(
            "cache prune needs at least one criterion: --max-age-days, "
            "--max-size-mb, or --sweep-quarantine"
        )
    if args.max_age_days is not None and args.max_age_days < 0:
        raise ConfigurationError("--max-age-days must be >= 0")
    if args.max_size_mb is not None and args.max_size_mb < 0:
        raise ConfigurationError("--max-size-mb must be >= 0")
    report = cache.gc(
        max_age_s=args.max_age_days * 86_400.0 if args.max_age_days is not None else None,
        max_total_bytes=int(args.max_size_mb * 1024 * 1024)
        if args.max_size_mb is not None
        else None,
        sweep_quarantine=args.sweep_quarantine,
        dry_run=args.dry_run,
    )
    verb = "would remove" if report.dry_run else "removed"
    print(
        f"{verb}: {len(report.removed)} entr(ies), "
        f"{_format_bytes(report.freed_bytes)} freed"
    )
    if args.sweep_quarantine:
        print(
            f"quarantine {verb}: {len(report.quarantine_removed)} file(s), "
            f"{_format_bytes(report.quarantine_freed_bytes)} freed"
        )
    return 0


def _build_supervision(args: argparse.Namespace) -> Optional[Supervision]:
    """The :class:`Supervision` the flags ask for, or ``None`` (fast path).

    The unsupervised path stays the default so plain sweeps pay zero
    journalling overhead; touching any fault-tolerance flag opts in.
    """
    requested = (
        args.resume
        or args.strict
        or args.max_retries is not None
        or args.point_timeout is not None
        or args.retry_backoff is not None
        or args.inject_faults is not None
    )
    if not requested:
        return None
    if args.max_retries is not None and args.max_retries < 0:
        raise ConfigurationError("--max-retries must be >= 0")
    if args.point_timeout is not None and args.point_timeout <= 0:
        raise ConfigurationError("--point-timeout must be positive")
    plan = FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    defaults = Supervision()
    return Supervision(
        max_retries=args.max_retries if args.max_retries is not None else defaults.max_retries,
        point_timeout=args.point_timeout,
        backoff=args.retry_backoff if args.retry_backoff is not None else defaults.backoff,
        seed=args.seed,
        strict=args.strict,
        fault_plan=plan,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_scenarios and args.command not in (None, "list"):
            parser.error("--list cannot be combined with the 'run' command")
        if args.command == "list" or args.list_scenarios:
            return _cmd_list()
        if args.command == "cache":
            return _cmd_cache(args)
        if args.command is None:
            parser.error("a command is required (list, run, cache) unless --list is given")
        return _cmd_run(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except PointFailureError as error:
        # --strict: the supervised driver already tore the workers down;
        # surface the exhausted point and its last error.
        print(f"error: {error}", file=sys.stderr)
        return 3
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
