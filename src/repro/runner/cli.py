"""Command-line entry point for the scenario runner.

::

    python -m repro.runner list
    python -m repro.runner run figure3_alpha --sweep alpha=0.9,1,2.5,5 \
        --backend parallel --workers 4 --json sweep.json
    python -m repro.runner run figure3_alpha --sweep alpha=0.9,1,2.5,5 \
        --backend async --cache-dir .repro-cache

``run`` expands ``--sweep`` axes into the cross product of points (times
``--seeds`` trials), executes them on the chosen backend, prints the metric
table, and optionally writes the canonical JSON / CSV artifacts.

With ``--cache-dir`` (or ``$REPRO_CACHE_DIR``) every executed point is
persisted under its fingerprint-derived key and replayed on later runs —
a warm rerun of the same grid reports all hits and produces bit-identical
artifacts.  ``--no-cache`` forces execution even when a cache directory is
configured in the environment.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Any, Sequence

from repro._persist import cache_dir_override
from repro.errors import ConfigurationError
from repro.metrics.summary import format_table
from repro.runner.backends import RUNNER_BACKENDS, run_specs
from repro.runner.cache import CACHE_DIR_ENV, ResultCache, default_cache_dir
from repro.runner.registry import DEFAULT_REGISTRY
from repro.runner.spec import grid


def _parse_value(text: str) -> Any:
    """Parse a CLI parameter value: int, float, bool, or string."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def _parse_assignment(text: str) -> tuple[str, str]:
    if "=" not in text:
        raise ConfigurationError(f"expected key=value, got {text!r}")
    key, _, value = text.partition("=")
    return key.strip(), value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.runner",
        description="Run registered simulation scenarios, serially or in parallel.",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list registered scenarios (alias for the 'list' command)",
    )
    commands = parser.add_subparsers(dest="command", required=False)

    commands.add_parser("list", help="list registered scenarios")

    run = commands.add_parser("run", help="run one scenario over a parameter grid")
    run.add_argument("scenario", help="registered scenario name (see 'list')")
    run.add_argument(
        "--set",
        dest="fixed",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="fix one parameter for every point (repeatable)",
    )
    run.add_argument(
        "--sweep",
        dest="sweeps",
        action="append",
        default=[],
        metavar="KEY=V1,V2,...",
        help="sweep one parameter axis; repeat for a cross product",
    )
    run.add_argument("--seed", type=int, default=0, help="base seed (default 0)")
    run.add_argument(
        "--seeds",
        type=int,
        default=1,
        help="number of seed trials per grid point, seeds seed..seed+N-1",
    )
    run.add_argument(
        "--backend",
        choices=tuple(RUNNER_BACKENDS.names()),
        default="serial",
        help="execution backend (default serial)",
    )
    run.add_argument("--workers", type=int, default=None, help="parallel worker count")
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help=(
            "persist executed points under PATH and replay them on reruns "
            f"(default: ${CACHE_DIR_ENV} when set, else no caching)"
        ),
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="execute every point even when a cache directory is configured",
    )
    run.add_argument("--json", default=None, metavar="PATH", help="write canonical JSON artifact")
    run.add_argument("--csv", default=None, metavar="PATH", help="write CSV artifact")
    run.add_argument("--timing", action="store_true", help="include per-point wall time")
    return parser


def _cmd_list() -> int:
    for entry in DEFAULT_REGISTRY:
        print(f"{entry.name:24s} {entry.description}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    base: dict[str, Any] = {}
    for assignment in args.fixed:
        key, value = _parse_assignment(assignment)
        base[key] = _parse_value(value)
    axes: dict[str, list[Any]] = {}
    for assignment in args.sweeps:
        key, values = _parse_assignment(assignment)
        axes[key] = [_parse_value(value) for value in values.split(",") if value != ""]

    specs = grid(
        args.scenario,
        seeds=range(args.seed, args.seed + max(1, args.seeds)),
        base=base,
        **axes,
    )
    # Fail fast on unknown scenario names or parameter typos, before the
    # backend starts chewing through the grid.
    entry = DEFAULT_REGISTRY.get(args.scenario)
    entry.validate_params({**base, **axes})

    if args.no_cache and args.cache_dir is not None:
        raise ConfigurationError(
            "--no-cache and --cache-dir are contradictory; pass one or the other"
        )
    cache = None
    if not args.no_cache:
        cache_dir = args.cache_dir if args.cache_dir is not None else default_cache_dir()
        if cache_dir is not None:
            # The runner exports the directory per point execution, so
            # workers and the policy-table precompute path share it.
            cache = ResultCache(cache_dir)

    started = time.perf_counter()
    # With --no-cache, clear the inherited $REPRO_CACHE_DIR for the run's
    # duration so the policy-table precompute path cannot reuse artifacts
    # either; the caller's environment is restored afterwards.
    with cache_dir_override(None, clear=args.no_cache):
        store = run_specs(specs, backend=args.backend, workers=args.workers, cache=cache)
    elapsed = time.perf_counter() - started

    title = f"{args.scenario}: {len(store)} points via {args.backend} backend in {elapsed:.2f}s"
    print(format_table(store.rows(), title=title))
    if cache is not None:
        print(
            f"cache: {store.cache_hits} hit(s), {store.cache_misses} miss(es) "
            f"in {cache.root}"
        )
    if args.timing:
        print(f"\nper-point wall time total: {store.total_wall_time:.2f}s")
    if args.json:
        store.to_json(args.json, include_timing=args.timing)
        print(f"wrote JSON artifact to {args.json}")
    if args.csv:
        store.to_csv(args.csv)
        print(f"wrote CSV artifact to {args.csv}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.list_scenarios and args.command not in (None, "list"):
            parser.error("--list cannot be combined with the 'run' command")
        if args.command == "list" or args.list_scenarios:
            return _cmd_list()
        if args.command is None:
            parser.error("a command is required (list, run) unless --list is given")
        return _cmd_run(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
