"""The paper's primary contribution: model-based transmission control.

* :mod:`repro.core.utility` — explicit instantaneous utility functions
  (§3.3): exponentially discounted throughput, α-weighted cross traffic,
  optional latency penalty.
* :mod:`repro.core.actions` — the action space ("send now" / "sleep until
  *t*") and action-grid construction.
* :mod:`repro.core.planner` — the expected-utility planner that simulates
  the consequences of each candidate action on every hypothesis.
* :mod:`repro.core.isender` — the ISENDER element that ties the belief
  state, the planner, and the real network together.
* :mod:`repro.core.policy` — memoized decisions (the paper's observation
  that the utility-maximizing behaviour can be precomputed into a policy).
"""

from repro.core.actions import Action, ActionGrid
from repro.core.isender import ISender
from repro.core.planner import Decision, ExpectedUtilityPlanner
from repro.core.policy import PolicyCache
from repro.core.utility import (
    AlphaWeightedUtility,
    LatencyPenaltyUtility,
    ThroughputUtility,
    UtilityFunction,
)

__all__ = [
    "Action",
    "ActionGrid",
    "AlphaWeightedUtility",
    "Decision",
    "ExpectedUtilityPlanner",
    "ISender",
    "LatencyPenaltyUtility",
    "PolicyCache",
    "ThroughputUtility",
    "UtilityFunction",
]
