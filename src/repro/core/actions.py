"""The sender's action space: "send now" or "sleep until time t" (§3.2).

An :class:`Action` is simply a non-negative delay before the next
transmission; zero means "send now".  An :class:`ActionGrid` builds the list
of candidate delays the planner evaluates — the paper's "list of strategies
including sending immediately and at every delay up to the slowest rate the
ISENDER could optimally send".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Action:
    """One candidate strategy: transmit after ``delay`` seconds."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ConfigurationError(f"action delay must be non-negative, got {self.delay!r}")

    @property
    def send_now(self) -> bool:
        """Whether this action transmits immediately."""
        return self.delay == 0.0


class ActionGrid:
    """Builds the candidate delays evaluated at each wake-up.

    The grid is expressed as multiples of the packet service time at the
    (currently believed) link speed: sending slower than the largest
    multiple can never be optimal for a throughput-seeking sender because
    the sender re-plans when it wakes, so the largest multiple simply bounds
    how long it will sleep before reconsidering.

    Parameters
    ----------
    multiples:
        Service-time multiples to evaluate; 0 must normally be included so
        "send now" is always an option.
    max_delay:
        Optional absolute cap on the delay, in seconds.
    """

    DEFAULT_MULTIPLES = (0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 8.0)

    def __init__(
        self,
        multiples: tuple[float, ...] = DEFAULT_MULTIPLES,
        max_delay: float | None = None,
    ) -> None:
        if not multiples:
            raise ConfigurationError("an action grid needs at least one multiple")
        if any(multiple < 0 for multiple in multiples):
            raise ConfigurationError("action-grid multiples must be non-negative")
        if max_delay is not None and max_delay <= 0:
            raise ConfigurationError(f"max_delay must be positive, got {max_delay!r}")
        self.multiples = tuple(sorted(set(multiples)))
        self.max_delay = max_delay

    def actions(self, service_time: float) -> list[Action]:
        """Candidate actions given the believed packet service time in seconds."""
        if service_time <= 0:
            raise ConfigurationError(f"service_time must be positive, got {service_time!r}")
        delays: list[float] = []
        for multiple in self.multiples:
            delay = multiple * service_time
            if self.max_delay is not None:
                delay = min(delay, self.max_delay)
            if delay not in delays:
                delays.append(delay)
        return [Action(delay) for delay in delays]
