"""Memoized decisions.

The paper notes (§3.3) that "for a particular model and distribution of
possible states, there will be a policy that can be computed in advance that
prescribes the utility-maximizing behavior".  :class:`PolicyCache` is the
*runtime* version of that observation: it memoizes planner decisions keyed
on a coarse digest of the belief state, so repeated visits to effectively
identical situations (for example the steady state once the parameters have
been inferred) reuse the earlier computation instead of re-simulating every
action.  The *offline* version — a table precomputed ahead of the run and
serializable between processes — is :class:`repro.api.policy.PolicyTable`;
both plug into :class:`~repro.core.isender.ISender` through the same
``policy=`` slot (``SenderConfig(policy="cache" | "table")``).
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.core.planner import Decision, ExpectedUtilityPlanner
from repro.inference.belief import BeliefState


class PolicyCache:
    """A decision cache keyed on a discretized belief signature.

    Parameters
    ----------
    planner:
        The planner to consult on cache misses.
    queue_resolution_bits:
        Queue occupancies are rounded to this resolution when building the
        cache key; coarser values give more cache hits at the cost of
        slightly stale decisions.
    max_entries:
        Hard cap on the cache size (oldest entries are evicted first).
    """

    #: Whether fallback-planned decisions are stored (subclasses may freeze).
    learn = True

    def __init__(
        self,
        planner: ExpectedUtilityPlanner,
        queue_resolution_bits: float = 3_000.0,
        max_entries: int = 4_096,
    ) -> None:
        self.planner = planner
        self.queue_resolution_bits = queue_resolution_bits
        self.max_entries = max_entries
        self._cache: dict[Hashable, Decision] = {}
        self.hits = 0
        self.misses = 0

    def decide(self, belief: BeliefState, now: float) -> Decision:
        """Return a cached decision when the belief looks the same, else plan."""
        key = self._belief_key(belief)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        decision = self._plan(belief, now)
        if self.learn:
            self._store(key, decision)
        return decision

    def _plan(self, belief: BeliefState, now: float) -> Decision:
        """Compute a decision for a signature the store does not cover."""
        return self.planner.decide(belief, now)

    def _store(self, key: Hashable, decision: Decision) -> None:
        """Insert one entry, evicting the oldest at the size cap.

        Eviction happens only when ``key`` is genuinely new: an
        update-in-place of an existing entry must never push an unrelated
        cached decision out of the store.
        """
        if key not in self._cache and len(self._cache) >= self.max_entries:
            self._cache.pop(next(iter(self._cache)))
        self._cache[key] = decision

    def clear(self) -> None:
        """Drop every cached decision."""
        self._cache.clear()

    @property
    def size(self) -> int:
        """Number of cached decisions."""
        return len(self._cache)

    def _belief_key(self, belief: BeliefState) -> Hashable:
        """A coarse, time-invariant digest of the belief's decision-relevant state.

        Delegated to :meth:`BeliefState.decision_signature` so the
        vectorized backend can build the digest straight from its ensemble
        rows — keeping the cached decide path free of scalar ``Hypothesis``
        materialization.
        """
        return belief.decision_signature(self.planner.top_k, self.queue_resolution_bits)
