"""The expected-utility planner (§3.2).

At every wake-up the planner enumerates candidate actions ("send now", or
"sleep for d seconds and then send"), simulates the consequences of each on
the highest-weight hypotheses of the belief state, and chooses the action
whose expected utility — the probability-weighted average over hypotheses —
is largest.  Ties are broken toward the longer delay, so a sender that is
indifferent does not flood the network.

Rollout backends implement the (action × hypothesis) fan-out and resolve
through the :data:`~repro.api.backends.ROLLOUT_BACKENDS` registry (each
engine is a callable ``engine(planner, belief, now) -> Decision``):

* ``"scalar"`` — the reference oracle registered below: one
  :meth:`~repro.inference.hypothesis.Hypothesis.rollout` (clone + advance a
  scalar ``LinkModel``) per lane;
* ``"vectorized"`` — the batched engine registered by
  :mod:`repro.inference.vectorized.rollout`: all A×K lanes advance together
  through one masked event frontier, and the utility values every lane at
  once via ``evaluate_batch``.  When the belief backend is also vectorized,
  the lanes are packed straight from ``EnsembleState`` rows, so the decide
  path materializes no scalar ``Hypothesis`` objects at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.api.backends import ROLLOUT_BACKENDS
from repro.core.actions import Action, ActionGrid
from repro.core.utility import UtilityFunction
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.units import DEFAULT_PACKET_BITS


@dataclass(slots=True)
class Decision:
    """The planner's choice at one wake-up, with diagnostics."""

    action: Action
    expected_utilities: dict[float, float] = field(default_factory=dict)
    hypotheses_evaluated: int = 0
    horizon: float = 0.0

    @property
    def delay(self) -> float:
        """Seconds to wait before transmitting (zero means send now)."""
        return self.action.delay

    @property
    def send_now(self) -> bool:
        """Whether the chosen action is an immediate transmission."""
        return self.action.send_now


@dataclass(slots=True)
class _TopSummary:
    """One pass over the top-k list: weights plus the planner's aggregates.

    ``decide()`` used to walk the top-k hypotheses three times (total
    weight, believed service time, horizon drain); this extracts the raw
    ``(weight, link rate, drain time)`` triples in a single walk — shared
    by both rollout backends — and derives the aggregates with arithmetic
    identical to the original three walks.
    """

    weights: list[float]
    total_weight: float
    service_time: float
    drain: float  # weighted mean drain time; 0.0 when a fixed horizon skips it

    @property
    def count(self) -> int:
        return len(self.weights)


class ExpectedUtilityPlanner:
    """Chooses the action that maximizes expected utility under the belief.

    Parameters
    ----------
    utility:
        The utility function being maximized.
    action_grid:
        Candidate delays, as multiples of the believed packet service time.
    packet_bits:
        Size of the sender's (uniform) packets.
    horizon:
        Rollout horizon in seconds.  ``None`` derives it per decision as
        ``horizon_service_multiples`` believed service times plus the
        believed buffer drain time — an operational version of the paper's
        "until the consequences of the hypothetically sent packet cease to
        linger".
    horizon_service_multiples:
        Used only when ``horizon`` is ``None``.
    top_k:
        Number of highest-weight hypotheses to evaluate (the rest contribute
        negligibly and are skipped for speed).
    rollout_backend:
        Name of a registered rollout engine — ``"scalar"`` (per-lane
        ``Hypothesis.rollout``, the reference oracle), ``"vectorized"``
        (the batched lane engine), or ``"fused"`` (the single-pass wake-up
        kernel: ensemble rows alias straight into the rollout frontier
        with no ``RolloutLanes`` repack, and back-to-back departure runs
        drain in one prefix-sum pass).  Resolved through
        :data:`~repro.api.backends.ROLLOUT_BACKENDS` at construction, so an
        unknown name raises :class:`~repro.errors.UnknownBackendError`
        immediately, listing the registered engines.
    """

    #: Optional per-stage checkpoint callback ``probe(stage, payload)`` fired
    #: by both rollout engines during a decision (stages ``summary``,
    #: ``lanes``, ``rollout``, ``utility``, ``decision``).  Both engines emit
    #: the same stages in the same lane order (action-major, ``a * k + j``),
    #: which is what :mod:`repro.diagnostics` bisects to localize rollout
    #: drift.  ``None`` (the default) keeps the decide path probe-free.
    decision_probe = None

    def __init__(
        self,
        utility: UtilityFunction,
        action_grid: Optional[ActionGrid] = None,
        packet_bits: float = DEFAULT_PACKET_BITS,
        horizon: Optional[float] = None,
        horizon_service_multiples: float = 12.0,
        top_k: int = 24,
        rollout_backend: str = "scalar",
    ) -> None:
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits!r}")
        if top_k < 1:
            raise ConfigurationError(f"top_k must be at least 1, got {top_k!r}")
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
        if horizon_service_multiples <= 0:
            raise ConfigurationError("horizon_service_multiples must be positive")
        self._rollout_engine = ROLLOUT_BACKENDS.resolve(rollout_backend)
        self.utility = utility
        self.action_grid = action_grid if action_grid is not None else ActionGrid()
        self.packet_bits = packet_bits
        self.horizon = horizon
        self.horizon_service_multiples = horizon_service_multiples
        self.top_k = top_k
        self.rollout_backend = rollout_backend
        #: Number of rollouts performed so far (for ablation benchmarks).
        self.rollouts_performed = 0

    # -------------------------------------------------------------- decisions

    def decide(self, belief: BeliefState, now: float) -> Decision:
        """Return the utility-maximizing action at time ``now``.

        Dispatches to the rollout engine resolved at construction from
        :data:`~repro.api.backends.ROLLOUT_BACKENDS`.
        """
        return self._rollout_engine(self, belief, now)

    # ----------------------------------------------------------------- helpers

    def _summarize_hypotheses(self, top) -> _TopSummary:
        """Single walk over scalar ``(hypothesis, weight)`` pairs."""
        weights: list[float] = []
        rates: list[float] = []
        drains: list[float] | None = [] if self.horizon is None else None
        for hypothesis, weight in top:
            weights.append(weight)
            rates.append(hypothesis.model.params.link_rate_bps)
            if drains is not None:
                drains.append(hypothesis.model.drain_time())
        return self._aggregate(weights, rates, drains)

    def _summarize_rows(self, state, rows, weights: list[float]) -> _TopSummary:
        """Single walk over ensemble rows — no ``Hypothesis`` materialization.

        Uses the same per-row Python-float arithmetic as the scalar walk
        (including ``LinkModel.drain_time``'s formula), so the aggregates
        are bit-identical across belief backends.
        """
        rates = state.link_rate[rows].tolist()
        drains: list[float] | None = None
        if self.horizon is None:
            drains = []
            time = state.time
            queue_bits = state.queue_bits[rows].tolist()
            svc_active = state.svc_active[rows].tolist()
            svc_completion = state.svc_completion[rows].tolist()
            for rate, bits, active, completion in zip(
                rates, queue_bits, svc_active, svc_completion
            ):
                remaining = bits
                if active:
                    remaining += max(0.0, (completion - time) * rate)
                drains.append(remaining / rate)
        return self._aggregate(list(weights), rates, drains)

    def _aggregate(
        self,
        weights: list[float],
        rates: list[float],
        drains: list[float] | None,
    ) -> _TopSummary:
        """Derive the planner aggregates from one extracted walk."""
        total_weight = sum(weights)
        if total_weight <= 0:
            raise ConfigurationError("belief state has no usable hypotheses")
        rate = 0.0
        for weight, link_rate in zip(weights, rates):
            rate += (weight / total_weight) * link_rate
        service_time = self.packet_bits / rate
        drain = 0.0
        if drains is not None:
            for weight, drain_time in zip(weights, drains):
                drain += (weight / total_weight) * drain_time
        return _TopSummary(
            weights=weights,
            total_weight=total_weight,
            service_time=service_time,
            drain=drain,
        )

    def _horizon_from(self, summary: _TopSummary) -> float:
        if self.horizon is not None:
            return self.horizon
        return summary.drain + self.horizon_service_multiples * summary.service_time

    @staticmethod
    def _argmax_prefer_longer_delay(actions: list[Action], expected: dict[float, float]) -> Action:
        best: Optional[Action] = None
        best_value = float("-inf")
        tolerance = 1e-9
        for action in actions:  # actions are sorted by increasing delay
            value = expected[action.delay]
            if value > best_value + tolerance or best is None:
                best = action
                best_value = value
            elif abs(value - best_value) <= tolerance:
                best = action  # prefer the longer delay on ties
        return best


def rollout_outcome_digest(outcome) -> dict:
    """A canonical, comparable summary of one rollout lane's outcome.

    Both rollout engines produce digests in the same lane order
    (action-major), so :mod:`repro.diagnostics` can pinpoint the first
    differing lane of the frontier.
    """
    return {
        "own_deliveries": [tuple(entry) for entry in outcome.own_deliveries],
        "own_drops": [tuple(entry) for entry in outcome.own_drops],
        "cross_deliveries": [tuple(entry) for entry in outcome.cross_deliveries],
        "cross_drops": [tuple(entry) for entry in outcome.cross_drops],
        "hypothetical_delivered": outcome.hypothetical_delivered,
        "hypothetical_delivery_time": outcome.hypothetical_delivery_time,
        "final_queue_bits": outcome.final_queue_bits,
        "final_cross_backlog_bits": outcome.final_cross_backlog_bits,
    }


@ROLLOUT_BACKENDS.register("scalar")
def decide_scalar(
    planner: ExpectedUtilityPlanner, belief: BeliefState, now: float
) -> Decision:
    """The reference rollout engine: one scalar model clone per lane."""
    top = belief.top(planner.top_k)
    summary = planner._summarize_hypotheses(top)
    actions = planner.action_grid.actions(summary.service_time)
    horizon = planner._horizon_from(summary)
    total_weight = summary.total_weight

    probe = planner.decision_probe
    lane_digests: list[dict] = []
    lane_values: list[float] = []
    if probe is not None:
        probe(
            "summary",
            {
                "service_time": summary.service_time,
                "horizon": horizon,
                "weights": list(summary.weights),
                "actions": [action.delay for action in actions],
            },
        )
        # The scalar engine has no lane buffers of its own; packing the top
        # hypotheses through the shared packer yields the same canonical
        # snapshot the vectorized engine checkpoints.  Imported lazily: the
        # vectorized module imports this one for its registry types.
        from repro.inference.vectorized.rollout import pack_hypotheses

        probe("lanes", pack_hypotheses([h for h, _ in top]).checkpoint())

    expected: dict[float, float] = {}
    for action in actions:
        accumulated = 0.0
        for hypothesis, weight in top:
            outcome = hypothesis.rollout(
                action_delay=action.delay,
                horizon=horizon,
                packet_bits=planner.packet_bits,
                now=now,
            )
            planner.rollouts_performed += 1
            value = planner.utility.evaluate(outcome)
            if probe is not None:
                lane_digests.append(rollout_outcome_digest(outcome))
                lane_values.append(value)
            accumulated += (weight / total_weight) * value
        expected[action.delay] = accumulated

    best_action = planner._argmax_prefer_longer_delay(actions, expected)
    if probe is not None:
        probe("rollout", {"lanes": lane_digests})
        probe("utility", {"values": lane_values})
        probe(
            "decision",
            {"expected": dict(expected), "delay": best_action.delay, "horizon": horizon},
        )
    return Decision(
        action=best_action,
        expected_utilities=expected,
        hypotheses_evaluated=summary.count,
        horizon=horizon,
    )
