"""The expected-utility planner (§3.2).

At every wake-up the planner enumerates candidate actions ("send now", or
"sleep for d seconds and then send"), simulates the consequences of each on
the highest-weight hypotheses of the belief state, and chooses the action
whose expected utility — the probability-weighted average over hypotheses —
is largest.  Ties are broken toward the longer delay, so a sender that is
indifferent does not flood the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.actions import Action, ActionGrid
from repro.core.utility import UtilityFunction
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.units import DEFAULT_PACKET_BITS


@dataclass(slots=True)
class Decision:
    """The planner's choice at one wake-up, with diagnostics."""

    action: Action
    expected_utilities: dict[float, float] = field(default_factory=dict)
    hypotheses_evaluated: int = 0
    horizon: float = 0.0

    @property
    def delay(self) -> float:
        """Seconds to wait before transmitting (zero means send now)."""
        return self.action.delay

    @property
    def send_now(self) -> bool:
        """Whether the chosen action is an immediate transmission."""
        return self.action.send_now


class ExpectedUtilityPlanner:
    """Chooses the action that maximizes expected utility under the belief.

    Parameters
    ----------
    utility:
        The utility function being maximized.
    action_grid:
        Candidate delays, as multiples of the believed packet service time.
    packet_bits:
        Size of the sender's (uniform) packets.
    horizon:
        Rollout horizon in seconds.  ``None`` derives it per decision as
        ``horizon_service_multiples`` believed service times plus the
        believed buffer drain time — an operational version of the paper's
        "until the consequences of the hypothetically sent packet cease to
        linger".
    horizon_service_multiples:
        Used only when ``horizon`` is ``None``.
    top_k:
        Number of highest-weight hypotheses to evaluate (the rest contribute
        negligibly and are skipped for speed).
    """

    def __init__(
        self,
        utility: UtilityFunction,
        action_grid: Optional[ActionGrid] = None,
        packet_bits: float = DEFAULT_PACKET_BITS,
        horizon: Optional[float] = None,
        horizon_service_multiples: float = 12.0,
        top_k: int = 24,
    ) -> None:
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits!r}")
        if top_k < 1:
            raise ConfigurationError(f"top_k must be at least 1, got {top_k!r}")
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be positive, got {horizon!r}")
        if horizon_service_multiples <= 0:
            raise ConfigurationError("horizon_service_multiples must be positive")
        self.utility = utility
        self.action_grid = action_grid if action_grid is not None else ActionGrid()
        self.packet_bits = packet_bits
        self.horizon = horizon
        self.horizon_service_multiples = horizon_service_multiples
        self.top_k = top_k
        #: Number of rollouts performed so far (for ablation benchmarks).
        self.rollouts_performed = 0

    # -------------------------------------------------------------- decisions

    def decide(self, belief: BeliefState, now: float) -> Decision:
        """Return the utility-maximizing action at time ``now``."""
        top = belief.top(self.top_k)
        total_weight = sum(weight for _, weight in top)
        if total_weight <= 0:
            raise ConfigurationError("belief state has no usable hypotheses")

        service_time = self._believed_service_time(top, total_weight)
        actions = self.action_grid.actions(service_time)
        horizon = self._horizon(top, total_weight, service_time)

        expected: dict[float, float] = {}
        for action in actions:
            accumulated = 0.0
            for hypothesis, weight in top:
                outcome = hypothesis.rollout(
                    action_delay=action.delay,
                    horizon=horizon,
                    packet_bits=self.packet_bits,
                    now=now,
                )
                self.rollouts_performed += 1
                accumulated += (weight / total_weight) * self.utility.evaluate(outcome)
            expected[action.delay] = accumulated

        best_action = self._argmax_prefer_longer_delay(actions, expected)
        return Decision(
            action=best_action,
            expected_utilities=expected,
            hypotheses_evaluated=len(top),
            horizon=horizon,
        )

    # ----------------------------------------------------------------- helpers

    def _believed_service_time(self, top, total_weight) -> float:
        rate = 0.0
        for hypothesis, weight in top:
            rate += (weight / total_weight) * hypothesis.model.params.link_rate_bps
        return self.packet_bits / rate

    def _horizon(self, top, total_weight, service_time) -> float:
        if self.horizon is not None:
            return self.horizon
        drain = 0.0
        for hypothesis, weight in top:
            drain += (weight / total_weight) * hypothesis.model.drain_time()
        return drain + self.horizon_service_multiples * service_time

    @staticmethod
    def _argmax_prefer_longer_delay(actions: list[Action], expected: dict[float, float]) -> Action:
        best: Optional[Action] = None
        best_value = float("-inf")
        tolerance = 1e-9
        for action in actions:  # actions are sorted by increasing delay
            value = expected[action.delay]
            if value > best_value + tolerance or best is None:
                best = action
                best_value = value
            elif abs(value - best_value) <= tolerance:
                best = action  # prefer the longer delay on ties
        return best
