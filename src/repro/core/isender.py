"""ISENDER — the model-based sender (§3.2).

The ISender has exactly the two jobs the paper gives it:

1. maintain a probability distribution over possible network configurations
   (delegated to :class:`~repro.inference.belief.BeliefState`), and
2. at every wake-up — an acknowledgement arriving or its own timer expiring —
   take the action ("send now" or "sleep until *t*") that maximizes the
   expected utility (delegated to
   :class:`~repro.core.planner.ExpectedUtilityPlanner`).

The element plugs into the discrete-event simulator like any other source:
connect it to the entry of the network under test and give it the Receiver
whose acknowledgements it should listen to.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.planner import Decision, ExpectedUtilityPlanner
from repro.core.policy import PolicyCache
from repro.elements.receiver import Delivery, Receiver
from repro.errors import ConfigurationError
from repro.inference.belief import BeliefState
from repro.inference.observation import AckObservation, SentRecord
from repro.sim.element import SourceElement
from repro.sim.events import Event
from repro.sim.packet import Packet
from repro.units import DEFAULT_PACKET_BITS


@dataclass(slots=True)
class DecisionRecord:
    """One planning step taken by the sender (kept for analysis and tests)."""

    time: float
    delay: float
    sent_seq: Optional[int]
    hypotheses: int
    expected_utilities: dict[float, float] = field(default_factory=dict)


class ISender(SourceElement):
    """The utility-maximizing, uncertainty-tracking sender.

    Parameters
    ----------
    belief:
        The sender's belief over network configurations.
    planner:
        The expected-utility planner.
    policy:
        Optional decision policy consulted *instead of* the planner at each
        wake-up — anything with ``decide(belief, now)`` that falls back to
        the planner itself, i.e. a :class:`~repro.core.policy.PolicyCache`
        (runtime memoization) or a precomputed
        :class:`~repro.api.policy.PolicyTable` (§3.3).  ``None`` plans live.
        ``use_policy_cache=True`` is the older spelling of
        ``policy=PolicyCache(planner)`` and is kept as a shim.
    receiver:
        The Receiver at the far end of the network; the sender registers
        itself for acknowledgement callbacks.
    flow:
        Flow name stamped on transmitted packets.
    packet_bits:
        Size of every transmitted packet (the paper assumes uniform sizes).
    start_time / stop_time:
        When the sender begins making decisions, and (optionally) when it
        stops transmitting.
    max_sends_per_wake:
        Safety valve on how many packets a single wake-up may emit.
    """

    def __init__(
        self,
        belief: BeliefState,
        planner: ExpectedUtilityPlanner,
        receiver: Receiver,
        flow: str = "isender",
        packet_bits: float = DEFAULT_PACKET_BITS,
        name: str | None = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
        max_sends_per_wake: int = 64,
        use_policy_cache: bool = False,
        policy=None,
    ) -> None:
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits!r}")
        if max_sends_per_wake < 1:
            raise ConfigurationError("max_sends_per_wake must be at least 1")
        if policy is not None and use_policy_cache:
            raise ConfigurationError(
                "pass either policy=... or use_policy_cache=True, not both"
            )
        super().__init__(name or "isender")
        self.belief = belief
        self.planner = planner
        if policy is None and use_policy_cache:
            policy = PolicyCache(planner)
        #: The active decision policy (cache or table), ``None`` when live.
        self.policy = policy
        self._decider = policy if policy is not None else planner
        self.receiver = receiver
        self.flow = flow
        self.packet_bits = float(packet_bits)
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.max_sends_per_wake = max_sends_per_wake

        self.sent: list[SentRecord] = []
        self.acks: list[AckObservation] = []
        self.decisions: list[DecisionRecord] = []
        self._pending_acks: list[AckObservation] = []
        self._next_seq = 0
        self._timer: Optional[Event] = None
        self._wake_scheduled = False

        receiver.on_deliver = self._on_delivery

    # ------------------------------------------------------------- life cycle

    def start(self) -> None:
        self.sim.schedule_at(max(self.start_time, self.sim.now), self._wake)

    # ----------------------------------------------------------------- events

    def _on_delivery(self, delivery: Delivery) -> None:
        """Acknowledgement callback installed on the Receiver."""
        ack = AckObservation(
            seq=delivery.seq,
            received_at=delivery.received_at,
            ack_at=self.sim.now,
        )
        self._pending_acks.append(ack)
        self.acks.append(ack)
        self.trace("ack", seq=ack.seq, received_at=ack.received_at)
        self._wake_soon()

    def _wake_soon(self) -> None:
        """Schedule an immediate wake-up, collapsing duplicates."""
        if self._wake_scheduled:
            return
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._wake_scheduled = True
        self.sim.schedule(0.0, self._wake, priority=10)

    def _wake(self) -> None:
        """One wake-up: update the belief, then act until a sleep is chosen."""
        self._wake_scheduled = False
        self._timer = None
        now = self.sim.now

        acks = self._pending_acks
        self._pending_acks = []
        self.belief.update(now, acks)

        if self.stop_time is not None and now >= self.stop_time:
            return

        sends_this_wake = 0
        while True:
            decision = self._decider.decide(self.belief, now)
            self.decisions.append(
                DecisionRecord(
                    time=now,
                    delay=decision.delay,
                    sent_seq=self._next_seq if decision.send_now else None,
                    hypotheses=decision.hypotheses_evaluated,
                    expected_utilities=dict(decision.expected_utilities),
                )
            )
            if decision.send_now and sends_this_wake < self.max_sends_per_wake:
                self._transmit(now)
                sends_this_wake += 1
                continue
            self._sleep(decision, now)
            break

    def _transmit(self, now: float) -> None:
        seq = self._next_seq
        self._next_seq += 1
        packet = Packet(
            seq=seq,
            flow=self.flow,
            size_bits=self.packet_bits,
            created_at=now,
            sent_at=now,
        )
        self.sent.append(SentRecord(seq=seq, size_bits=self.packet_bits, sent_at=now))
        self.belief.record_send(seq, self.packet_bits, now)
        self.trace("send", seq=seq)
        self.emit(packet)

    def _sleep(self, decision: Decision, now: float) -> None:
        delay = decision.delay
        if delay <= 0.0:
            # The planner wanted to send but the per-wake budget is spent;
            # re-evaluate one believed service time later.  (The MAP
            # accessor avoids materializing a scalar Hypothesis when the
            # belief backend is vectorized.)
            delay = self.planner.packet_bits / self.belief.map_link_rate_bps()
        self._timer = self.sim.schedule(delay, self._wake)
        self.trace("sleep", delay=delay)

    # ------------------------------------------------------------------ stats

    @property
    def packets_sent(self) -> int:
        """Number of packets transmitted so far."""
        return len(self.sent)

    @property
    def packets_acked(self) -> int:
        """Number of acknowledgements received so far."""
        return len(self.acks)

    def delivery_rate(self) -> float:
        """Fraction of transmitted packets acknowledged so far."""
        if not self.sent:
            return 0.0
        return len({ack.seq for ack in self.acks}) / len(self.sent)

    def sequence_series(self) -> list[tuple[float, int]]:
        """``(ack time, cumulative acked packets)`` — Figure 3's y-axis."""
        ordered = sorted(self.acks, key=lambda ack: ack.ack_at)
        return [(ack.ack_at, index + 1) for index, ack in enumerate(ordered)]

    def reset(self) -> None:
        super().reset()
        self.sent = []
        self.acks = []
        self.decisions = []
        self._pending_acks = []
        self._next_seq = 0
        self._timer = None
        self._wake_scheduled = False
