"""Explicit instantaneous utility functions (§3.3).

The paper defines the instantaneous utility of a packet as its size in bits
discounted exponentially in how far in the future it is received, so that a
stream of packets accumulates utility nearly linearly in throughput.  The
sender's overall utility adds the cross traffic's utility weighted by a
coefficient α, and may optionally penalize the latency the sender inflicts
on cross traffic.

The literal formula in the paper ("divided by e^τ, τ in milliseconds") is
inconsistent with the paper's own linearity argument, so the discount
timescale here is an explicit parameter (see DESIGN.md, substitutions).  The
qualitative behaviour — throughput is rewarded nearly linearly, and packets
delivered sooner are worth slightly more — is preserved for any timescale
that is long compared with the packet service time.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol

import numpy as np

from repro.errors import UtilityError
from repro.inference.hypothesis import RolloutOutcome

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.inference.vectorized.rollout import BatchedRolloutOutcome


class UtilityFunction(Protocol):
    """Anything that can value the predicted outcome of an action.

    Implementations may additionally provide ``evaluate_batch(outcome)``
    taking a :class:`~repro.inference.vectorized.rollout.BatchedRolloutOutcome`
    and returning one value per lane; the vectorized planner uses it when
    present and falls back to per-lane ``evaluate`` calls otherwise.
    """

    def evaluate(self, outcome: RolloutOutcome) -> float:
        """Return the (expected) utility of the rollout outcome."""
        ...


class ExponentialDiscount:
    """Discount factor ``exp(-(t - t0) / timescale)`` for deliveries at time ``t``."""

    def __init__(self, timescale: float) -> None:
        if timescale <= 0:
            raise UtilityError(f"discount timescale must be positive, got {timescale!r}")
        self.timescale = timescale

    def factor(self, delivery_time: float, reference_time: float) -> float:
        """Discount applied to a delivery ``delivery_time - reference_time`` ahead."""
        lag = max(0.0, delivery_time - reference_time)
        return math.exp(-lag / self.timescale)


class AlphaWeightedUtility:
    """Own discounted throughput plus α times the cross traffic's (§4).

    Parameters
    ----------
    alpha:
        Relative value of cross-traffic bits (the α swept in Figure 3).
    discount_timescale:
        Timescale, in seconds, of the exponential delivery-delay discount.
    latency_penalty:
        Utility subtracted per cross-traffic bit-second of delay accumulated
        within the rollout horizon.  Zero reproduces the Figure-3 utility; a
        positive value reproduces the "drain the buffer first" behaviour of
        §4's second prose scenario.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        discount_timescale: float = 10.0,
        latency_penalty: float = 0.0,
    ) -> None:
        if alpha < 0:
            raise UtilityError(f"alpha must be non-negative, got {alpha!r}")
        if latency_penalty < 0:
            raise UtilityError(f"latency_penalty must be non-negative, got {latency_penalty!r}")
        self.alpha = alpha
        self.discount = ExponentialDiscount(discount_timescale)
        self.latency_penalty = latency_penalty

    def evaluate(self, outcome: RolloutOutcome) -> float:
        reference = outcome.decision_time
        own_value = sum(
            bits * survival * self.discount.factor(time, reference)
            for time, bits, survival in outcome.own_deliveries
        )
        cross_value = sum(
            bits * survival * self.discount.factor(time, reference)
            for time, bits, survival in outcome.cross_deliveries
        )
        value = own_value + self.alpha * cross_value
        if self.latency_penalty > 0.0:
            # Cross bits delivered within the horizon are charged their actual
            # lateness; cross bits still stuck in the queue at the end of the
            # horizon are charged the full horizon, so an action can never
            # look better merely by pushing cross traffic past the horizon.
            lateness = sum(
                bits * max(0.0, time - reference)
                for time, bits, _survival in outcome.cross_deliveries
            )
            lateness += outcome.final_cross_backlog_bits * outcome.horizon
            # A cross packet forced out of the buffer must not be cheaper than
            # one merely delayed, so drops are charged the full horizon too.
            lateness += sum(bits for _time, bits in outcome.cross_drops) * outcome.horizon
            value -= self.latency_penalty * self.alpha * lateness
        return value

    def evaluate_batch(self, outcome: "BatchedRolloutOutcome") -> np.ndarray:
        """One utility per (action × hypothesis) lane, as a flat array.

        Applies the same arithmetic as :meth:`evaluate` — identical term
        order per lane (``np.add.at`` accumulates strictly left to right, so
        each lane's partial sums build chronologically exactly like the
        scalar ``sum``) — with the single documented divergence that the
        discount uses ``np.exp`` instead of ``math.exp`` (≤1 ulp per term,
        hence the planner's ``1e-9`` relative equivalence tolerance).
        """
        lanes = outcome.lanes
        reference = outcome.decision_time
        timescale = self.discount.timescale

        own_value = np.zeros(lanes)
        if outcome.own_time.size:
            factor = np.exp(
                -np.maximum(0.0, outcome.own_time - reference) / timescale
            )
            terms = (outcome.packet_bits * outcome.own_survival[outcome.own_lane]) * factor
            np.add.at(own_value, outcome.own_lane, terms)
        cross_value = np.zeros(lanes)
        if outcome.cross_time.size:
            factor = np.exp(
                -np.maximum(0.0, outcome.cross_time - reference) / timescale
            )
            terms = (outcome.cross_bits * outcome.own_survival[outcome.cross_lane]) * factor
            np.add.at(cross_value, outcome.cross_lane, terms)
        value = own_value + self.alpha * cross_value

        if self.latency_penalty > 0.0:
            lateness = np.zeros(lanes)
            if outcome.cross_time.size:
                np.add.at(
                    lateness,
                    outcome.cross_lane,
                    outcome.cross_bits * np.maximum(0.0, outcome.cross_time - reference),
                )
            lateness += outcome.final_cross_backlog_bits * outcome.horizon
            if outcome.cross_drop_bits.size:
                dropped = np.zeros(lanes)
                np.add.at(dropped, outcome.cross_drop_lane, outcome.cross_drop_bits)
                lateness += dropped * outcome.horizon
            value = value - self.latency_penalty * self.alpha * lateness
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AlphaWeightedUtility(alpha={self.alpha}, "
            f"timescale={self.discount.timescale}, latency_penalty={self.latency_penalty})"
        )


class ThroughputUtility(AlphaWeightedUtility):
    """Own discounted throughput only (α = 0): the selfish sender."""

    def __init__(self, discount_timescale: float = 10.0) -> None:
        super().__init__(alpha=0.0, discount_timescale=discount_timescale)


class LatencyPenaltyUtility(AlphaWeightedUtility):
    """α-weighted utility with a latency penalty on cross traffic.

    This is the utility of §4's second prose scenario: with cross traffic
    present and induced latency penalized, the sender drains the shared
    buffer before ramping up to the link speed.
    """

    def __init__(
        self,
        alpha: float = 1.0,
        discount_timescale: float = 10.0,
        latency_penalty: float = 0.1,
    ) -> None:
        super().__init__(
            alpha=alpha,
            discount_timescale=discount_timescale,
            latency_penalty=latency_penalty,
        )
