"""Deprecation warnings that always point at the *user's* call site.

The deprecated configuration shims (``SenderSettings``, ``AblationConfig``)
are frozen/plain dataclasses, so their :class:`DeprecationWarning` is
emitted from ``__post_init__``.  A fixed ``stacklevel`` is correct for
direct construction (user → ``__init__`` → ``__post_init__``) but wrong for
every other entry path — most notably :func:`dataclasses.replace`, which
inserts a frame from ``dataclasses.py`` and made the warning blame the
standard library instead of the caller.

:func:`warn_deprecated` walks the stack instead of trusting a constant: it
skips frames belonging to this package's internal plumbing (the module that
raised, :mod:`dataclasses`, :mod:`copy`) and warns at the first genuine
caller frame.  With the warning attributed to a stable (file, line), the
interpreter's ``"default"`` filter action then deduplicates it — each
deprecated call site warns exactly once per process, however many times it
executes.
"""

from __future__ import annotations

import sys
import warnings

#: Module files whose frames are construction plumbing, never the call site.
_PLUMBING_MODULES = ("dataclasses", "copy", "copyreg")


def _plumbing_files() -> tuple[str, ...]:
    files = []
    for name in _PLUMBING_MODULES:
        module = sys.modules.get(name)
        filename = getattr(module, "__file__", None)
        if filename:
            files.append(filename)
    return tuple(files)


def warn_deprecated(message: str, *, internal_files: tuple[str, ...] = ()) -> None:
    """Emit ``DeprecationWarning`` attributed to the nearest external frame.

    ``internal_files`` are additional ``__file__`` values to treat as
    internal (typically the deprecated shim's own module), on top of the
    dataclass/copy machinery that sits between a shim's ``__post_init__``
    and whoever actually constructed it.
    """
    # "<string>" is the filename dataclasses gives its generated __init__.
    skip = {"<string>", *internal_files, *_plumbing_files()}
    # Frame 0 is this function; start from our caller and climb until the
    # code object lives outside every internal file.
    stacklevel = 2
    frame = sys._getframe(1)
    while frame.f_back is not None and frame.f_code.co_filename in skip:
        frame = frame.f_back
        stacklevel += 1
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
