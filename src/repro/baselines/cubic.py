"""A CUBIC-style congestion controller (Ha, Rhee & Xu, 2008), simplified.

The window grows as a cubic function of the time since the last loss event,
anchored at the window size where that loss occurred, which makes growth
aggressive far from the previous operating point and cautious near it.  The
TCP-friendliness and fast-convergence refinements of the full algorithm are
reduced to the ``beta`` multiplicative decrease and the cubic growth curve —
enough to reproduce CUBIC's qualitative behaviour in the benchmarks.
"""

from __future__ import annotations

from repro.baselines.window import WindowSender


class CubicSender(WindowSender):
    """Loss-based sender with cubic window growth."""

    def __init__(self, *args, scaling: float = 0.4, beta: float = 0.7, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.scaling = scaling
        self.beta = beta
        self.w_max = self.cwnd
        self.epoch_start: float | None = None

    def _cubic_window(self, elapsed: float) -> float:
        inflection = (self.w_max * (1.0 - self.beta) / self.scaling) ** (1.0 / 3.0)
        return self.scaling * (elapsed - inflection) ** 3 + self.w_max

    def on_ack_window(self, newly_acked: int) -> None:
        now = self.sim.now
        if self.cwnd < self.ssthresh:
            self.cwnd += float(newly_acked)
            return
        if self.epoch_start is None:
            self.epoch_start = now
        target = self._cubic_window(now - self.epoch_start)
        if target > self.cwnd:
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * newly_acked
        else:
            self.cwnd += 0.01 * newly_acked  # slow probing below the curve

    def on_fast_retransmit(self) -> None:
        self.w_max = self.cwnd
        self.epoch_start = None
        self.ssthresh = max(self.cwnd * self.beta, 2.0)
        self.cwnd = max(self.cwnd * self.beta, 1.0)

    def on_timeout(self) -> None:
        self.w_max = self.cwnd
        self.epoch_start = None
        super().on_timeout()
