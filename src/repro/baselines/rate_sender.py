"""Open-loop reference senders.

* :class:`FixedRateSender` transmits at a constant packet rate regardless of
  feedback — the simplest possible sender, useful as a lower/upper reference
  in comparisons.
* :class:`OracleSender` is told the bottleneck rate and sends at exactly
  that rate: the ideal a congestion controller aspires to on a known, fixed
  link.  The paper's §4 prose scenario ("once it has inferred those
  parameters, it simply sends at the link speed") converges to what the
  oracle does from the start.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.element import SourceElement
from repro.sim.packet import Packet
from repro.units import DEFAULT_PACKET_BITS


class FixedRateSender(SourceElement):
    """Sends fixed-size packets at a constant rate, open loop."""

    def __init__(
        self,
        rate_pps: float,
        flow: str = "fixed",
        packet_bits: float = DEFAULT_PACKET_BITS,
        name: str | None = None,
        start_time: float = 0.0,
        stop_time: Optional[float] = None,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"rate_pps must be positive, got {rate_pps!r}")
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits!r}")
        super().__init__(name)
        self.rate_pps = float(rate_pps)
        self.packet_bits = float(packet_bits)
        self.flow = flow
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self.next_seq = 0
        self.packets_sent = 0

    @property
    def rate_bps(self) -> float:
        """Offered load in bits per second."""
        return self.rate_pps * self.packet_bits

    def start(self) -> None:
        self.sim.schedule_at(max(self.start_time, self.sim.now), self._send)

    def _send(self) -> None:
        now = self.sim.now
        if self.stop_time is not None and now > self.stop_time:
            return
        packet = Packet(
            seq=self.next_seq,
            flow=self.flow,
            size_bits=self.packet_bits,
            created_at=now,
            sent_at=now,
        )
        self.next_seq += 1
        self.packets_sent += 1
        self.emit(packet)
        self.sim.schedule(1.0 / self.rate_pps, self._send)

    def reset(self) -> None:
        super().reset()
        self.next_seq = 0
        self.packets_sent = 0


class OracleSender(FixedRateSender):
    """A sender told the bottleneck's rate; it paces at exactly that rate."""

    def __init__(
        self,
        link_rate_bps: float,
        flow: str = "oracle",
        packet_bits: float = DEFAULT_PACKET_BITS,
        name: str | None = None,
        utilization: float = 1.0,
        **kwargs,
    ) -> None:
        if not 0.0 < utilization <= 1.0:
            raise ConfigurationError(f"utilization must lie in (0, 1], got {utilization!r}")
        rate_pps = utilization * link_rate_bps / packet_bits
        super().__init__(rate_pps, flow=flow, packet_bits=packet_bits, name=name, **kwargs)
        self.link_rate_bps = link_rate_bps
        self.utilization = utilization
