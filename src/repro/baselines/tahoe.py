"""TCP Tahoe: slow start, congestion avoidance, and loss → window of one.

Tahoe treats every loss signal (three duplicate ACKs or a timeout) the same
way: halve the slow-start threshold and restart from a window of one packet.
"""

from __future__ import annotations

from repro.baselines.window import WindowSender


class TahoeSender(WindowSender):
    """The Jacobson (1988) congestion controller."""

    def on_ack_window(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0  # slow start: one packet per ACK
            else:
                self.cwnd += 1.0 / self.cwnd  # congestion avoidance

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(self.flight_size() / 2.0, 2.0)
        self.cwnd = 1.0
        self.in_recovery = False  # Tahoe has no fast-recovery phase
