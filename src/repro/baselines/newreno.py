"""TCP NewReno: Reno with more patient fast recovery (RFC 6582 flavour).

During fast recovery a *partial* ACK (one that advances the cumulative ACK
but not past the recovery point) retransmits the next missing packet
immediately instead of waiting for three more duplicate ACKs or a timeout,
which markedly improves behaviour when several packets from one window are
lost — the common case on the lossy paths this library studies.
"""

from __future__ import annotations

from repro.baselines.reno import RenoSender


class NewRenoSender(RenoSender):
    """Reno with partial-ACK retransmission during fast recovery."""

    def _on_delivery(self, delivery) -> None:  # type: ignore[override]
        previously_in_recovery = self.in_recovery
        previous_cumulative = self.cumulative_ack
        super()._on_delivery(delivery)
        if not previously_in_recovery or not self.in_recovery:
            return
        if self.cumulative_ack > previous_cumulative and self.cumulative_ack < self.recovery_point:
            # Partial ACK: repair the next hole right away.
            missing = self.cumulative_ack + 1
            if missing not in self.received_seqs and missing not in self.outstanding:
                self._transmit(missing, retransmission=True)
                self.trace("partial_ack_retransmit", seq=missing, cwnd=self.cwnd)
