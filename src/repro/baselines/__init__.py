"""TCP-like window-based senders and simple rate-based senders.

The paper's argument is framed against TCP's implicit network model: all
loss is congestion, RTT jitter is light-tailed, and one ``cwnd`` variable
summarizes the path.  To reproduce the motivating observations (Figure 1's
bufferbloat, the poor throughput of loss-blind congestion control over a
20 %-loss path) the library ships faithful-enough reimplementations of the
classic window algorithms plus fixed-rate reference senders:

* :class:`~repro.baselines.window.WindowSender` — shared machinery
  (self-clocked sliding window, RTT estimation, RTO, duplicate-ACK
  detection).
* :class:`~repro.baselines.tahoe.TahoeSender`,
  :class:`~repro.baselines.reno.RenoSender`,
  :class:`~repro.baselines.newreno.NewRenoSender`,
  :class:`~repro.baselines.cubic.CubicSender`,
  :class:`~repro.baselines.aimd.AimdSender` — the classic loss-driven
  congestion controllers.
* :class:`~repro.baselines.rate_sender.FixedRateSender`,
  :class:`~repro.baselines.rate_sender.OracleSender` — open-loop references.
"""

from repro.baselines.aimd import AimdSender
from repro.baselines.cubic import CubicSender
from repro.baselines.newreno import NewRenoSender
from repro.baselines.rate_sender import FixedRateSender, OracleSender
from repro.baselines.reno import RenoSender
from repro.baselines.tahoe import TahoeSender
from repro.baselines.window import WindowSender

__all__ = [
    "AimdSender",
    "CubicSender",
    "FixedRateSender",
    "NewRenoSender",
    "OracleSender",
    "RenoSender",
    "TahoeSender",
    "WindowSender",
]
