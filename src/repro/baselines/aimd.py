"""Generic additive-increase / multiplicative-decrease window control.

A stripped-down controller without slow start, useful as the simplest
possible loss-driven baseline and for the binomial-control style parameter
sweeps in the benchmarks (increase by ``a`` packets per RTT, multiply by
``b`` on loss).
"""

from __future__ import annotations

from repro.baselines.window import WindowSender
from repro.errors import ConfigurationError


class AimdSender(WindowSender):
    """AIMD(a, b): increase ``a`` per round trip, decrease to ``b * cwnd`` on loss."""

    def __init__(self, *args, increase: float = 1.0, decrease: float = 0.5, **kwargs) -> None:
        if increase <= 0:
            raise ConfigurationError(f"increase must be positive, got {increase!r}")
        if not 0.0 < decrease < 1.0:
            raise ConfigurationError(f"decrease must lie in (0, 1), got {decrease!r}")
        super().__init__(*args, **kwargs)
        self.increase = increase
        self.decrease = decrease

    def on_ack_window(self, newly_acked: int) -> None:
        self.cwnd += self.increase * newly_acked / max(self.cwnd, 1.0)

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(self.cwnd * self.decrease, 1.0)
        self.cwnd = max(self.cwnd * self.decrease, 1.0)

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd * self.decrease, 1.0)
        self.cwnd = 1.0
