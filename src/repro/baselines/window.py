"""Shared machinery for window-based (TCP-like) senders.

:class:`WindowSender` implements everything the classic congestion
controllers have in common — a self-clocked sliding window, per-packet
acknowledgements folded into a cumulative ACK, Jacobson/Karels RTT
estimation and retransmission timeout, duplicate-ACK counting, and
retransmission — and leaves the window adjustment policy to subclasses via
four hooks:

* :meth:`on_ack_window` — a new (non-duplicate) cumulative ACK arrived.
* :meth:`on_fast_retransmit` — three duplicate ACKs arrived.
* :meth:`on_timeout` — the retransmission timer expired.
* :meth:`on_recovery_exit` — the loss episode that triggered fast
  retransmit has been repaired.

The window is measured in packets (the paper's senders use uniform-size
packets) and may take fractional values internally, as in most analytical
treatments of TCP.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.elements.receiver import Delivery, Receiver
from repro.errors import ConfigurationError
from repro.sim.element import SourceElement
from repro.sim.events import Event
from repro.sim.packet import Packet
from repro.units import DEFAULT_PACKET_BITS


@dataclass(slots=True)
class RttSample:
    """One round-trip-time measurement."""

    time: float
    rtt: float


class WindowSender(SourceElement):
    """Base class for self-clocked, window-based senders.

    Parameters
    ----------
    receiver:
        The Receiver whose delivery callbacks act as acknowledgements.
    flow:
        Flow name stamped on transmitted packets.
    packet_bits:
        Packet size (uniform).
    initial_cwnd:
        Initial congestion window, in packets.
    initial_ssthresh:
        Initial slow-start threshold, in packets.
    min_rto / max_rto:
        Bounds on the retransmission timeout, in seconds.
    total_packets:
        Optional cap on how many distinct packets to deliver (a "flow size");
        ``None`` models an unbounded bulk transfer.
    """

    def __init__(
        self,
        receiver: Receiver,
        flow: str = "tcp",
        packet_bits: float = DEFAULT_PACKET_BITS,
        name: str | None = None,
        initial_cwnd: float = 1.0,
        initial_ssthresh: float = 64.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        total_packets: Optional[int] = None,
        start_time: float = 0.0,
    ) -> None:
        if packet_bits <= 0:
            raise ConfigurationError(f"packet_bits must be positive, got {packet_bits!r}")
        if initial_cwnd < 1.0:
            raise ConfigurationError(f"initial_cwnd must be at least 1, got {initial_cwnd!r}")
        if min_rto <= 0 or max_rto < min_rto:
            raise ConfigurationError("require 0 < min_rto <= max_rto")
        super().__init__(name)
        self.receiver = receiver
        self.flow = flow
        self.packet_bits = float(packet_bits)
        self.start_time = float(start_time)
        self.total_packets = total_packets

        # Congestion state.
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(initial_ssthresh)
        self.in_recovery = False
        self.recovery_point = -1

        # Reliability state.
        self.next_seq = 0
        self.cumulative_ack = -1  # highest contiguously acknowledged sequence number
        self.received_seqs: set[int] = set()
        self.outstanding: dict[int, float] = {}  # seq -> last transmission time
        self.duplicate_acks = 0

        # RTT estimation (Jacobson/Karels).
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.rto = 1.0
        self._rto_timer: Optional[Event] = None

        # Statistics.
        self.rtt_samples: list[RttSample] = []
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.packets_sent = 0
        self.cwnd_trace: list[tuple[float, float]] = []

        receiver.on_deliver = self._on_delivery

    # --------------------------------------------------------------- subclass

    def on_ack_window(self, newly_acked: int) -> None:
        """Adjust ``cwnd`` after a new cumulative ACK covering ``newly_acked`` packets."""
        raise NotImplementedError

    def on_fast_retransmit(self) -> None:
        """Adjust ``cwnd``/``ssthresh`` when three duplicate ACKs arrive."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """Adjust ``cwnd``/``ssthresh`` when the retransmission timer fires."""
        self.ssthresh = max(self.flight_size() / 2.0, 2.0)
        self.cwnd = 1.0

    def on_recovery_exit(self) -> None:
        """Called when the sender leaves fast recovery (default: deflate to ssthresh)."""
        self.cwnd = max(self.ssthresh, 1.0)

    # ------------------------------------------------------------- life cycle

    def start(self) -> None:
        self.sim.schedule_at(max(self.start_time, self.sim.now), self._send_allowed)

    # ------------------------------------------------------------- data plane

    def flight_size(self) -> int:
        """Number of packets currently unacknowledged."""
        return len(self.outstanding)

    def _finished(self) -> bool:
        return self.total_packets is not None and self.cumulative_ack + 1 >= self.total_packets

    def _send_allowed(self) -> None:
        """Transmit as many new packets as the window currently allows."""
        if self._finished():
            return
        while self.flight_size() < int(self.cwnd):
            if self.total_packets is not None and self.next_seq >= self.total_packets:
                break
            self._transmit(self.next_seq)
            self.next_seq += 1
        self._arm_rto()

    def _transmit(self, seq: int, retransmission: bool = False) -> None:
        now = self.sim.now
        packet = Packet(
            seq=seq,
            flow=self.flow,
            size_bits=self.packet_bits,
            created_at=now,
            sent_at=now,
        )
        self.outstanding[seq] = now
        self.packets_sent += 1
        if retransmission:
            self.retransmissions += 1
        self.trace("send", seq=seq, retransmission=retransmission, cwnd=self.cwnd)
        self.emit(packet)

    # ------------------------------------------------------------ ack handling

    def _on_delivery(self, delivery: Delivery) -> None:
        now = self.sim.now
        seq = delivery.seq
        self.received_seqs.add(seq)

        # RTT sample (Karn's rule: only time packets transmitted exactly once
        # would be fully correct; timing the most recent transmission is the
        # usual simulator simplification).
        sent_at = self.outstanding.get(seq)
        if sent_at is not None:
            rtt = now - sent_at
            self.rtt_samples.append(RttSample(time=now, rtt=rtt))
            self._update_rto(rtt)
        self.outstanding.pop(seq, None)

        previous_cumulative = self.cumulative_ack
        while self.cumulative_ack + 1 in self.received_seqs:
            self.cumulative_ack += 1

        if self.cumulative_ack > previous_cumulative:
            newly_acked = self.cumulative_ack - previous_cumulative
            self.duplicate_acks = 0
            if self.in_recovery and self.cumulative_ack >= self.recovery_point:
                self.in_recovery = False
                self.on_recovery_exit()
            elif not self.in_recovery:
                self.on_ack_window(newly_acked)
        else:
            # The receiver got a packet but the cumulative ACK did not move:
            # this is what TCP would report as a duplicate ACK.
            self.duplicate_acks += 1
            if self.duplicate_acks == 3 and not self.in_recovery:
                self._enter_fast_retransmit()

        self.cwnd_trace.append((now, self.cwnd))
        self._send_allowed()

    def _enter_fast_retransmit(self) -> None:
        self.fast_retransmits += 1
        self.in_recovery = True
        self.recovery_point = self.next_seq - 1
        self.on_fast_retransmit()
        missing = self.cumulative_ack + 1
        if missing not in self.received_seqs:
            self._transmit(missing, retransmission=True)
        self.trace("fast_retransmit", seq=missing, cwnd=self.cwnd)

    # ---------------------------------------------------------------- timeout

    def _update_rto(self, rtt: float) -> None:
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = min(self.max_rto, max(self.min_rto, self.srtt + 4.0 * self.rttvar))

    def _arm_rto(self) -> None:
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None
        if not self.outstanding:
            return
        self._rto_timer = self.sim.schedule(self.rto, self._handle_timeout)

    def _handle_timeout(self) -> None:
        self._rto_timer = None
        if not self.outstanding:
            return
        self.timeouts += 1
        self.duplicate_acks = 0
        self.in_recovery = False
        self.on_timeout()
        self.rto = min(self.max_rto, self.rto * 2.0)  # exponential backoff
        oldest = min(self.outstanding)
        self._transmit(oldest, retransmission=True)
        self.trace("timeout", seq=oldest, cwnd=self.cwnd, rto=self.rto)
        self._arm_rto()

    # ------------------------------------------------------------------ stats

    def goodput_bps(self, start: float, end: float) -> float:
        """Acknowledged (in-order) bits per second over ``[start, end)``."""
        return self.receiver.throughput_bps(start, end, flow=self.flow)

    def mean_rtt(self) -> Optional[float]:
        """Mean of the collected RTT samples, or ``None`` if there are none."""
        if not self.rtt_samples:
            return None
        return sum(sample.rtt for sample in self.rtt_samples) / len(self.rtt_samples)

    def rtt_series(self) -> list[tuple[float, float]]:
        """``(time, rtt)`` samples — the series Figure 1 plots."""
        return [(sample.time, sample.rtt) for sample in self.rtt_samples]

    def reset(self) -> None:
        super().reset()
        self.cwnd = 1.0
        self.next_seq = 0
        self.cumulative_ack = -1
        self.received_seqs = set()
        self.outstanding = {}
        self.duplicate_acks = 0
        self.rtt_samples = []
        self.retransmissions = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.packets_sent = 0
        self.cwnd_trace = []
        self.in_recovery = False
        self._rto_timer = None
