"""TCP Reno: Tahoe plus fast recovery.

On three duplicate ACKs the window is halved (rather than collapsed to one)
and the sender stays in fast recovery until the loss is repaired.
"""

from __future__ import annotations

from repro.baselines.window import WindowSender


class RenoSender(WindowSender):
    """Slow start, congestion avoidance, fast retransmit, fast recovery."""

    def on_ack_window(self, newly_acked: int) -> None:
        for _ in range(newly_acked):
            if self.cwnd < self.ssthresh:
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd

    def on_fast_retransmit(self) -> None:
        self.ssthresh = max(self.flight_size() / 2.0, 2.0)
        self.cwnd = self.ssthresh + 3.0  # window inflation

    def on_recovery_exit(self) -> None:
        self.cwnd = max(self.ssthresh, 1.0)  # deflate back to the halved window
