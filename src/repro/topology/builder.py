"""Helpers for wiring element graphs.

These are conveniences on top of :meth:`repro.sim.element.Element.connect`;
they exist so experiment code reads like the topology it builds.
"""

from __future__ import annotations

from repro.errors import WiringError
from repro.sim.element import Element


def chain(*elements: Element) -> tuple[Element, Element]:
    """Connect ``elements`` in order and return ``(first, last)``.

    >>> first, last = chain(a, b, c)   # doctest: +SKIP
    is equivalent to ``a >> b >> c`` but also returns the endpoints, which is
    convenient when the chain is built from a list.
    """
    if not elements:
        raise WiringError("chain() needs at least one element")
    for upstream, downstream in zip(elements, elements[1:]):
        upstream.connect(downstream)
    return elements[0], elements[-1]


def terminate(element: Element, sink: Element) -> Element:
    """Connect the end of a path to a terminal sink and return the sink."""
    element.connect(sink)
    return sink
