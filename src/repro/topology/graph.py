"""Element-graph introspection: validation and networkx export.

The simulator itself never needs a global view of the topology — packets
simply follow downstream links — but experiments and tests benefit from
being able to check that a hand-built graph is sane (terminated, acyclic)
and to export it for inspection.
"""

from __future__ import annotations

from typing import Iterable

from repro.elements.collector import Collector
from repro.elements.receiver import Receiver
from repro.sim.element import Element, Network


def _reachable(roots: Iterable[Element]) -> list[Element]:
    seen: dict[int, Element] = {}
    stack = list(roots)
    while stack:
        element = stack.pop()
        if id(element) in seen:
            continue
        seen[id(element)] = element
        if element.downstream is not None:
            stack.append(element.downstream)
        stack.extend(element.children())
    return list(seen.values())


def element_graph(roots: Iterable[Element]):
    """Return a :class:`networkx.DiGraph` of the element graph.

    Nodes are element names; edges carry a ``kind`` attribute of either
    ``"downstream"`` or ``"child"``.
    """
    import networkx as nx

    graph = nx.DiGraph()
    elements = _reachable(roots)
    for element in elements:
        graph.add_node(element.name, kind=type(element).__name__)
    for element in elements:
        if element.downstream is not None:
            graph.add_edge(element.name, element.downstream.name, kind="downstream")
        for child in element.children():
            graph.add_edge(element.name, child.name, kind="child")
    return graph


def validate_network(network: Network, require_terminated: bool = True) -> list[str]:
    """Check an attached network for common wiring mistakes.

    Returns a list of human-readable problem descriptions (empty when the
    network looks sane).  Problems detected:

    * downstream cycles (a packet could loop forever),
    * paths that end at an element with no downstream which is neither a
      :class:`Receiver` nor a :class:`Collector` (packets silently vanish),
      unless ``require_terminated`` is ``False``.
    """
    problems: list[str] = []
    elements = network.elements

    # Cycle detection over downstream links only (children are containment).
    colors: dict[int, int] = {}

    def visit(element: Element, trail: list[str]) -> None:
        state = colors.get(id(element), 0)
        if state == 1:
            problems.append("downstream cycle involving: " + " -> ".join(trail + [element.name]))
            return
        if state == 2:
            return
        colors[id(element)] = 1
        if element.downstream is not None:
            visit(element.downstream, trail + [element.name])
        colors[id(element)] = 2

    for element in elements:
        visit(element, [])

    if require_terminated:
        for element in elements:
            if element.downstream is None and not isinstance(element, (Receiver, Collector)):
                if element.children() or type(element).__name__.startswith("_"):
                    continue
                problems.append(
                    f"element {element.name!r} ({type(element).__name__}) has no downstream "
                    "and is not a Receiver/Collector"
                )
    return problems
