"""Topology construction helpers and preset networks.

* :mod:`repro.topology.builder` — small helpers for wiring chains of elements.
* :mod:`repro.topology.graph` — validation and networkx export of element graphs.
* :mod:`repro.topology.presets` — the Figure-2 network and other ready-made
  topologies used by the experiments.
"""

from repro.topology.builder import chain, terminate
from repro.topology.graph import element_graph, validate_network
from repro.topology.presets import (
    Figure2Network,
    SingleLinkNetwork,
    figure2_network,
    single_link_network,
)

__all__ = [
    "Figure2Network",
    "SingleLinkNetwork",
    "chain",
    "element_graph",
    "figure2_network",
    "single_link_network",
    "terminate",
    "validate_network",
]
