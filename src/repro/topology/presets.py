"""Ready-made topologies used by the paper's experiments.

* :func:`figure2_network` — the network of Figure 2: an isochronous PINGER
  gated by an on/off element, sharing a tail-drop BUFFER with the sender,
  drained by a THROUGHPUT link, followed by last-mile LOSS and a DIVERTER
  that delivers each flow to its own receiver.
* :func:`single_link_network` — the "simple configuration" of §4: a single
  sender feeding a buffer drained by a throughput-limited link, with
  optional cross traffic and optional loss.

Both constructors return a small dataclass exposing every interesting
element so experiments, tests, and benches can reach inside without
re-walking the graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.elements import (
    Buffer,
    Collector,
    Diverter,
    GateElement,
    Intermittent,
    Loss,
    Pinger,
    Receiver,
    SquareWave,
    Throughput,
)
from repro.errors import ConfigurationError
from repro.sim.element import Element, Network
from repro.units import DEFAULT_PACKET_BITS

#: Flow name used by the model-based sender throughout the library.
SENDER_FLOW = "isender"

#: Flow name used by cross traffic throughout the library.
CROSS_FLOW = "cross"


@dataclass
class Figure2Network:
    """Handles to the elements of the Figure-2 topology."""

    network: Network
    entry: Element
    buffer: Buffer
    link: Throughput
    loss: Loss
    pinger: Pinger
    gate: GateElement | None
    sender_receiver: Receiver
    cross_receiver: Collector
    sender_flow: str
    cross_flow: str


@dataclass
class SingleLinkNetwork:
    """Handles to the elements of the single bottleneck-link topology."""

    network: Network
    entry: Element
    buffer: Buffer
    link: Throughput
    loss: Loss | None
    pinger: Pinger | None
    sender_receiver: Receiver
    cross_receiver: Collector | None
    sender_flow: str


def figure2_network(
    link_rate_bps: float = 12_000.0,
    cross_fraction: float = 0.7,
    loss_rate: float = 0.2,
    buffer_capacity_bits: float = 96_000.0,
    buffer_initial_fill_bits: float = 0.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    cross_gate: str = "squarewave",
    switch_interval: float = 100.0,
    mean_time_to_switch: float = 100.0,
    sender_flow: str = SENDER_FLOW,
    cross_flow: str = CROSS_FLOW,
    seed: int = 0,
) -> Figure2Network:
    """Build the network of the paper's Figure 2.

    Parameters mirror the experiment of §4: a 12 kbit/s link carrying one
    1,500-byte packet per second, cross traffic at 70 % of the link rate
    switched on and off every 100 seconds, 20 % last-mile stochastic loss,
    and a 96,000-bit tail-drop buffer.

    Parameters
    ----------
    cross_gate:
        ``"squarewave"`` (the ground truth used in the paper: deterministic
        switching every ``switch_interval`` seconds), ``"intermittent"``
        (memoryless switching with ``mean_time_to_switch``), or ``"none"``
        (cross traffic always on).
    """
    if not 0.0 <= cross_fraction < 1.0 + 1e-9:
        raise ConfigurationError(f"cross_fraction must lie in [0, 1], got {cross_fraction!r}")

    network = Network(seed=seed)

    cross_rate_pps = cross_fraction * link_rate_bps / packet_bits
    pinger = Pinger(
        rate_pps=max(cross_rate_pps, 1e-9),
        packet_bits=packet_bits,
        flow=cross_flow,
        name="pinger",
    )

    gate: GateElement | None
    if cross_gate == "squarewave":
        gate = SquareWave(switch_interval=switch_interval, name="cross-gate")
    elif cross_gate == "intermittent":
        gate = Intermittent(mean_time_to_switch=mean_time_to_switch, name="cross-gate")
    elif cross_gate == "none":
        gate = None
    else:
        raise ConfigurationError(f"unknown cross_gate {cross_gate!r}")

    buffer = Buffer(
        capacity_bits=buffer_capacity_bits,
        initial_fill_bits=buffer_initial_fill_bits,
        name="buffer",
    )
    link = Throughput(rate_bps=link_rate_bps, name="link")
    loss = Loss(rate=loss_rate, name="loss")
    sender_receiver = Receiver(name="sender-receiver", accept_flows={sender_flow})
    cross_receiver = Collector(name="cross-receiver")

    diverter = Diverter(
        predicate=sender_flow,
        match_branch=sender_receiver,
        other_branch=cross_receiver,
        name="diverter",
    )

    if gate is not None:
        pinger.connect(gate)
        gate.connect(buffer)
    else:
        pinger.connect(buffer)
    buffer.connect(link)
    link.connect(loss)
    loss.connect(diverter)

    if cross_fraction > 0:
        network.add(pinger)
    network.add(buffer)

    return Figure2Network(
        network=network,
        entry=buffer,
        buffer=buffer,
        link=link,
        loss=loss,
        pinger=pinger,
        gate=gate,
        sender_receiver=sender_receiver,
        cross_receiver=cross_receiver,
        sender_flow=sender_flow,
        cross_flow=cross_flow,
    )


def single_link_network(
    link_rate_bps: float = 12_000.0,
    buffer_capacity_bits: float = 96_000.0,
    buffer_initial_fill_bits: float = 0.0,
    loss_rate: float = 0.0,
    cross_rate_pps: float = 0.0,
    packet_bits: float = DEFAULT_PACKET_BITS,
    sender_flow: str = SENDER_FLOW,
    cross_flow: str = CROSS_FLOW,
    seed: int = 0,
) -> SingleLinkNetwork:
    """Build the "simple configuration" of §4.

    A single sender connected to a tail-drop buffer drained by a
    throughput-limited link, with optional always-on cross traffic and
    optional last-mile loss.
    """
    network = Network(seed=seed)

    buffer = Buffer(
        capacity_bits=buffer_capacity_bits,
        initial_fill_bits=buffer_initial_fill_bits,
        name="buffer",
    )
    link = Throughput(rate_bps=link_rate_bps, name="link")
    sender_receiver = Receiver(name="sender-receiver", accept_flows={sender_flow})

    loss: Loss | None = None
    pinger: Pinger | None = None
    cross_receiver: Collector | None = None

    buffer.connect(link)
    tail: Element = link
    if loss_rate > 0.0:
        loss = Loss(rate=loss_rate, name="loss")
        tail.connect(loss)
        tail = loss

    if cross_rate_pps > 0.0:
        cross_receiver = Collector(name="cross-receiver")
        diverter = Diverter(
            predicate=sender_flow,
            match_branch=sender_receiver,
            other_branch=cross_receiver,
            name="diverter",
        )
        tail.connect(diverter)
        pinger = Pinger(
            rate_pps=cross_rate_pps,
            packet_bits=packet_bits,
            flow=cross_flow,
            name="pinger",
        )
        pinger.connect(buffer)
        network.add(pinger)
    else:
        tail.connect(sender_receiver)

    network.add(buffer)

    return SingleLinkNetwork(
        network=network,
        entry=buffer,
        buffer=buffer,
        link=link,
        loss=loss,
        pinger=pinger,
        sender_receiver=sender_receiver,
        cross_receiver=cross_receiver,
        sender_flow=sender_flow,
    )
