"""The paper's language of idealized network elements (§3.1).

Every element is a subclass of :class:`repro.sim.element.Element` and can be
freely combined with the others: chained with ``>>`` / SERIES, routed with
DIVERTER, alternated with EITHER, gated with INTERMITTENT or SQUAREWAVE.
"""

from repro.elements.buffer import Buffer
from repro.elements.collector import Collector, FlowTally
from repro.elements.delay import Delay
from repro.elements.diverter import Diverter, FlowDemux
from repro.elements.either import Either
from repro.elements.gate import GateElement
from repro.elements.intermittent import Intermittent
from repro.elements.jitter import Jitter
from repro.elements.loss import Loss
from repro.elements.pinger import Pinger
from repro.elements.receiver import Delivery, Receiver
from repro.elements.series import Series
from repro.elements.squarewave import SquareWave
from repro.elements.throughput import Throughput

__all__ = [
    "Buffer",
    "Collector",
    "Delay",
    "Delivery",
    "Diverter",
    "Either",
    "FlowDemux",
    "FlowTally",
    "GateElement",
    "Intermittent",
    "Jitter",
    "Loss",
    "Pinger",
    "Receiver",
    "Series",
    "SquareWave",
    "Throughput",
]
