"""DELAY — a fixed propagation delay.

Every packet is emitted exactly ``delay`` seconds after it is received.
Because the delay is constant the element never reorders packets.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class Delay(Element):
    """Delays every packet by a fixed number of seconds."""

    def __init__(self, delay: float, name: str | None = None) -> None:
        if delay < 0:
            raise ConfigurationError(f"delay must be non-negative, got {delay!r}")
        super().__init__(name)
        self.delay = float(delay)
        self.in_transit = 0

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        self.in_transit += 1
        if self.delay == 0:
            self._deliver(packet)
        else:
            self.sim.schedule(self.delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.in_transit -= 1
        self.emit(packet)

    def reset(self) -> None:
        super().reset()
        self.in_transit = 0
