"""LOSS — independent stochastic packet loss at a fixed rate.

The paper (§3.1): "Stochastic loss, independently distributed for each
packet at a particular rate."  In the §4 experiment the loss element sits at
the "last mile", after the buffer and throughput-limited link, which is the
placement that keeps its consequences from lingering in the sender's belief
state (§3.2).

Besides the ordinary random mode the element supports a ``survival_tagging``
mode in which no packet is ever dropped; instead each packet's survival
probability is multiplied into ``packet.meta["survival_prob"]``.  Hypothesis
networks inside the inference engine use this mode so that stochastic loss
becomes a likelihood term rather than a branching event.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class Loss(Element):
    """Drops each packet independently with probability ``rate``.

    Parameters
    ----------
    rate:
        Per-packet loss probability in ``[0, 1]``.
    survival_tagging:
        If ``True``, never drop; annotate survival probability instead.
    """

    def __init__(
        self,
        rate: float,
        name: str | None = None,
        survival_tagging: bool = False,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError(f"loss rate must be within [0, 1], got {rate!r}")
        super().__init__(name)
        self.rate = float(rate)
        self.survival_tagging = survival_tagging
        self.drop_count = 0
        self.pass_count = 0

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self.survival_tagging:
            previous = packet.meta.get("survival_prob", 1.0)
            packet.meta["survival_prob"] = previous * (1.0 - self.rate)
            self.pass_count += 1
            self.emit(packet)
            return
        if self.rate > 0.0 and self.rng("loss").random() < self.rate:
            self.drop_count += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("loss", seq=packet.seq, flow=packet.flow)
            return
        self.pass_count += 1
        self.emit(packet)

    @property
    def observed_loss_rate(self) -> float:
        """Empirical loss fraction seen so far (0 if nothing received)."""
        total = self.drop_count + self.pass_count
        if total == 0:
            return 0.0
        return self.drop_count / total

    def reset(self) -> None:
        super().reset()
        self.drop_count = 0
        self.pass_count = 0
