"""Connectivity gates: the shared machinery behind INTERMITTENT and SQUAREWAVE.

Both elements "connect input and output" only some of the time.  While
connected they forward packets unchanged; while disconnected they drop
them (the subnetwork is simply not there).  The two concrete subclasses
differ only in *when* they toggle: INTERMITTENT switches according to a
memoryless process, SQUAREWAVE on a fixed schedule.
"""

from __future__ import annotations

from repro.sim.element import Element
from repro.sim.packet import Packet


class GateElement(Element):
    """Base class for elements that alternate between connected and disconnected."""

    def __init__(self, name: str | None = None, initially_connected: bool = True) -> None:
        super().__init__(name)
        self._initially_connected = initially_connected
        self._connected = initially_connected
        self.passed_count = 0
        self.blocked_count = 0
        self.switch_times: list[float] = []

    @property
    def connected(self) -> bool:
        """Whether the gate currently forwards packets."""
        return self._connected

    def force_state(self, connected: bool) -> None:
        """Set the gate state directly (used by tests and scripted scenarios)."""
        self._connected = connected

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self._connected:
            self.passed_count += 1
            self.emit(packet)
        else:
            self.blocked_count += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("blocked", seq=packet.seq, flow=packet.flow)

    def _toggle(self) -> None:
        """Flip the gate state and record the switch time."""
        self._connected = not self._connected
        self.switch_times.append(self.sim.now)
        self.trace("switch", connected=self._connected)

    def reset(self) -> None:
        super().reset()
        self._connected = self._initially_connected
        self.passed_count = 0
        self.blocked_count = 0
        self.switch_times = []
