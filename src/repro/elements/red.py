"""RED — a random-early-detection queue (active queue management).

The paper lists "active queue management" among the in-network behaviours
its element language will need to express (§3.5).  This element provides
the classic Floyd/Jacobson RED discipline as a drop-in alternative to the
tail-drop :class:`~repro.elements.buffer.Buffer`: it tracks an exponentially
weighted moving average of the queue occupancy and drops arriving packets
probabilistically once that average exceeds a minimum threshold, with the
drop probability rising linearly up to a maximum threshold (beyond which
every arrival is dropped).

The element exposes the same pull interface as the tail-drop buffer, so it
composes with :class:`~repro.elements.throughput.Throughput` in exactly the
same way and can be swapped into any preset topology.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class RedBuffer(Element):
    """A random-early-detection queue measured in bits.

    Parameters
    ----------
    capacity_bits:
        Hard limit on queued bits (arrivals beyond it are always dropped).
    min_threshold_bits / max_threshold_bits:
        Average-occupancy thresholds between which the early-drop
        probability rises linearly from 0 to ``max_drop_probability``.
    max_drop_probability:
        Early-drop probability at the maximum threshold.
    weight:
        EWMA weight applied to instantaneous occupancy samples.
    """

    def __init__(
        self,
        capacity_bits: float,
        min_threshold_bits: float,
        max_threshold_bits: float,
        max_drop_probability: float = 0.1,
        weight: float = 0.002,
        name: str | None = None,
    ) -> None:
        if capacity_bits <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity_bits!r}")
        if not 0 < min_threshold_bits < max_threshold_bits <= capacity_bits:
            raise ConfigurationError(
                "thresholds must satisfy 0 < min < max <= capacity, got "
                f"min={min_threshold_bits!r}, max={max_threshold_bits!r}, capacity={capacity_bits!r}"
            )
        if not 0.0 < max_drop_probability <= 1.0:
            raise ConfigurationError(
                f"max_drop_probability must lie in (0, 1], got {max_drop_probability!r}"
            )
        if not 0.0 < weight <= 1.0:
            raise ConfigurationError(f"weight must lie in (0, 1], got {weight!r}")
        super().__init__(name)
        self.capacity_bits = float(capacity_bits)
        self.min_threshold_bits = float(min_threshold_bits)
        self.max_threshold_bits = float(max_threshold_bits)
        self.max_drop_probability = float(max_drop_probability)
        self.weight = float(weight)
        self._queue: deque[Packet] = deque()
        self._occupancy_bits = 0.0
        self._average_bits = 0.0
        self._pull_mode = False
        self.early_drops = 0
        self.forced_drops = 0

    # ----------------------------------------------------------------- wiring

    def connect(self, downstream: Element) -> Element:
        result = super().connect(downstream)
        register = getattr(downstream, "register_upstream_queue", None)
        if callable(register):
            register(self)
            self._pull_mode = True
        else:
            self._pull_mode = False
        return result

    # ----------------------------------------------------------------- state

    @property
    def occupancy_bits(self) -> float:
        """Bits currently queued."""
        return self._occupancy_bits

    @property
    def average_occupancy_bits(self) -> float:
        """The EWMA of the queue occupancy RED drops against."""
        return self._average_bits

    @property
    def drop_count(self) -> int:
        """Early drops plus forced (overflow) drops."""
        return self.early_drops + self.forced_drops

    def drop_probability(self) -> float:
        """Current early-drop probability given the average occupancy."""
        if self._average_bits <= self.min_threshold_bits:
            return 0.0
        if self._average_bits >= self.max_threshold_bits:
            return 1.0
        span = self.max_threshold_bits - self.min_threshold_bits
        return self.max_drop_probability * (self._average_bits - self.min_threshold_bits) / span

    # -------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if not self._pull_mode:
            self.emit(packet)
            return
        self._average_bits = (
            (1.0 - self.weight) * self._average_bits + self.weight * self._occupancy_bits
        )
        if self._occupancy_bits + packet.size_bits > self.capacity_bits + 1e-9:
            self.forced_drops += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("forced_drop", seq=packet.seq, flow=packet.flow)
            return
        probability = self.drop_probability()
        if probability > 0.0 and self.rng("red").random() < probability:
            self.early_drops += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("early_drop", seq=packet.seq, flow=packet.flow, probability=probability)
            return
        self._queue.append(packet)
        self._occupancy_bits += packet.size_bits
        self.trace("enqueue", seq=packet.seq, flow=packet.flow, occupancy=self._occupancy_bits)
        kick = getattr(self.downstream, "kick", None)
        if callable(kick):
            kick()

    def pull(self) -> Optional[Packet]:
        """Hand the head-of-line packet to the draining link (or ``None``)."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._occupancy_bits -= packet.size_bits
        if self._occupancy_bits < 1e-9:
            self._occupancy_bits = 0.0
        return packet

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._occupancy_bits = 0.0
        self._average_bits = 0.0
        self.early_drops = 0
        self.forced_drops = 0
