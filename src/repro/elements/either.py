"""EITHER — send traffic to one of two elements, switching at random times.

The paper (§3.1): "Sends traffic either to one element or another, switching
with a specified mean-time-to-switch."  Switching follows a memoryless
process, exactly like :class:`~repro.elements.intermittent.Intermittent`,
except that instead of connecting/disconnecting it alternates between two
downstream paths (for example a fast path and a slow path).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class Either(Element):
    """Alternates between two downstream branches with exponential dwell times."""

    def __init__(
        self,
        first: Element,
        second: Element,
        mean_time_to_switch: float,
        name: str | None = None,
    ) -> None:
        if mean_time_to_switch <= 0:
            raise ConfigurationError(
                f"mean_time_to_switch must be positive, got {mean_time_to_switch!r}"
            )
        super().__init__(name)
        self.first = first
        self.second = second
        self.mean_time_to_switch = float(mean_time_to_switch)
        self._using_first = True
        self.switch_times: list[float] = []
        self.first_count = 0
        self.second_count = 0

    def children(self) -> Iterable[Element]:
        yield self.first
        yield self.second

    @property
    def active_branch(self) -> Element:
        """The branch currently receiving traffic."""
        return self.first if self._using_first else self.second

    def force_branch(self, use_first: bool) -> None:
        """Select the active branch directly (tests and scripted scenarios)."""
        self._using_first = use_first

    def start(self) -> None:
        self.first.start()
        self.second.start()
        self._schedule_switch()

    def _schedule_switch(self) -> None:
        dwell = self.rng("switch").expovariate(1.0 / self.mean_time_to_switch)
        self.sim.schedule(dwell, self._switch)

    def _switch(self) -> None:
        self._using_first = not self._using_first
        self.switch_times.append(self.sim.now)
        self.trace("switch", using_first=self._using_first)
        self._schedule_switch()

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self._using_first:
            self.first_count += 1
        else:
            self.second_count += 1
        self.active_branch.receive(packet)

    def reset(self) -> None:
        super().reset()
        self._using_first = True
        self.switch_times = []
        self.first_count = 0
        self.second_count = 0
