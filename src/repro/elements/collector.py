"""Collector — a measurement sink for arbitrary traffic.

Unlike :class:`~repro.elements.receiver.Receiver`, the collector never
acknowledges anything; it simply terminates a path and keeps per-flow
statistics.  Experiments use it for cross traffic and background filler
packets, and tests use it to observe what comes out the end of a chain of
elements.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.element import Element
from repro.sim.packet import Packet


@dataclass(slots=True)
class FlowTally:
    """Aggregate statistics for one flow observed at the collector."""

    packets: int = 0
    bits: float = 0.0
    total_delay: float = 0.0
    last_arrival: float | None = None
    arrivals: list[float] = field(default_factory=list)

    @property
    def mean_delay(self) -> float | None:
        """Mean one-way delay, or ``None`` if nothing arrived."""
        if self.packets == 0:
            return None
        return self.total_delay / self.packets


class Collector(Element):
    """Terminal element that tallies everything it receives, per flow."""

    def __init__(self, name: str | None = None) -> None:
        super().__init__(name)
        self.flows: dict[str, FlowTally] = {}
        self.packets: list[Packet] = []

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        now = self.sim.now
        packet.delivered_at = now
        tally = self.flows.setdefault(packet.flow, FlowTally())
        tally.packets += 1
        tally.bits += packet.size_bits
        sent_at = packet.sent_at if packet.sent_at is not None else packet.created_at
        tally.total_delay += now - sent_at
        tally.last_arrival = now
        tally.arrivals.append(now)
        self.packets.append(packet)
        self.trace("collect", seq=packet.seq, flow=packet.flow)

    def count(self, flow: str | None = None) -> int:
        """Number of packets received (optionally for a single flow)."""
        if flow is None:
            return len(self.packets)
        tally = self.flows.get(flow)
        return tally.packets if tally is not None else 0

    def bits(self, flow: str | None = None) -> float:
        """Bits received (optionally for a single flow)."""
        if flow is None:
            return sum(tally.bits for tally in self.flows.values())
        tally = self.flows.get(flow)
        return tally.bits if tally is not None else 0.0

    def throughput_bps(self, start: float, end: float, flow: str | None = None) -> float:
        """Average received rate over ``[start, end)`` in bits per second."""
        if end <= start:
            return 0.0
        total = 0.0
        for packet in self.packets:
            if packet.delivered_at is None:
                continue
            if flow is not None and packet.flow != flow:
                continue
            if start <= packet.delivered_at < end:
                total += packet.size_bits
        return total / (end - start)

    def reset(self) -> None:
        super().reset()
        self.flows = {}
        self.packets = []
