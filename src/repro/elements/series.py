"""SERIES — the sequential-composition combinator.

The paper (§3.1): "Connects two network elements and sends the output of one
to the input of the other."  Our implementation generalizes to any number of
stages.  The combinator behaves like a single element: packets received by
the series enter the first stage, and whatever leaves the last stage is
emitted downstream of the series itself.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import WiringError
from repro.sim.element import Element
from repro.sim.packet import Packet


class _Outlet(Element):
    """Internal adapter that forwards the last stage's output out of the series."""

    def __init__(self, owner: "Series") -> None:
        super().__init__(f"{owner.name}-outlet")
        self._owner = owner

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        self._owner.emit(packet)


class Series(Element):
    """Composes two or more elements in sequence."""

    def __init__(self, *stages: Element, name: str | None = None) -> None:
        super().__init__(name)
        if len(stages) < 1:
            raise WiringError("a Series needs at least one stage")
        self.stages: tuple[Element, ...] = tuple(stages)
        self._outlet = _Outlet(self)
        for upstream, downstream in zip(self.stages, self.stages[1:]):
            upstream.connect(downstream)
        self.stages[-1].connect(self._outlet)

    def children(self) -> Iterable[Element]:
        yield from self.stages
        yield self._outlet

    def start(self) -> None:
        for stage in self.stages:
            stage.start()

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        self.stages[0].receive(packet)

    def reset(self) -> None:
        super().reset()
        for stage in self.stages:
            stage.reset()
        self._outlet.reset()
