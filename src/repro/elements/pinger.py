"""PINGER — an isochronous source of cross traffic.

The paper (§3.1): "An isochronous sender of cross traffic at a particular
rate."  The pinger transmits fixed-size packets at exact intervals of
``1 / rate_pps`` seconds.  A non-isochronous source can be modelled, as the
paper suggests, by following a PINGER with one or more JITTER elements.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.element import SourceElement
from repro.sim.packet import Packet
from repro.units import DEFAULT_PACKET_BITS


class Pinger(SourceElement):
    """Sends a packet every ``1 / rate_pps`` seconds.

    Parameters
    ----------
    rate_pps:
        Sending rate in packets per second.
    packet_bits:
        Size of every generated packet.
    flow:
        Flow name stamped on generated packets (defaults to ``"cross"``).
    start_time:
        Absolute time of the first transmission.
    stop_time:
        Optional time after which no further packets are generated.
    """

    def __init__(
        self,
        rate_pps: float,
        packet_bits: float = DEFAULT_PACKET_BITS,
        flow: str = "cross",
        name: str | None = None,
        start_time: float = 0.0,
        stop_time: float | None = None,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"pinger rate must be positive, got {rate_pps!r}")
        if packet_bits <= 0:
            raise ConfigurationError(f"packet size must be positive, got {packet_bits!r}")
        super().__init__(name)
        self.rate_pps = float(rate_pps)
        self.packet_bits = float(packet_bits)
        self.flow = flow
        self.start_time = float(start_time)
        self.stop_time = stop_time
        self._next_seq = 0
        self.sent_packets: list[Packet] = []

    @property
    def interval(self) -> float:
        """Seconds between consecutive transmissions."""
        return 1.0 / self.rate_pps

    @property
    def rate_bps(self) -> float:
        """Offered load in bits per second."""
        return self.rate_pps * self.packet_bits

    def start(self) -> None:
        first = max(self.start_time, self.sim.now)
        self.sim.schedule_at(first, self._send)

    def _send(self) -> None:
        now = self.sim.now
        if self.stop_time is not None and now > self.stop_time:
            return
        packet = Packet(
            seq=self._next_seq,
            flow=self.flow,
            size_bits=self.packet_bits,
            created_at=now,
            sent_at=now,
        )
        self._next_seq += 1
        self.sent_packets.append(packet)
        self.trace("send", seq=packet.seq, flow=packet.flow)
        self.emit(packet)
        self.sim.schedule(self.interval, self._send)

    def reset(self) -> None:
        super().reset()
        self._next_seq = 0
        self.sent_packets = []
