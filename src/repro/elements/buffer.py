"""BUFFER — a tail-drop FIFO queue with bounded capacity in bits.

The paper (§3.1): "A tail-drop queue, whose unknown parameters are the size
of the queue and its current fullness."

The buffer is usually placed immediately in front of a
:class:`~repro.elements.throughput.Throughput` link.  When it is, the link
registers itself as the buffer's drain: the buffer enqueues arriving packets
(dropping the newcomer if it would exceed capacity) and the link pulls the
head of the queue whenever it goes idle.  Connected to anything else, the
buffer degenerates to a pass-through element, which keeps unit tests of
other elements simple.

The paper's "initial fullness" parameter is modelled by pre-loading the
queue with filler packets of a background flow at start-up, so the first
packets of the measured flows experience exactly the queueing delay a
partially full buffer would impose.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet
from repro.units import DEFAULT_PACKET_BITS


class Buffer(Element):
    """A bounded tail-drop FIFO queue.

    Parameters
    ----------
    capacity_bits:
        Maximum number of bits the queue may hold.
    initial_fill_bits:
        Bits of background traffic pre-loaded into the queue at start-up
        (must not exceed the capacity).
    filler_packet_bits:
        Size of the synthetic packets used to represent the initial fill.
    filler_flow:
        Flow name given to the synthetic filler packets.
    """

    def __init__(
        self,
        capacity_bits: float,
        initial_fill_bits: float = 0.0,
        name: str | None = None,
        filler_packet_bits: float = DEFAULT_PACKET_BITS,
        filler_flow: str = "background",
    ) -> None:
        if capacity_bits <= 0:
            raise ConfigurationError(f"buffer capacity must be positive, got {capacity_bits!r}")
        if initial_fill_bits < 0 or initial_fill_bits > capacity_bits:
            raise ConfigurationError(
                f"initial fill ({initial_fill_bits!r}) must lie in [0, capacity]"
            )
        super().__init__(name)
        self.capacity_bits = float(capacity_bits)
        self.initial_fill_bits = float(initial_fill_bits)
        self.filler_packet_bits = float(filler_packet_bits)
        self.filler_flow = filler_flow
        self._queue: deque[Packet] = deque()
        self._occupancy_bits = 0.0
        self._pull_mode = False
        self.drop_count = 0
        self.dropped_packets: list[Packet] = []
        self.peak_occupancy_bits = 0.0

    # ----------------------------------------------------------------- wiring

    def connect(self, downstream: Element) -> Element:
        result = super().connect(downstream)
        register = getattr(downstream, "register_upstream_queue", None)
        if callable(register):
            register(self)
            self._pull_mode = True
        else:
            self._pull_mode = False
        return result

    # ------------------------------------------------------------- life cycle

    def start(self) -> None:
        if self.initial_fill_bits <= 0 or not self._pull_mode:
            return
        remaining = self.initial_fill_bits
        seq = 0
        while remaining > 1e-9:
            size = min(self.filler_packet_bits, remaining)
            filler = Packet(
                seq=seq,
                flow=self.filler_flow,
                size_bits=size,
                created_at=self.sim.now,
                sent_at=self.sim.now,
            )
            self._enqueue(filler)
            remaining -= size
            seq += 1
        self._kick_downstream()

    # ------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if not self._pull_mode:
            self.emit(packet)
            return
        if self._occupancy_bits + packet.size_bits > self.capacity_bits + 1e-9:
            self.drop_count += 1
            self.dropped_packets.append(packet)
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("drop", seq=packet.seq, flow=packet.flow, occupancy=self._occupancy_bits)
            return
        self._enqueue(packet)
        self._kick_downstream()

    def pull(self) -> Optional[Packet]:
        """Hand the head-of-line packet to the draining link (or ``None``)."""
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._occupancy_bits -= packet.size_bits
        if self._occupancy_bits < 1e-9:
            self._occupancy_bits = 0.0
        self.trace("dequeue", seq=packet.seq, flow=packet.flow, occupancy=self._occupancy_bits)
        return packet

    # ----------------------------------------------------------------- state

    @property
    def occupancy_bits(self) -> float:
        """Bits currently queued (excluding any packet in service at the link)."""
        return self._occupancy_bits

    @property
    def occupancy_packets(self) -> int:
        """Number of packets currently queued."""
        return len(self._queue)

    @property
    def free_bits(self) -> float:
        """Remaining capacity in bits."""
        return self.capacity_bits - self._occupancy_bits

    def queued_flows(self) -> dict[str, int]:
        """Count of queued packets per flow (useful in tests and traces)."""
        counts: dict[str, int] = {}
        for packet in self._queue:
            counts[packet.flow] = counts.get(packet.flow, 0) + 1
        return counts

    # ---------------------------------------------------------------- helpers

    def _enqueue(self, packet: Packet) -> None:
        self._queue.append(packet)
        self._occupancy_bits += packet.size_bits
        if self._occupancy_bits > self.peak_occupancy_bits:
            self.peak_occupancy_bits = self._occupancy_bits
        self.trace("enqueue", seq=packet.seq, flow=packet.flow, occupancy=self._occupancy_bits)

    def _kick_downstream(self) -> None:
        kick = getattr(self.downstream, "kick", None)
        if callable(kick):
            kick()

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._occupancy_bits = 0.0
        self.drop_count = 0
        self.dropped_packets = []
        self.peak_occupancy_bits = 0.0
