"""RECEIVER — the terminal element that records deliveries and issues ACKs.

The paper (§3.4): "The RECEIVER accumulates packets and wakes up the SENDER
for each one, notifying it of the received time and sequence number of the
packet."  The preliminary experiments assume synchronized clocks and a
lossless, instantaneous return path, which here is an optional callback
invoked synchronously at delivery time.  An explicit acknowledgement delay
can be configured to model a non-instant return path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.sim.element import Element
from repro.sim.packet import Packet


@dataclass(slots=True)
class Delivery:
    """One recorded packet delivery."""

    seq: int
    flow: str
    size_bits: float
    sent_at: float
    received_at: float

    @property
    def delay(self) -> float:
        """One-way delay experienced by the packet."""
        return self.received_at - self.sent_at


class Receiver(Element):
    """Accumulates packets and optionally notifies a sender of each delivery.

    Parameters
    ----------
    on_deliver:
        Callback invoked as ``on_deliver(delivery)`` for every accepted
        packet, after the acknowledgement delay (zero by default).
    ack_delay:
        Seconds between packet arrival and the callback firing, modelling the
        return path.  The paper's experiments use zero.
    accept_flows:
        If given, only packets whose flow is in this collection are recorded
        and acknowledged; others are counted as ``ignored``.
    """

    def __init__(
        self,
        name: str | None = None,
        on_deliver: Optional[Callable[[Delivery], None]] = None,
        ack_delay: float = 0.0,
        accept_flows: Optional[set[str]] = None,
    ) -> None:
        super().__init__(name)
        self.on_deliver = on_deliver
        self.ack_delay = float(ack_delay)
        self.accept_flows = set(accept_flows) if accept_flows is not None else None
        self.deliveries: list[Delivery] = []
        self.ignored_count = 0
        self.bits_received = 0.0

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self.accept_flows is not None and packet.flow not in self.accept_flows:
            self.ignored_count += 1
            return
        now = self.sim.now
        packet.delivered_at = now
        sent_at = packet.sent_at if packet.sent_at is not None else packet.created_at
        delivery = Delivery(
            seq=packet.seq,
            flow=packet.flow,
            size_bits=packet.size_bits,
            sent_at=sent_at,
            received_at=now,
        )
        self.deliveries.append(delivery)
        self.bits_received += packet.size_bits
        self.trace("deliver", seq=packet.seq, flow=packet.flow, delay=delivery.delay)
        if self.on_deliver is not None:
            if self.ack_delay > 0:
                self.sim.schedule(self.ack_delay, self.on_deliver, delivery)
            else:
                self.on_deliver(delivery)

    # ------------------------------------------------------------------ stats

    @property
    def count(self) -> int:
        """Number of accepted deliveries."""
        return len(self.deliveries)

    def deliveries_for(self, flow: str) -> list[Delivery]:
        """Deliveries belonging to ``flow``."""
        return [delivery for delivery in self.deliveries if delivery.flow == flow]

    def sequence_series(self, flow: str | None = None) -> list[tuple[float, int]]:
        """``(time, cumulative packet count)`` pairs, the paper's Figure-3 y-axis."""
        rows = self.deliveries if flow is None else self.deliveries_for(flow)
        return [(delivery.received_at, index + 1) for index, delivery in enumerate(rows)]

    def throughput_bps(self, start: float, end: float, flow: str | None = None) -> float:
        """Average goodput in bits per second over ``[start, end)``."""
        if end <= start:
            return 0.0
        rows = self.deliveries if flow is None else self.deliveries_for(flow)
        bits = sum(d.size_bits for d in rows if start <= d.received_at < end)
        return bits / (end - start)

    def mean_delay(self, flow: str | None = None) -> float | None:
        """Mean one-way delay of accepted packets, or ``None`` if no deliveries."""
        rows = self.deliveries if flow is None else self.deliveries_for(flow)
        if not rows:
            return None
        return sum(d.delay for d in rows) / len(rows)

    def reset(self) -> None:
        super().reset()
        self.deliveries = []
        self.ignored_count = 0
        self.bits_received = 0.0
