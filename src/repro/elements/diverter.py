"""DIVERTER — route packets to one of two elements based on a predicate.

The paper (§3.1): "Routes packets from one source (such as the cross
traffic) to one network element, and all other traffic to a different
element."  The most common use is routing by flow name, so the predicate
argument accepts either a flow-name string or an arbitrary callable on the
packet.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from repro.sim.element import Element
from repro.sim.packet import Packet

Predicate = Union[str, Callable[[Packet], bool]]


class Diverter(Element):
    """Sends matching packets to ``match_branch`` and the rest to ``other_branch``.

    Parameters
    ----------
    predicate:
        Either a flow name (packets of that flow match) or a callable
        ``packet -> bool``.
    match_branch:
        Element receiving matching packets.
    other_branch:
        Element receiving all other packets.
    """

    def __init__(
        self,
        predicate: Predicate,
        match_branch: Element,
        other_branch: Element,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if isinstance(predicate, str):
            flow_name = predicate
            self._predicate: Callable[[Packet], bool] = lambda packet: packet.flow == flow_name
            self.predicate_description = f"flow == {flow_name!r}"
        else:
            self._predicate = predicate
            self.predicate_description = getattr(predicate, "__name__", repr(predicate))
        self.match_branch = match_branch
        self.other_branch = other_branch
        self.matched_count = 0
        self.other_count = 0

    def children(self) -> Iterable[Element]:
        yield self.match_branch
        yield self.other_branch

    def start(self) -> None:
        self.match_branch.start()
        self.other_branch.start()

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self._predicate(packet):
            self.matched_count += 1
            self.trace("route", seq=packet.seq, flow=packet.flow, branch="match")
            self.match_branch.receive(packet)
        else:
            self.other_count += 1
            self.trace("route", seq=packet.seq, flow=packet.flow, branch="other")
            self.other_branch.receive(packet)

    def reset(self) -> None:
        super().reset()
        self.matched_count = 0
        self.other_count = 0


class FlowDemux(Element):
    """Route each packet to the branch registered for its flow name.

    The N-way generalization of :class:`Diverter` that many-flow scenarios
    need: after a shared bottleneck, packets fan out to the per-flow
    :class:`~repro.elements.receiver.Receiver` that owns each sender's ACK
    clock.  Packets whose flow has no branch are counted on ``ignored_count``
    and dropped silently (cross traffic that nobody measures).

    Parameters
    ----------
    branches:
        Mapping of flow name to downstream element.  Several flows may
        share one element; ``children()``/``start()`` visit each distinct
        element once.
    """

    def __init__(
        self, branches: dict[str, Element], name: str | None = None
    ) -> None:
        super().__init__(name)
        self.branches = dict(branches)
        self.ignored_count = 0

    def _unique_branches(self) -> Iterable[Element]:
        seen: list[Element] = []
        for element in self.branches.values():
            if not any(element is known for known in seen):
                seen.append(element)
                yield element

    def children(self) -> Iterable[Element]:
        yield from self._unique_branches()

    def start(self) -> None:
        for element in self._unique_branches():
            element.start()

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        branch = self.branches.get(packet.flow)
        if branch is None:
            self.ignored_count += 1
            self.trace("ignore", seq=packet.seq, flow=packet.flow)
            return
        self.trace("route", seq=packet.seq, flow=packet.flow)
        branch.receive(packet)

    def reset(self) -> None:
        super().reset()
        self.ignored_count = 0
