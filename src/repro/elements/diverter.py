"""DIVERTER — route packets to one of two elements based on a predicate.

The paper (§3.1): "Routes packets from one source (such as the cross
traffic) to one network element, and all other traffic to a different
element."  The most common use is routing by flow name, so the predicate
argument accepts either a flow-name string or an arbitrary callable on the
packet.
"""

from __future__ import annotations

from typing import Callable, Iterable, Union

from repro.sim.element import Element
from repro.sim.packet import Packet

Predicate = Union[str, Callable[[Packet], bool]]


class Diverter(Element):
    """Sends matching packets to ``match_branch`` and the rest to ``other_branch``.

    Parameters
    ----------
    predicate:
        Either a flow name (packets of that flow match) or a callable
        ``packet -> bool``.
    match_branch:
        Element receiving matching packets.
    other_branch:
        Element receiving all other packets.
    """

    def __init__(
        self,
        predicate: Predicate,
        match_branch: Element,
        other_branch: Element,
        name: str | None = None,
    ) -> None:
        super().__init__(name)
        if isinstance(predicate, str):
            flow_name = predicate
            self._predicate: Callable[[Packet], bool] = lambda packet: packet.flow == flow_name
            self.predicate_description = f"flow == {flow_name!r}"
        else:
            self._predicate = predicate
            self.predicate_description = getattr(predicate, "__name__", repr(predicate))
        self.match_branch = match_branch
        self.other_branch = other_branch
        self.matched_count = 0
        self.other_count = 0

    def children(self) -> Iterable[Element]:
        yield self.match_branch
        yield self.other_branch

    def start(self) -> None:
        self.match_branch.start()
        self.other_branch.start()

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self._predicate(packet):
            self.matched_count += 1
            self.trace("route", seq=packet.seq, flow=packet.flow, branch="match")
            self.match_branch.receive(packet)
        else:
            self.other_count += 1
            self.trace("route", seq=packet.seq, flow=packet.flow, branch="other")
            self.other_branch.receive(packet)

    def reset(self) -> None:
        super().reset()
        self.matched_count = 0
        self.other_count = 0
