"""SQUAREWAVE — a gate that toggles connectivity on a fixed schedule.

The paper (§3.1): "Regularly alternates between connected and disconnected
with a certain period."  In the §4 experiment the cross traffic is switched
deterministically every 100 seconds — exactly this element applied to the
PINGER's output — while the sender *believes* the switching is memoryless
(an INTERMITTENT element).  That deliberate model mismatch is part of the
experiment and is reproduced in :mod:`repro.experiments.figure3`.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.elements.gate import GateElement


class SquareWave(GateElement):
    """A connectivity gate that toggles every ``switch_interval`` seconds.

    Parameters
    ----------
    switch_interval:
        Dwell time in each state, in seconds (the full on/off cycle is twice
        this value).
    initially_connected:
        Whether the gate starts connected.
    offset:
        Delay before the first toggle, defaulting to ``switch_interval``.
    """

    def __init__(
        self,
        switch_interval: float,
        name: str | None = None,
        initially_connected: bool = True,
        offset: float | None = None,
    ) -> None:
        if switch_interval <= 0:
            raise ConfigurationError(f"switch_interval must be positive, got {switch_interval!r}")
        super().__init__(name, initially_connected=initially_connected)
        self.switch_interval = switch_interval
        self.offset = switch_interval if offset is None else offset
        if self.offset < 0:
            raise ConfigurationError(f"offset must be non-negative, got {offset!r}")

    def start(self) -> None:
        self.sim.schedule(self.offset, self._switch)

    def _switch(self) -> None:
        self._toggle()
        self.sim.schedule(self.switch_interval, self._switch)

    def state_at(self, time: float) -> bool:
        """Connectivity the gate will have at absolute ``time`` (ignoring resets)."""
        if time < self.offset:
            return self._initially_connected
        toggles = 1 + int((time - self.offset) / self.switch_interval)
        if toggles % 2 == 1:
            return not self._initially_connected
        return self._initially_connected
