"""INTERMITTENT — a gate that switches on/off according to a memoryless process.

The paper (§3.1): "Connects input and output only intermittently, and
switches from connected to disconnected according to a memoryless process
with particular interarrival time (mean-time-to-switch)."
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.elements.gate import GateElement


class Intermittent(GateElement):
    """A connectivity gate whose dwell times are exponentially distributed.

    Parameters
    ----------
    mean_time_to_switch:
        Mean of the exponential dwell time in each state, in seconds.
    initially_connected:
        Whether the gate starts in the connected state.
    """

    def __init__(
        self,
        mean_time_to_switch: float,
        name: str | None = None,
        initially_connected: bool = True,
    ) -> None:
        if mean_time_to_switch <= 0:
            raise ConfigurationError(
                f"mean_time_to_switch must be positive, got {mean_time_to_switch!r}"
            )
        super().__init__(name, initially_connected=initially_connected)
        self.mean_time_to_switch = mean_time_to_switch

    def start(self) -> None:
        self._schedule_next_switch()

    def _schedule_next_switch(self) -> None:
        dwell = self.rng("switch").expovariate(1.0 / self.mean_time_to_switch)
        self.sim.schedule(dwell, self._switch)

    def _switch(self) -> None:
        self._toggle()
        self._schedule_next_switch()

    def switch_probability(self, interval: float) -> float:
        """Probability of at least one switch within ``interval`` seconds.

        This is what the inference engine uses when it discretizes the
        memoryless switching process to wake-up boundaries.
        """
        import math

        if interval <= 0:
            return 0.0
        return 1.0 - math.exp(-interval / self.mean_time_to_switch)
