"""THROUGHPUT — a link that serializes packets at a fixed bit rate.

The element transmits one packet at a time; a packet of ``s`` bits takes
``s / rate`` seconds to cross the link.  Packets that arrive while the link
is busy wait in an internal (unbounded) queue unless an upstream
:class:`~repro.elements.buffer.Buffer` has registered itself, in which case
the link *pulls* the next packet from that buffer when it goes idle.  This
pull protocol is what gives the BUFFER element its tail-drop semantics: the
bounded queue lives in the buffer, the link only ever holds the packet in
service.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Protocol

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class PacketSource(Protocol):
    """Anything a :class:`Throughput` can pull packets from when idle."""

    def pull(self) -> Optional[Packet]:
        """Return the next packet to transmit, or ``None`` if empty."""
        ...


class Throughput(Element):
    """A throughput-limited link operating at ``rate_bps`` bits per second."""

    def __init__(self, rate_bps: float, name: str | None = None) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"link rate must be positive, got {rate_bps!r}")
        super().__init__(name)
        self.rate_bps = float(rate_bps)
        self._busy = False
        self._internal_queue: deque[Packet] = deque()
        self._upstream_queue: Optional[PacketSource] = None
        self.bits_transmitted = 0.0
        self.packets_transmitted = 0

    # ------------------------------------------------------------- interface

    @property
    def idle(self) -> bool:
        """Whether the link is currently not transmitting."""
        return not self._busy

    @property
    def backlog(self) -> int:
        """Packets waiting in the internal queue (excluding the one in service)."""
        return len(self._internal_queue)

    def register_upstream_queue(self, source: PacketSource) -> None:
        """Register a buffer to pull from whenever the link goes idle."""
        self._upstream_queue = source

    def service_time(self, packet: Packet) -> float:
        """Seconds needed to serialize ``packet`` onto this link."""
        return packet.size_bits / self.rate_bps

    # ------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self._busy:
            self._internal_queue.append(packet)
        else:
            self._begin(packet)

    def kick(self) -> None:
        """Start transmitting if idle and a packet is available upstream."""
        if self._busy:
            return
        nxt = self._next_packet()
        if nxt is not None:
            self._begin(nxt)

    def _next_packet(self) -> Optional[Packet]:
        if self._internal_queue:
            return self._internal_queue.popleft()
        if self._upstream_queue is not None:
            return self._upstream_queue.pull()
        return None

    def _begin(self, packet: Packet) -> None:
        self._busy = True
        self.trace("tx_start", seq=packet.seq, flow=packet.flow)
        self.sim.schedule(self.service_time(packet), self._complete, packet)

    def _complete(self, packet: Packet) -> None:
        self._busy = False
        self.bits_transmitted += packet.size_bits
        self.packets_transmitted += 1
        self.trace("tx_done", seq=packet.seq, flow=packet.flow)
        self.emit(packet)
        self.kick()

    def reset(self) -> None:
        super().reset()
        self._busy = False
        self._internal_queue.clear()
        self.bits_transmitted = 0.0
        self.packets_transmitted = 0
