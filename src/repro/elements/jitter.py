"""JITTER — an extra delay applied to randomly selected packets.

The paper (§3.1): "A delay of a certain amount, introduced to
randomly-selected packets with a particular probability."  Because only
some packets are delayed, the element can reorder traffic; that is inherent
to the phenomenon being modelled.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class Jitter(Element):
    """With probability ``probability``, delay a packet by ``delay`` seconds."""

    def __init__(
        self,
        delay: float,
        probability: float,
        name: str | None = None,
    ) -> None:
        if delay < 0:
            raise ConfigurationError(f"jitter delay must be non-negative, got {delay!r}")
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"jitter probability must be within [0, 1], got {probability!r}"
            )
        super().__init__(name)
        self.delay = float(delay)
        self.probability = float(probability)
        self.jittered_count = 0
        self.untouched_count = 0

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if self.probability > 0.0 and self.rng("jitter").random() < self.probability:
            self.jittered_count += 1
            packet.meta["jittered"] = packet.meta.get("jittered", 0) + 1
            self.trace("jitter", seq=packet.seq, flow=packet.flow, delay=self.delay)
            self.sim.schedule(self.delay, self.emit, packet)
        else:
            self.untouched_count += 1
            self.emit(packet)

    def reset(self) -> None:
        super().reset()
        self.jittered_count = 0
        self.untouched_count = 0
