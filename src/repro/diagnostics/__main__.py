"""Command-line entry point: ``python -m repro.diagnostics``.

Three subcommands::

    # Where do two backend configurations first disagree, and why?
    python -m repro.diagnostics divergence --seed 3
    python -m repro.diagnostics divergence --perturb score   # self-test

    # Rank candidate causes against bench records, the cache, and fuzz.
    python -m repro.diagnostics triage BENCH_*.json \
        --baseline-dir benchmarks/baselines --fuzz 5

    # Which committed benchmark trajectory regressed, and by how much?
    python -m repro.diagnostics bench-history BENCH_*.json \
        --baseline-dir benchmarks/baselines

Exit status: ``divergence`` returns 1 when the replays diverge,
``bench-history`` returns 1 when any record is flagged, ``triage`` always
returns 0 (it ranks causes; it is not itself a gate).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.benchmarking import BenchRecord
from repro.diagnostics.divergence import (
    INJECTABLE_STAGES,
    backend_config,
    diagnose_divergence,
    inject_stage_perturbation,
)
from repro.diagnostics.history import analyze_history
from repro.diagnostics.triage import triage


def _load_records(paths: Sequence[str]) -> dict[str, BenchRecord]:
    return {Path(path).name: BenchRecord.load(path) for path in paths}


def _load_baselines(
    names: Sequence[str],
    baseline: Optional[str],
    baseline_dir: Optional[str],
    parser: argparse.ArgumentParser,
) -> dict[str, BenchRecord]:
    if baseline is not None and baseline_dir is not None:
        parser.error("--baseline and --baseline-dir are mutually exclusive")
    if baseline is not None:
        if len(names) != 1:
            parser.error("--baseline compares exactly one record; use --baseline-dir")
        return {names[0]: BenchRecord.load(baseline)}
    baselines: dict[str, BenchRecord] = {}
    if baseline_dir is not None:
        for name in names:
            candidate = Path(baseline_dir) / name
            if candidate.exists():
                baselines[name] = BenchRecord.load(candidate)
            else:
                print(f"note: no baseline for {name} under {baseline_dir}; gates only")
    return baselines


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.diagnostics",
        description="equivalence and regression triage for the repro sender",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    divergence = sub.add_parser(
        "divergence",
        help="bisect two backend replays to the first diverging kernel stage",
    )
    divergence.add_argument("--seed", type=int, default=0)
    divergence.add_argument("--belief-a", default="scalar")
    divergence.add_argument("--rollout-a", default="scalar")
    divergence.add_argument("--belief-b", default="vectorized")
    divergence.add_argument("--rollout-b", default="vectorized")
    divergence.add_argument("--max-hypotheses", type=int, default=48)
    divergence.add_argument("--top-k", type=int, default=8)
    divergence.add_argument("--tolerance", type=float, default=1e-9)
    divergence.add_argument(
        "--perturb",
        choices=INJECTABLE_STAGES,
        help="deliberately skew one vectorized stage (fingerprinter self-test)",
    )
    divergence.add_argument("--epsilon", type=float, default=1.0)

    triage_parser = sub.add_parser(
        "triage", help="rank candidate root causes against available evidence"
    )
    triage_parser.add_argument("records", nargs="*", help="BENCH_*.json files")
    triage_parser.add_argument("--baseline-dir")
    triage_parser.add_argument("--max-regression", type=float, default=0.25)
    triage_parser.add_argument("--cache-dir", help="ResultCache root to scan")
    triage_parser.add_argument(
        "--fuzz", type=int, default=0, metavar="N",
        help="differential scalar-vs-vectorized replays over seeds 0..N-1",
    )
    triage_parser.add_argument(
        "--collision-seeds", type=int, default=0, metavar="N",
        help="seeded replays scanned for decision-signature collisions",
    )

    history = sub.add_parser(
        "bench-history", help="check benchmark trajectories against baselines"
    )
    history.add_argument("records", nargs="+", help="BENCH_*.json files")
    history.add_argument("--baseline", help="single baseline record")
    history.add_argument("--baseline-dir", help="directory of baselines, matched by name")
    history.add_argument("--max-regression", type=float, default=0.25)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.command == "divergence":
        config_a = backend_config(
            args.belief_a, args.rollout_a, args.max_hypotheses, args.top_k
        )
        config_b = backend_config(
            args.belief_b, args.rollout_b, args.max_hypotheses, args.top_k
        )
        if args.perturb:
            with inject_stage_perturbation(args.perturb, args.epsilon):
                report = diagnose_divergence(
                    config_a, config_b, seed=args.seed, tolerance=args.tolerance
                )
        else:
            report = diagnose_divergence(
                config_a, config_b, seed=args.seed, tolerance=args.tolerance
            )
        print(report.render())
        return 1 if report.diverged else 0

    if args.command == "triage":
        records = _load_records(args.records)
        baselines = _load_baselines(
            list(records), None, args.baseline_dir, parser
        )
        report = triage(
            records=records,
            baselines=baselines,
            max_regression=args.max_regression,
            cache_dir=args.cache_dir,
            fuzz_seeds=range(args.fuzz),
            collision_seeds=range(args.collision_seeds),
        )
        print(report.render())
        return 0

    assert args.command == "bench-history"
    records = _load_records(args.records)
    baselines = _load_baselines(list(records), args.baseline, args.baseline_dir, parser)
    report = analyze_history(
        records, baselines, max_regression=args.max_regression
    )
    print(report.render())
    return 1 if report.flagged else 0


if __name__ == "__main__":
    sys.exit(main())
