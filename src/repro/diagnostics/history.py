"""Benchmark-trajectory analysis and cached-sweep auto-bisection.

Two localization tools for "something got slower / something changed":

* :func:`analyze_history` walks committed ``BENCH_*.json`` records against
  their baselines, re-checks every record's own gates, runs the wall-time
  regression check, and tabulates per-entry fractional deltas of every
  time-like metric — flagging the records where a regression entered.
* :func:`bisect_cached_sweep` replays a sweep's grid points through the
  :class:`~repro.runner.cache.ResultCache` *key space only*: each spec is
  classified as a cache hit or miss without executing anything.  Because
  cache keys fold in scenario params, seeds, config fingerprints, and code
  identity, the misses are exactly the grid region whose identity changed —
  the region a regression entered — and the axis values appearing only
  among misses localize it further.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.benchmarking import TIME_METRIC_SUFFIXES, BenchRecord, GateFailure
from repro.runner.cache import ResultCache
from repro.runner.spec import ScenarioSpec

__all__ = [
    "EntryDelta",
    "HistoryReport",
    "RecordReport",
    "SweepBisection",
    "analyze_history",
    "bisect_cached_sweep",
]


# ------------------------------------------------------------- bench history


@dataclass
class EntryDelta:
    """Fractional change of one time-like metric against the baseline."""

    entry: str
    metric: str
    baseline: float
    current: float

    @property
    def change(self) -> float:
        """Fractional delta; positive means slower than the baseline."""
        if self.baseline == 0.0:
            return 0.0
        return self.current / self.baseline - 1.0


@dataclass
class RecordReport:
    """One ``BENCH_*.json`` record checked against its baseline."""

    name: str
    gate_failures: list[GateFailure] = field(default_factory=list)
    regression_failures: list[GateFailure] = field(default_factory=list)
    deltas: list[EntryDelta] = field(default_factory=list)
    has_baseline: bool = False

    @property
    def flagged(self) -> bool:
        return bool(self.gate_failures or self.regression_failures)


@dataclass
class HistoryReport:
    """Every analyzed record, with the flagged subset called out."""

    records: list[RecordReport] = field(default_factory=list)

    @property
    def flagged(self) -> list[str]:
        return [record.name for record in self.records if record.flagged]

    def render(self) -> str:
        lines = [f"bench history: {len(self.records)} record(s) analyzed"]
        for record in self.records:
            status = "FLAGGED" if record.flagged else "ok"
            baseline_note = "" if record.has_baseline else " (no baseline; gates only)"
            lines.append(f"  {record.name}: {status}{baseline_note}")
            for failure in record.gate_failures:
                lines.append(f"    gate: {failure.message}")
            for failure in record.regression_failures:
                lines.append(f"    regression: {failure.message}")
            for delta in sorted(
                record.deltas, key=lambda d: abs(d.change), reverse=True
            ):
                lines.append(
                    f"    {delta.entry}.{delta.metric}: {delta.baseline:.4g}s "
                    f"-> {delta.current:.4g}s ({delta.change:+.1%})"
                )
        if self.flagged:
            lines.append(f"  flagged: {', '.join(self.flagged)}")
        else:
            lines.append("  no record regressed")
        return "\n".join(lines)


def _time_deltas(record: BenchRecord, baseline: BenchRecord) -> list[EntryDelta]:
    deltas: list[EntryDelta] = []
    for label, entry in sorted(record.entries.items()):
        base_entry = baseline.entries.get(label)
        if base_entry is None:
            continue
        base_metrics = base_entry.get("metrics", {})
        for metric, current in sorted(entry.get("metrics", {}).items()):
            if not metric.endswith(TIME_METRIC_SUFFIXES):
                continue
            base_value = base_metrics.get(metric)
            if base_value is None:
                continue
            deltas.append(
                EntryDelta(
                    entry=label,
                    metric=metric,
                    baseline=float(base_value),
                    current=float(current),
                )
            )
    return deltas


def analyze_history(
    records: Mapping[str, BenchRecord],
    baselines: Optional[Mapping[str, BenchRecord]] = None,
    max_regression: float = 0.25,
) -> HistoryReport:
    """Check every record's gates and baseline deltas; flag regressions."""
    baselines = baselines or {}
    report = HistoryReport()
    for name, record in sorted(records.items()):
        baseline = baselines.get(name)
        entry = RecordReport(
            name=name,
            gate_failures=record.check_gates(),
            has_baseline=baseline is not None,
        )
        if baseline is not None:
            entry.regression_failures = record.check_regressions(
                baseline, max_regression=max_regression
            )
            entry.deltas = _time_deltas(record, baseline)
        report.records.append(entry)
    return report


# ------------------------------------------------------------- sweep bisect


@dataclass
class SweepBisection:
    """Hit/miss partition of a sweep's grid through the result cache."""

    hits: list[ScenarioSpec] = field(default_factory=list)
    misses: list[ScenarioSpec] = field(default_factory=list)
    #: Axis name -> values that appear only among cache misses.
    suspect_axes: dict[str, list] = field(default_factory=dict)

    @property
    def localized(self) -> bool:
        return bool(self.suspect_axes)

    def render(self) -> str:
        lines = [
            f"cached sweep bisection: {len(self.hits)} hit(s), "
            f"{len(self.misses)} miss(es)"
        ]
        if not self.misses:
            lines.append("  every point replays from cache — no region changed")
        elif not self.hits:
            lines.append(
                "  every point misses — a global identity change "
                "(code, defaults, or schema), not a localized region"
            )
        elif self.localized:
            for axis, values in sorted(self.suspect_axes.items()):
                rendered = ", ".join(repr(value) for value in values)
                lines.append(f"  suspect axis {axis!r}: misses only at {rendered}")
        else:
            lines.append("  misses do not localize to any single axis")
        for spec in self.misses:
            lines.append(f"  miss: {spec.label}")
        return "\n".join(lines)


def _axis_values(specs: Sequence[ScenarioSpec]) -> dict[str, set[str]]:
    values: dict[str, set[str]] = {}
    for spec in specs:
        for axis, value in spec.params.items():
            values.setdefault(axis, set()).add(repr(value))
        values.setdefault("seed", set()).add(repr(spec.seed))
    return values


def bisect_cached_sweep(
    cache: ResultCache,
    specs: Sequence[ScenarioSpec],
    registry=None,
) -> SweepBisection:
    """Partition ``specs`` into cache hits and misses; localize the misses.

    Nothing executes: each point is probed purely through its cache key.
    A value of some parameter axis (or seed) that occurs *only* among
    misses marks the grid region whose identity changed since the cache
    was populated — the region to re-run first when hunting a regression.
    """
    bisection = SweepBisection()
    reprs: dict[str, object] = {}
    for spec in specs:
        for value in list(spec.params.values()) + [spec.seed]:
            reprs.setdefault(repr(value), value)
        result = cache.load_point(cache.point_key(spec, registry), spec)
        (bisection.hits if result is not None else bisection.misses).append(spec)
    if bisection.hits and bisection.misses:
        hit_values = _axis_values(bisection.hits)
        miss_values = _axis_values(bisection.misses)
        for axis, misses in sorted(miss_values.items()):
            only_missing = misses - hit_values.get(axis, set())
            if only_missing:
                bisection.suspect_axes[axis] = sorted(
                    (reprs[rendered] for rendered in only_missing), key=repr
                )
    return bisection
