"""Bayesian evidence scoring for diagnostic root causes.

The triage layer keeps a small set of candidate-cause hypotheses (backend
drift, signature collision, cache staleness, bench noise) and updates each
one against the evidence the probes collect.  :class:`BayesianScorer`
applies a sequential odds-form update: one piece of supporting evidence
with confidence ``c`` multiplies the hypothesis's odds by ``c / (1 - c)``,
one piece of refuting evidence divides by the same factor, and evidence at
``c = 0.5`` is uninformative.  Posteriors are clamped away from 0 and 1 so
no single observation is ever treated as proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Evidence", "CauseHypothesis", "BayesianScorer"]

#: Posterior (and confidence) clamp bounds: evidence is never proof.
_FLOOR = 0.01
_CEILING = 0.99


@dataclass(frozen=True)
class Evidence:
    """One observation bearing on a cause hypothesis.

    ``confidence`` in ``(0, 1)`` is the strength of the observation:
    how much more likely it is under the hypothesis than under its
    complement (0.5 = uninformative).
    """

    description: str
    source: str
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ValueError(
                f"evidence confidence must be in (0, 1), got {self.confidence!r}"
            )


@dataclass
class CauseHypothesis:
    """A candidate root cause with its accumulated evidence."""

    name: str
    description: str
    prior: float
    evidence_for: list[Evidence] = field(default_factory=list)
    evidence_against: list[Evidence] = field(default_factory=list)
    posterior: float = 0.0

    def support(self, description: str, source: str, confidence: float) -> None:
        """Attach one piece of evidence for this cause."""
        self.evidence_for.append(Evidence(description, source, confidence))

    def refute(self, description: str, source: str, confidence: float) -> None:
        """Attach one piece of evidence against this cause."""
        self.evidence_against.append(Evidence(description, source, confidence))


class BayesianScorer:
    """Sequential odds-form scoring of cause hypotheses."""

    @staticmethod
    def compute_posterior(
        prior: float,
        evidence_for: list[Evidence],
        evidence_against: list[Evidence],
    ) -> float:
        """Posterior probability after applying every piece of evidence.

        Supporting evidence raises the posterior, refuting evidence lowers
        it, and no evidence returns the prior unchanged.  Updates commute
        (odds multiplications), so evidence order does not matter.
        """
        posterior = min(max(prior, _FLOOR), _CEILING)
        for evidence in evidence_for:
            c = min(max(evidence.confidence, _FLOOR), _CEILING)
            posterior = (posterior * c) / (posterior * c + (1.0 - posterior) * (1.0 - c))
        for evidence in evidence_against:
            c = min(max(evidence.confidence, _FLOOR), _CEILING)
            posterior = (posterior * (1.0 - c)) / (
                posterior * (1.0 - c) + (1.0 - posterior) * c
            )
        return min(max(posterior, _FLOOR), _CEILING)

    def score(self, causes: list[CauseHypothesis]) -> list[CauseHypothesis]:
        """Fill every cause's posterior and return them ranked, best first.

        The sort is stable, so causes that end up with equal posteriors
        keep their declaration order (most specific first, by convention).
        """
        for cause in causes:
            cause.posterior = self.compute_posterior(
                cause.prior, cause.evidence_for, cause.evidence_against
            )
        return sorted(causes, key=lambda cause: cause.posterior, reverse=True)

    def rank(self, causes: list[CauseHypothesis]) -> list[CauseHypothesis]:
        """Alias of :meth:`score` (the SNIPPETS template's name)."""
        return self.score(causes)
