"""Self-diagnosing equivalence triage for the repro sender.

Three layers, bottom-up:

* :mod:`repro.diagnostics.evidence` — a Bayesian evidence scorer that
  maintains candidate-cause hypotheses and ranks them by posterior.
* :mod:`repro.diagnostics.divergence` — a differential fingerprinter that
  replays two backend configurations through one seeded event script and
  bisects to the first kernel/rollout stage whose checkpoints differ.
* :mod:`repro.diagnostics.triage` / :mod:`repro.diagnostics.history` —
  root-cause triage over bench trajectories, cache state, differential
  fuzz, and signature-collision scans; bench-history regression flagging;
  cached-sweep auto-bisection.

CLI: ``python -m repro.diagnostics {divergence,triage,bench-history}``.
"""

from repro.diagnostics.divergence import (
    DECISION_STAGES,
    INJECTABLE_STAGES,
    KERNEL_STAGES,
    Divergence,
    DivergenceReport,
    EventTrace,
    backend_config,
    compare_traces,
    diagnose_divergence,
    inject_stage_perturbation,
    replay_trace,
    seeded_events,
)
from repro.diagnostics.evidence import BayesianScorer, CauseHypothesis, Evidence
from repro.diagnostics.history import (
    EntryDelta,
    HistoryReport,
    RecordReport,
    SweepBisection,
    analyze_history,
    bisect_cached_sweep,
)
from repro.diagnostics.triage import (
    CAUSE_BACKEND_DRIFT,
    CAUSE_CACHE_STALENESS,
    CAUSE_ENVIRONMENT_NOISE,
    CAUSE_SIGNATURE_COLLISION,
    TriageReport,
    make_causes,
    scan_signature_collisions,
    triage,
)

__all__ = [
    "BayesianScorer",
    "CauseHypothesis",
    "Evidence",
    "Divergence",
    "DivergenceReport",
    "EventTrace",
    "KERNEL_STAGES",
    "DECISION_STAGES",
    "INJECTABLE_STAGES",
    "backend_config",
    "compare_traces",
    "diagnose_divergence",
    "inject_stage_perturbation",
    "replay_trace",
    "seeded_events",
    "EntryDelta",
    "HistoryReport",
    "RecordReport",
    "SweepBisection",
    "analyze_history",
    "bisect_cached_sweep",
    "CAUSE_BACKEND_DRIFT",
    "CAUSE_CACHE_STALENESS",
    "CAUSE_ENVIRONMENT_NOISE",
    "CAUSE_SIGNATURE_COLLISION",
    "TriageReport",
    "make_causes",
    "scan_signature_collisions",
    "triage",
]
