"""Ranked root-cause triage for equivalence and benchmark regressions.

When a differential test or a benchmark gate fails, the first question is
*which layer moved*: did an engine genuinely drift from its reference, is
the policy table's coarse decision signature colliding two distinct belief
states, is the result cache replaying entries that predate an unreleased
simulator edit, or did nothing move at all and the bench environment is
noisy?  :func:`triage` keeps one :class:`CauseHypothesis` per candidate and
scores them against every piece of evidence the probes below can collect:

* committed ``BENCH_*.json`` trajectories (gate failures and wall-time
  regressions against their baselines),
* a differential quick-fuzz — seeded scalar-vs-vectorized replays through
  :func:`~repro.diagnostics.divergence.diagnose_divergence`,
* :class:`~repro.runner.cache.ResultCache` hit/miss/invalid counters and a
  scan of an on-disk cache directory for unreadable or wrong-schema
  entries,
* :func:`scan_signature_collisions` — seeded replays that watch for one
  coarse decision signature mapping to different planner decisions.

The result is a :class:`TriageReport` with every cause ranked by posterior
probability and the full evidence log, so the report is auditable rather
than oracular.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.benchmarking import TIME_METRIC_SUFFIXES, BenchRecord
from repro.diagnostics.divergence import (
    DivergenceReport,
    backend_config,
    diagnose_divergence,
    seeded_events,
)
from repro.diagnostics.evidence import BayesianScorer, CauseHypothesis
from repro.runner.cache import CACHE_SCHEMA_VERSION

__all__ = [
    "CAUSE_BACKEND_DRIFT",
    "CAUSE_CACHE_STALENESS",
    "CAUSE_ENVIRONMENT_NOISE",
    "CAUSE_SIGNATURE_COLLISION",
    "TriageReport",
    "make_causes",
    "scan_signature_collisions",
    "triage",
]

CAUSE_BACKEND_DRIFT = "backend drift (vectorized engine diverges from scalar oracle)"
CAUSE_SIGNATURE_COLLISION = "signature-resolution collision (policy table aliases beliefs)"
CAUSE_CACHE_STALENESS = "cache staleness (replayed results predate a code change)"
CAUSE_ENVIRONMENT_NOISE = "bench-environment noise (no behavioural change)"

#: Gate-target / message substrings that mark a gate as an *equivalence*
#: gate rather than a performance gate.
_PARITY_KEYWORDS = ("divergence", "fidelity", "parity", "equivalen", "match")


def make_causes() -> dict[str, CauseHypothesis]:
    """The four candidate causes, keyed by name, with neutral priors."""
    causes = [
        CauseHypothesis(
            name=CAUSE_BACKEND_DRIFT,
            description=(
                "a vectorized kernel or rollout stage no longer reproduces "
                "the scalar reference"
            ),
            prior=0.2,
        ),
        CauseHypothesis(
            name=CAUSE_SIGNATURE_COLLISION,
            description=(
                "the coarse decision signature maps two belief states that "
                "decide differently onto one policy-table slot"
            ),
            prior=0.15,
        ),
        CauseHypothesis(
            name=CAUSE_CACHE_STALENESS,
            description=(
                "the result cache is replaying points stored before an "
                "unreleased simulator/scenario edit (CACHE_SCHEMA_VERSION "
                "not bumped)"
            ),
            prior=0.15,
        ),
        CauseHypothesis(
            name=CAUSE_ENVIRONMENT_NOISE,
            description="timing noise on the bench machine; no code-level cause",
            prior=0.2,
        ),
    ]
    return {cause.name: cause for cause in causes}


@dataclass
class TriageReport:
    """Ranked causes plus the raw evidence log that produced the ranking."""

    causes: list[CauseHypothesis]
    notes: list[str] = field(default_factory=list)
    divergence: Optional[DivergenceReport] = None

    @property
    def top_cause(self) -> CauseHypothesis:
        return self.causes[0]

    def render(self) -> str:
        lines = ["triage report"]
        for note in self.notes:
            lines.append(f"  note: {note}")
        lines.append("  ranked causes:")
        for rank, cause in enumerate(self.causes, start=1):
            lines.append(
                f"    {rank}. {cause.name}  p={cause.posterior:.2f} "
                f"(prior {cause.prior:.2f})"
            )
            for evidence in cause.evidence_for:
                lines.append(f"       + [{evidence.source}] {evidence.description}")
            for evidence in cause.evidence_against:
                lines.append(f"       - [{evidence.source}] {evidence.description}")
        if self.divergence is not None and self.divergence.diverged:
            lines.append("")
            lines.append(self.divergence.render())
        return "\n".join(lines)


# ------------------------------------------------------------------- evidence


def _is_time_metric(metric: str) -> bool:
    return metric.endswith(TIME_METRIC_SUFFIXES)


def _bench_evidence(
    causes: dict[str, CauseHypothesis],
    notes: list[str],
    records: Mapping[str, BenchRecord],
    baselines: Mapping[str, BenchRecord],
    max_regression: float,
) -> None:
    """Score gate failures and wall-time regressions from bench records."""
    drift = causes[CAUSE_BACKEND_DRIFT]
    noise = causes[CAUSE_ENVIRONMENT_NOISE]
    parity_gates_seen = 0
    parity_gates_failed = 0
    any_regression = False
    for name, record in sorted(records.items()):
        failures = record.check_gates()
        failed_targets = {f"{failure.entry}.{failure.metric}" for failure in failures}
        for target in record.gates:
            if any(keyword in target.lower() for keyword in _PARITY_KEYWORDS):
                parity_gates_seen += 1
                if target in failed_targets:
                    parity_gates_failed += 1
        for failure in failures:
            text = f"{name}: {failure.message}"
            notes.append(f"gate failure — {text}")
            target = f"{failure.entry}.{failure.metric}".lower()
            if any(keyword in target for keyword in _PARITY_KEYWORDS):
                drift.support(text, "bench", 0.85)
            elif "speedup" in target or _is_time_metric(failure.metric):
                # A missed performance gate without an equivalence failure
                # reads as a slow machine far more often than as drift.
                noise.support(text, "bench", 0.6)
            else:
                noise.support(text, "bench", 0.55)
        baseline = baselines.get(name)
        if baseline is None:
            continue
        regressions = record.check_regressions(baseline, max_regression=max_regression)
        for failure in regressions:
            any_regression = True
            text = f"{name}: {failure.message}"
            notes.append(f"regression — {text}")
            noise.support(text, "bench", 0.65 if not failures else 0.55)
    if records and not any_regression and baselines:
        noise.refute("no wall-time regressions against any baseline", "bench", 0.55)
    if parity_gates_seen and not parity_gates_failed:
        drift.refute(
            f"{parity_gates_seen} equivalence gate(s) pass in committed records",
            "bench",
            0.6,
        )


def _cache_evidence(
    causes: dict[str, CauseHypothesis],
    notes: list[str],
    cache_dir: Optional[Path],
    cache_counters: Optional[Mapping[str, int]],
) -> None:
    """Score the staleness hypothesis from cache counters and disk state."""
    staleness = causes[CAUSE_CACHE_STALENESS]
    if cache_counters is not None:
        invalid = int(cache_counters.get("invalid", 0))
        traffic = int(cache_counters.get("hits", 0)) + int(cache_counters.get("misses", 0))
        if invalid:
            staleness.support(
                f"{invalid} cache read(s) failed validation this run",
                "cache",
                0.85,
            )
        elif traffic:
            staleness.refute(
                f"{traffic} cache lookup(s), none invalid", "cache", 0.6
            )
    if cache_dir is None:
        return
    entries = sorted(Path(cache_dir).glob("results/*/*.json"))
    if not entries:
        notes.append(f"cache directory {cache_dir} holds no entries")
        return
    unreadable = 0
    wrong_schema = 0
    for path in entries:
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            unreadable += 1
            continue
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA_VERSION:
            wrong_schema += 1
    if unreadable:
        staleness.support(
            f"{unreadable}/{len(entries)} cache entries unreadable", "cache", 0.7
        )
    if wrong_schema:
        staleness.support(
            f"{wrong_schema}/{len(entries)} cache entries carry a schema other "
            f"than {CACHE_SCHEMA_VERSION}",
            "cache",
            0.8,
        )
    if not unreadable and not wrong_schema:
        staleness.refute(
            f"all {len(entries)} on-disk cache entries parse with the current "
            f"schema ({CACHE_SCHEMA_VERSION})",
            "cache",
            0.6,
        )
        notes.append(
            "cache entries match the current schema — note this cannot rule "
            "out entries stored before an unreleased simulator edit"
        )


def _differential_evidence(
    causes: dict[str, CauseHypothesis],
    notes: list[str],
    fuzz_seeds: Sequence[int],
) -> Optional[DivergenceReport]:
    """Replay scalar-vs-vectorized over seeds; divergence is strong drift."""
    drift = causes[CAUSE_BACKEND_DRIFT]
    scalar = backend_config("scalar", "scalar")
    vectorized = backend_config("vectorized", "vectorized")
    for seed in fuzz_seeds:
        report = diagnose_divergence(scalar, vectorized, seed=seed)
        if report.diverged:
            assert report.divergence is not None
            drift.support(
                f"differential replay diverges at seed {seed}: "
                f"{report.divergence.detail}",
                "differential",
                0.95,
            )
            notes.append(f"differential divergence found at seed {seed}")
            return report
    if fuzz_seeds:
        drift.refute(
            f"{len(fuzz_seeds)} seeded differential replay(s) match at every stage",
            "differential",
            0.7,
        )
    return None


def scan_signature_collisions(
    config,
    seeds: Sequence[int],
    queue_resolution_bits: Optional[float] = None,
) -> list[dict]:
    """Find coarse decision signatures that alias different decisions.

    Replays :func:`~repro.diagnostics.divergence.seeded_events` scripts,
    recording the planner's decision at every decide point alongside the
    belief's :meth:`~repro.inference.belief.BeliefState.decision_signature`
    at ``queue_resolution_bits`` (the config's policy resolution by
    default).  Two occurrences of the same signature choosing different
    delays is exactly the failure the policy table would replay: its
    memoized decision would be wrong for one of the two states.
    """
    resolution = (
        queue_resolution_bits
        if queue_resolution_bits is not None
        else config.policy_resolution_bits
    )
    collisions: list[dict] = []
    seen: dict[tuple, tuple[float, int]] = {}
    for seed in seeds:
        belief = config.build_belief()
        planner = config.build_planner()
        for kind, args in seeded_events(seed):
            if kind == "send":
                belief.record_send(*args)
            elif kind == "update":
                belief.update(*args)
            else:
                signature = belief.decision_signature(planner.top_k, resolution)
                decision = planner.decide(belief, args[0])
                previous = seen.get(signature)
                if previous is not None and previous[0] != decision.delay:
                    collisions.append(
                        {
                            "signature": signature,
                            "delays": (previous[0], decision.delay),
                            "seeds": (previous[1], seed),
                        }
                    )
                else:
                    seen[signature] = (decision.delay, seed)
    return collisions


def _collision_evidence(
    causes: dict[str, CauseHypothesis],
    notes: list[str],
    config,
    seeds: Sequence[int],
    queue_resolution_bits: Optional[float],
) -> None:
    collision = causes[CAUSE_SIGNATURE_COLLISION]
    found = scan_signature_collisions(config, seeds, queue_resolution_bits)
    if found:
        sample = found[0]
        collision.support(
            f"{len(found)} signature collision(s) across {len(seeds)} seeds; "
            f"e.g. delays {sample['delays']} share one signature",
            "collision-scan",
            0.85,
        )
        notes.append(f"signature collisions observed: {len(found)}")
    else:
        collision.refute(
            f"no signature collisions across {len(seeds)} seeded replays",
            "collision-scan",
            0.5,
        )


# --------------------------------------------------------------------- triage


def triage(
    records: Optional[Mapping[str, BenchRecord]] = None,
    baselines: Optional[Mapping[str, BenchRecord]] = None,
    max_regression: float = 0.25,
    cache_dir: Optional[str | Path] = None,
    cache_counters: Optional[Mapping[str, int]] = None,
    fuzz_seeds: Sequence[int] = (),
    collision_seeds: Sequence[int] = (),
    collision_config=None,
    collision_resolution_bits: Optional[float] = None,
) -> TriageReport:
    """Collect every available evidence source and rank the four causes.

    All probes are optional — pass only the evidence you have.  With no
    evidence at all the report simply returns the priors.
    """
    causes = make_causes()
    notes: list[str] = []
    if records:
        _bench_evidence(causes, notes, records, baselines or {}, max_regression)
    if cache_dir is not None or cache_counters is not None:
        _cache_evidence(
            causes,
            notes,
            Path(cache_dir) if cache_dir is not None else None,
            cache_counters,
        )
    divergence = None
    if fuzz_seeds:
        divergence = _differential_evidence(causes, notes, fuzz_seeds)
    if collision_seeds:
        _collision_evidence(
            causes,
            notes,
            collision_config if collision_config is not None else backend_config(),
            collision_seeds,
            collision_resolution_bits,
        )
    ranked = BayesianScorer().score(list(causes.values()))
    return TriageReport(causes=ranked, notes=notes, divergence=divergence)
