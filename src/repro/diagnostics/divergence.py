"""Bisect two backend replays to the first diverging kernel stage.

Both belief backends emit per-stage checkpoints through
``BeliefState.stage_hook`` (``fork`` → ``advance`` → ``score`` →
``compact`` → ``prune`` → ``posterior``) and both rollout engines through
``ExpectedUtilityPlanner.decision_probe`` (``summary`` → ``lanes`` →
``rollout`` → ``utility`` → ``decision``), in the same order with
comparable payloads.  :func:`replay_trace` drives one
:class:`~repro.api.config.SenderConfig` through a seeded event script while
recording those checkpoints; :func:`compare_traces` walks two recordings in
lockstep to the first event and stage whose payloads differ beyond the
equivalence tolerance; :func:`diagnose_divergence` wraps both, re-replays
with canonically ordered acknowledgements to separate event-ordering
sensitivity from genuine kernel drift, and ranks candidate causes with the
:class:`~repro.diagnostics.evidence.BayesianScorer`.

:func:`inject_stage_perturbation` deliberately skews one NumPy-engine stage
(vectorized and fused alike) — the test harness (and the CLI's
``--perturb``) uses it to check that the fingerprinter localizes a known
fault to the right stage.
"""

from __future__ import annotations

import contextlib
import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.api.config import SenderConfig
from repro.diagnostics.evidence import BayesianScorer, CauseHypothesis
from repro.inference import AckObservation, figure3_prior
from repro.units import DEFAULT_PACKET_BITS

__all__ = [
    "INJECTABLE_STAGES",
    "Divergence",
    "DivergenceReport",
    "EventTrace",
    "backend_config",
    "compare_traces",
    "diagnose_divergence",
    "inject_stage_perturbation",
    "replay_trace",
    "seeded_events",
]

#: Kernel stages of one belief update, in emission order.
KERNEL_STAGES = ("fork", "advance", "score", "compact", "prune", "posterior")

#: Stages of one planner decision, in emission order.
DECISION_STAGES = ("summary", "lanes", "rollout", "utility", "decision")

#: Stage comparison order per event kind.
_STAGE_ORDER = {
    "send": ("send",),
    "update": KERNEL_STAGES,
    "decide": DECISION_STAGES,
}

#: Human naming of each stage, used in cause-hypothesis labels.
_STAGE_LABEL = {
    "send": "kernel stage 'send' (record_send / advance-to-send)",
    "fork": "kernel stage 'fork' (gate branching)",
    "advance": "kernel stage 'advance' (forward simulation)",
    "score": "kernel stage 'score' (likelihood)",
    "compact": "kernel stage 'compact' (signature merging)",
    "prune": "kernel stage 'prune' (threshold + cap)",
    "posterior": "kernel stage 'posterior' (normalization)",
    "summary": "rollout frontier stage 'summary' (top-k aggregates)",
    "lanes": "rollout frontier stage 'lanes' (lane packing)",
    "rollout": "rollout frontier stage 'rollout' (event frontier)",
    "utility": "rollout frontier stage 'utility' (lane valuation)",
    "decision": "rollout frontier stage 'decision' (argmax)",
}

#: Stages :func:`inject_stage_perturbation` can skew (vectorized side).
INJECTABLE_STAGES = ("fork", "advance", "score", "compact", "prune", "rollout")


# ------------------------------------------------------------------ scenarios


def backend_config(
    belief_backend: str = "scalar",
    rollout_backend: str = "scalar",
    max_hypotheses: int = 48,
    top_k: int = 8,
) -> SenderConfig:
    """A small, fully featured config for differential replays.

    The prior matches the differential fuzz suite's: few enough grid points
    to replay fast, but with forking, loss, and buffer uncertainty so every
    kernel stage does real work.
    """
    return SenderConfig(
        prior=figure3_prior(
            link_rate_points=2,
            cross_fraction_points=2,
            loss_points=2,
            buffer_points=2,
            fill_points=2,
        ),
        kernel_scale=0.5,
        max_hypotheses=max_hypotheses,
        top_k=top_k,
        belief_backend=belief_backend,
        rollout_backend=rollout_backend,
    )


def seeded_events(seed: int, packet_bits: float = DEFAULT_PACKET_BITS) -> list:
    """A reproducible send/update/decide script derived entirely from ``seed``.

    Same construction as the differential fuzz suite's generator — time only
    moves forward, every ack references a real outstanding send within its
    plausible window, no sequence number is acknowledged twice — extended
    with a ``decide`` event after every update so rollout-stage checkpoints
    are exercised too.
    """
    rng = random.Random(seed)
    events: list[tuple[str, tuple]] = []
    now = 0.0
    seq = 0
    outstanding: list[tuple[int, float]] = []
    for _ in range(rng.randint(4, 8)):
        if rng.random() < 0.55:
            events.append(("send", (seq, packet_bits, now)))
            outstanding.append((seq, now))
            seq += 1
            now += rng.uniform(0.05, 0.9)
        else:
            now += rng.uniform(0.3, 6.0)  # occasionally long: loss charging
            acks = []
            for entry in list(outstanding):
                if rng.random() < 0.6:
                    sent_seq, sent_at = entry
                    at = min(now, sent_at + rng.uniform(0.2, 2.5))
                    acks.append(AckObservation(seq=sent_seq, received_at=at, ack_at=at))
                    outstanding.remove(entry)
            rng.shuffle(acks)  # update order must not matter
            events.append(("update", (now, acks)))
            events.append(("decide", (now,)))
    now += rng.uniform(0.5, 2.0)
    events.append(("update", (now, [])))
    events.append(("decide", (now,)))
    return events


def canonical_event_order(events: Sequence) -> list:
    """``events`` with every update's acknowledgements sorted canonically.

    If a divergence disappears under this reordering, the backends disagree
    only on *event ordering* within an update, not on any kernel stage.
    """
    reordered = []
    for kind, args in events:
        if kind == "update":
            now, acks = args
            acks = sorted(acks, key=lambda ack: (ack.seq, ack.received_at))
            reordered.append((kind, (now, acks)))
        else:
            reordered.append((kind, args))
    return reordered


# --------------------------------------------------------------------- replay


@dataclass
class EventTrace:
    """The stage checkpoints one event produced during a replay."""

    kind: str
    stages: dict = field(default_factory=dict)


def _belief_snapshot(belief) -> dict:
    """A backend-agnostic checkpoint of the full posterior."""
    state = getattr(belief, "state", None)
    if state is not None:
        snapshot = state.checkpoint()
    else:
        hypotheses = belief.hypotheses
        snapshot = {
            "time": hypotheses[0].model.export_state()["time"],
            "size": len(hypotheses),
            "signatures": [hypothesis.signature() for hypothesis in hypotheses],
        }
    snapshot["weights"] = belief.weights
    return snapshot


def replay_trace(config: SenderConfig, events: Sequence) -> list[EventTrace]:
    """Drive ``config``'s belief + planner through ``events``, checkpointing.

    Returns one :class:`EventTrace` per event.  ``send`` events checkpoint
    the post-send posterior; ``update`` events record the kernel stages the
    belief's ``stage_hook`` emits; ``decide`` events record the rollout
    stages the planner's ``decision_probe`` emits.
    """
    belief = config.build_belief()
    planner = config.build_planner()
    current: dict = {}

    def hook(stage: str, payload) -> None:
        current[stage] = payload

    belief.stage_hook = hook
    planner.decision_probe = hook

    trace: list[EventTrace] = []
    for kind, args in events:
        current = {}
        if kind == "send":
            belief.record_send(*args)
            current["send"] = _belief_snapshot(belief)
        elif kind == "update":
            belief.update(*args)
        elif kind == "decide":
            planner.decide(belief, args[0])
        else:
            raise ValueError(f"unknown event kind {kind!r}")
        trace.append(EventTrace(kind=kind, stages=current))
    return trace


# ----------------------------------------------------------------- comparison


def _floats_close(a: float, b: float, tolerance: float) -> bool:
    if a == b:
        return True
    if math.isnan(a) and math.isnan(b):
        return True
    return abs(a - b) <= max(tolerance, tolerance * max(abs(a), abs(b)))


def _first_diff(a, b, tolerance: float, path: str = "") -> Optional[tuple[str, object, object]]:
    """The path and values of the first difference, or ``None`` if equal.

    Numbers compare with absolute+relative ``tolerance`` (the documented
    backend equivalence bound); containers recurse in deterministic order;
    tuples and lists are interchangeable (backends build one or the other).
    """
    number_a = isinstance(a, (int, float)) and not isinstance(a, bool)
    number_b = isinstance(b, (int, float)) and not isinstance(b, bool)
    if number_a and number_b:
        if not _floats_close(float(a), float(b), tolerance):
            return (path or "value", a, b)
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return (f"{path}.length", len(a), len(b))
        for index, (x, y) in enumerate(zip(a, b)):
            diff = _first_diff(x, y, tolerance, f"{path}[{index}]")
            if diff is not None:
                return diff
        return None
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return (f"{path}.keys", sorted(map(str, a)), sorted(map(str, b)))
        for key in a:
            diff = _first_diff(a[key], b[key], tolerance, f"{path}.{key}")
            if diff is not None:
                return diff
        return None
    if isinstance(a, (set, frozenset)) and isinstance(b, (set, frozenset)):
        if a != b:
            return (path or "value", sorted(a), sorted(b))
        return None
    if a != b:
        return (path or "value", a, b)
    return None


def _differing_rows(payload_a, payload_b, tolerance: float) -> list[int]:
    """Indices of per-row/per-lane list elements that differ.

    Stage payloads are dicts whose list-valued entries are aligned per
    hypothesis row or rollout lane, so element indices localize a
    divergence to specific rows.
    """
    rows: set[int] = set()
    if isinstance(payload_a, dict) and isinstance(payload_b, dict):
        for key in set(payload_a) & set(payload_b):
            value_a, value_b = payload_a[key], payload_b[key]
            if (
                isinstance(value_a, (list, tuple))
                and isinstance(value_b, (list, tuple))
                and len(value_a) == len(value_b)
            ):
                for index, (x, y) in enumerate(zip(value_a, value_b)):
                    if _first_diff(x, y, tolerance) is not None:
                        rows.add(index)
    return sorted(rows)


@dataclass
class Divergence:
    """The first point where two backend replays disagree."""

    event_index: int
    event_kind: str
    stage: str
    path: str
    value_a: object
    value_b: object
    rows: list[int] = field(default_factory=list)

    @property
    def detail(self) -> str:
        return (
            f"event {self.event_index} ({self.event_kind}), stage {self.stage!r}, "
            f"at {self.path or 'payload'}: {self.value_a!r} vs {self.value_b!r}"
        )


def compare_traces(
    trace_a: Sequence[EventTrace],
    trace_b: Sequence[EventTrace],
    tolerance: float = 1e-9,
) -> Optional[Divergence]:
    """Bisect two replays to their first diverging event and stage."""
    for index, (event_a, event_b) in enumerate(zip(trace_a, trace_b)):
        if event_a.kind != event_b.kind:
            raise ValueError(
                f"traces replay different scripts: event {index} is "
                f"{event_a.kind!r} vs {event_b.kind!r}"
            )
        order = _STAGE_ORDER.get(event_a.kind, ())
        seen = [stage for stage in order if stage in event_a.stages or stage in event_b.stages]
        for stage in seen:
            if stage not in event_a.stages or stage not in event_b.stages:
                return Divergence(
                    event_index=index,
                    event_kind=event_a.kind,
                    stage=stage,
                    path="presence",
                    value_a=stage in event_a.stages,
                    value_b=stage in event_b.stages,
                )
            diff = _first_diff(event_a.stages[stage], event_b.stages[stage], tolerance)
            if diff is not None:
                path, value_a, value_b = diff
                return Divergence(
                    event_index=index,
                    event_kind=event_a.kind,
                    stage=stage,
                    path=path,
                    value_a=value_a,
                    value_b=value_b,
                    rows=_differing_rows(
                        event_a.stages[stage], event_b.stages[stage], tolerance
                    ),
                )
    if len(trace_a) != len(trace_b):
        raise ValueError(
            f"traces replay different scripts: {len(trace_a)} vs {len(trace_b)} events"
        )
    return None


# ---------------------------------------------------------------- attribution


@dataclass
class DivergenceReport:
    """Where two backend configurations first disagree, and the likely why."""

    backend_a: str
    backend_b: str
    seed: Optional[int]
    diverged: bool
    divergence: Optional[Divergence]
    order_sensitive: bool
    causes: list[CauseHypothesis]

    @property
    def top_cause(self) -> CauseHypothesis:
        return self.causes[0]

    def render(self) -> str:
        lines = [f"divergence report: {self.backend_a} vs {self.backend_b}"]
        if self.seed is not None:
            lines[0] += f" (seed {self.seed})"
        if not self.diverged:
            lines.append("  replays agree at every checkpointed stage")
        else:
            assert self.divergence is not None
            lines.append(f"  first divergence: {self.divergence.detail}")
            if self.divergence.rows:
                lines.append(
                    f"  implicated hypothesis rows / lanes: {self.divergence.rows}"
                )
            if self.order_sensitive:
                lines.append(
                    "  canonically ordered acks remove the divergence "
                    "(event-ordering sensitivity)"
                )
        lines.append("  ranked causes:")
        for rank, cause in enumerate(self.causes, start=1):
            lines.append(
                f"    {rank}. {cause.name}  p={cause.posterior:.2f} "
                f"(prior {cause.prior:.2f})"
            )
            for evidence in cause.evidence_for:
                lines.append(f"       + [{evidence.source}] {evidence.description}")
            for evidence in cause.evidence_against:
                lines.append(f"       - [{evidence.source}] {evidence.description}")
        return "\n".join(lines)


def _attribute(
    divergence: Optional[Divergence], order_sensitive: bool
) -> list[CauseHypothesis]:
    """Rank candidate causes for (the absence of) a divergence."""
    stage_causes = {
        stage: CauseHypothesis(
            name=f"backend drift in {label}",
            description=f"the two engines disagree at the {label}",
            prior=0.2,
        )
        for stage, label in _STAGE_LABEL.items()
    }
    ordering = CauseHypothesis(
        name="event-ordering sensitivity",
        description="the backends apply simultaneous observations in different orders",
        prior=0.15,
    )
    noise = CauseHypothesis(
        name="no backend divergence (environment noise elsewhere)",
        description="the replays agree; any reported regression is environmental",
        prior=0.2,
    )
    if divergence is None:
        noise.support("replays matched at every checkpointed stage", "divergence", 0.9)
        ordering.refute("no divergence to be order-sensitive about", "divergence", 0.7)
        for cause in stage_causes.values():
            cause.refute("no stage checkpoint differed", "divergence", 0.7)
    else:
        noise.refute(divergence.detail, "divergence", 0.9)
        hit = stage_causes[divergence.stage]
        hit.support(f"first divergence: {divergence.detail}", "divergence", 0.9)
        if divergence.rows:
            hit.support(
                f"isolated to hypothesis rows / lanes {divergence.rows}",
                "divergence",
                0.6,
            )
        for stage, cause in stage_causes.items():
            if stage != divergence.stage:
                cause.refute(
                    "checkpoints matched up to the first divergence",
                    "divergence",
                    0.6,
                )
        if order_sensitive:
            ordering.support(
                "divergence disappears under canonical ack ordering",
                "divergence",
                0.95,
            )
            hit.refute(
                "divergence disappears under canonical ack ordering",
                "divergence",
                0.6,
            )
        else:
            ordering.refute(
                "divergence persists under canonical ack ordering",
                "divergence",
                0.8,
            )
    return BayesianScorer().score([*stage_causes.values(), ordering, noise])


def _describe_backends(config: SenderConfig) -> str:
    return f"belief={config.belief_backend}/rollout={config.rollout_backend}"


def diagnose_divergence(
    config_a: SenderConfig,
    config_b: SenderConfig,
    seed: Optional[int] = 0,
    events: Optional[Sequence] = None,
    tolerance: float = 1e-9,
) -> DivergenceReport:
    """Replay both configs through one script and attribute the first drift.

    ``events`` defaults to :func:`seeded_events(seed) <seeded_events>`.
    When the replays diverge, a second pair of replays with canonically
    ordered acknowledgements separates event-ordering sensitivity from
    genuine kernel-stage drift.
    """
    if events is None:
        if seed is None:
            raise ValueError("diagnose_divergence needs a seed or explicit events")
        events = seeded_events(seed)
    trace_a = replay_trace(config_a, events)
    trace_b = replay_trace(config_b, events)
    divergence = compare_traces(trace_a, trace_b, tolerance)
    order_sensitive = False
    if divergence is not None:
        reordered = canonical_event_order(events)
        order_sensitive = (
            compare_traces(
                replay_trace(config_a, reordered),
                replay_trace(config_b, reordered),
                tolerance,
            )
            is None
        )
    return DivergenceReport(
        backend_a=_describe_backends(config_a),
        backend_b=_describe_backends(config_b),
        seed=seed,
        diverged=divergence is not None,
        divergence=divergence,
        order_sensitive=order_sensitive,
        causes=_attribute(divergence, order_sensitive),
    )


# ------------------------------------------------------------------ injection


@contextlib.contextmanager
def inject_stage_perturbation(stage: str, epsilon: float = 1.0):
    """Deliberately skew one *vectorized/fused* kernel/rollout stage.

    The test harness (and the CLI's ``--perturb``) wraps a differential
    replay in this context to verify the fingerprinter localizes a known
    fault to ``stage``.  Only the NumPy engines are touched — both the
    ``"vectorized"`` and ``"fused"`` backends, which share most stages and
    override the rest — so a scalar-vs-vectorized (or scalar-vs-fused)
    diagnosis sees the skew as backend drift at exactly that stage:

    * ``fork`` — scales sub-unity branch probabilities by ``1 + epsilon``;
    * ``advance`` — adds ``epsilon`` bits to every branch's queued bits;
    * ``score`` — subtracts ``epsilon`` from every finite log-likelihood;
    * ``compact`` — disables signature merging entirely (both the
      vectorized dict loop and the fused ``np.unique`` override);
    * ``prune`` — drops one extra (lightest) surviving row;
    * ``rollout`` — shifts every own-packet delivery ``epsilon`` s later,
      in all three frontier entry points (``batched_rollout``, the fused
      ``batched_rollout_rows``, and the pooled ``batched_rollout_blocks``).
    """
    import numpy as np

    from repro.inference.vectorized import belief as vectorized_belief
    from repro.inference.vectorized import engine as vectorized_engine
    from repro.inference.vectorized import fused as vectorized_fused
    from repro.inference.vectorized import rollout as vectorized_rollout
    from repro.inference.vectorized.belief import VectorizedBeliefState
    from repro.inference.vectorized.fused import FusedBeliefState

    restores: list[tuple[object, str, object]] = []

    def patch(target, name: str, replacement) -> None:
        restores.append((target, name, getattr(target, name)))
        setattr(target, name, replacement)

    if stage == "fork":
        original_fork = vectorized_engine.fork_and_advance

        def perturbed_fork(state, now):
            branch_state, parent, probability = original_fork(state, now)
            probability = np.where(
                probability < 1.0, probability * (1.0 + epsilon), probability
            )
            return branch_state, parent, probability

        patch(vectorized_engine, "fork_and_advance", perturbed_fork)
    elif stage == "advance":
        original_advance = vectorized_engine.fork_and_advance

        def perturbed_advance(state, now):
            branch_state, parent, probability = original_advance(state, now)
            branch_state.queue_bits = branch_state.queue_bits + epsilon
            return branch_state, parent, probability

        patch(vectorized_engine, "fork_and_advance", perturbed_advance)
    elif stage == "score":
        original_score = vectorized_belief.score_and_bookkeep

        def perturbed_score(*args, **kwargs):
            result = original_score(*args, **kwargs)
            return result - np.where(np.isfinite(result), epsilon, 0.0)

        patch(vectorized_belief, "score_and_bookkeep", perturbed_score)
    elif stage == "compact":

        def perturbed_compact(self, state, rows, weights):
            return rows, weights

        patch(VectorizedBeliefState, "_compact_rows", perturbed_compact)
        # The fused backend overrides _compact_rows, so patching the base
        # class alone would leave it unperturbed.
        patch(FusedBeliefState, "_compact_rows", perturbed_compact)
    elif stage == "prune":
        original_prune = VectorizedBeliefState._prune_rows

        def perturbed_prune(self, rows, weights):
            rows, weights = original_prune(self, rows, weights)
            if rows.size > 1:
                return rows[:-1], weights[:-1]
            return rows, weights

        patch(VectorizedBeliefState, "_prune_rows", perturbed_prune)
    elif stage == "rollout":
        original_rollout = vectorized_rollout.batched_rollout

        def perturbed_rollout(*args, **kwargs):
            outcome = original_rollout(*args, **kwargs)
            outcome.own_time = outcome.own_time + epsilon
            return outcome

        patch(vectorized_rollout, "batched_rollout", perturbed_rollout)
        original_rollout_rows = vectorized_rollout.batched_rollout_rows

        def perturbed_rollout_rows(*args, **kwargs):
            outcome = original_rollout_rows(*args, **kwargs)
            outcome.own_time = outcome.own_time + epsilon
            return outcome

        patch(vectorized_rollout, "batched_rollout_rows", perturbed_rollout_rows)
        # decide_fused calls the name it imported at module load, not the
        # rollout module's attribute — patch its reference too.
        patch(vectorized_fused, "batched_rollout_rows", perturbed_rollout_rows)
        original_rollout_blocks = vectorized_rollout.batched_rollout_blocks

        def perturbed_rollout_blocks(*args, **kwargs):
            outcomes = original_rollout_blocks(*args, **kwargs)
            for outcome in outcomes:
                outcome.own_time = outcome.own_time + epsilon
            return outcomes

        patch(vectorized_rollout, "batched_rollout_blocks", perturbed_rollout_blocks)
    else:
        raise ValueError(
            f"unknown stage {stage!r}; injectable stages are {INJECTABLE_STAGES}"
        )
    try:
        yield
    finally:
        for target, name, original in reversed(restores):
            setattr(target, name, original)
