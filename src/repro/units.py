"""Unit helpers and shared physical constants.

All internal quantities use SI-style base units:

* time is measured in **seconds** (floating point),
* data sizes in **bits**,
* rates in **bits per second**.

The helpers below exist so call sites can say ``kilobits(96)`` or
``from_ms(250)`` instead of sprinkling magic conversion factors around.
"""

from __future__ import annotations

#: Number of bits in one byte.
BITS_PER_BYTE = 8

#: Conventional Ethernet-style payload size used throughout the paper (1,500 bytes).
DEFAULT_PACKET_BYTES = 1500

#: The same default packet size expressed in bits (12,000 bits).
DEFAULT_PACKET_BITS = DEFAULT_PACKET_BYTES * BITS_PER_BYTE

#: Number of milliseconds in one second.
MS_PER_SECOND = 1000.0


def bytes_to_bits(num_bytes: float) -> float:
    """Convert a size in bytes to bits."""
    return num_bytes * BITS_PER_BYTE


def bits_to_bytes(num_bits: float) -> float:
    """Convert a size in bits to bytes."""
    return num_bits / BITS_PER_BYTE


def kilobits(value: float) -> float:
    """Return ``value`` kilobits expressed in bits."""
    return value * 1_000.0


def megabits(value: float) -> float:
    """Return ``value`` megabits expressed in bits."""
    return value * 1_000_000.0


def kbps(value: float) -> float:
    """Return ``value`` kilobits per second expressed in bits per second."""
    return value * 1_000.0


def mbps(value: float) -> float:
    """Return ``value`` megabits per second expressed in bits per second."""
    return value * 1_000_000.0


def from_ms(milliseconds: float) -> float:
    """Convert a duration in milliseconds to seconds."""
    return milliseconds / MS_PER_SECOND


def to_ms(seconds: float) -> float:
    """Convert a duration in seconds to milliseconds."""
    return seconds * MS_PER_SECOND


def transmission_time(size_bits: float, rate_bps: float) -> float:
    """Time in seconds to serialize ``size_bits`` onto a ``rate_bps`` link.

    Raises
    ------
    ValueError
        If the rate is not strictly positive.
    """
    if rate_bps <= 0:
        raise ValueError(f"link rate must be positive, got {rate_bps!r}")
    return size_bits / rate_bps


def packets_to_bits(num_packets: float, packet_bytes: int = DEFAULT_PACKET_BYTES) -> float:
    """Convert a packet count to bits assuming ``packet_bytes`` sized packets."""
    return num_packets * packet_bytes * BITS_PER_BYTE
