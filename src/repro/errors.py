"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching unrelated Python
errors.  Sub-classes exist for the major subsystems (simulation wiring,
simulation execution, inference, experiment configuration) so tests and
applications can assert on the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class WiringError(ReproError):
    """An element graph is mis-wired (missing downstream, double attach, ...)."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly or reached a bad state."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or with an invalid delay."""


class InferenceError(ReproError):
    """The belief state or a hypothesis was used incorrectly."""


class DegenerateBeliefError(InferenceError):
    """Every hypothesis was rejected: the prior cannot explain the data."""


class ConfigurationError(ReproError):
    """An experiment, prior, or utility function received invalid parameters."""


class UnknownBackendError(ConfigurationError, InferenceError):
    """A ``belief_backend`` / ``rollout_backend`` name is not registered.

    Raised eagerly at :class:`~repro.api.config.SenderConfig` construction
    (and by :meth:`~repro.api.backends.BackendRegistry.resolve`) with the
    list of registered names.  Derives from both
    :class:`ConfigurationError` and :class:`InferenceError` so callers that
    guarded the old entry points (``ExpectedUtilityPlanner`` raised the
    former, ``BeliefState.for_backend`` the latter) keep working.
    """


class UtilityError(ReproError):
    """A utility function received invalid parameters or inputs."""


class ServingError(ReproError):
    """Base class for failures in the online policy-serving layer."""


class TableIntegrityError(ServingError):
    """A stored policy-table artifact failed load-time validation.

    Raised by the serving registry when a table file's content digest,
    schema version, or config fingerprint does not match what its name and
    the request promise.  The registry catches it, quarantines the file
    (same convention as :class:`~repro.runner.cache.ResultCache`), and
    treats the lookup as a miss — a corrupt artifact is never served.
    """


class CircuitOpenError(ServingError):
    """The live-planner fallback is short-circuited by an open breaker.

    Raised internally by :class:`~repro.serving.breaker.CircuitBreaker`
    guards when consecutive planner failures have tripped the circuit; the
    serving fallback chain catches it and degrades to the safe-default
    tier instead of queueing more work behind a wedged planner.
    """


class OverloadedError(ServingError):
    """The server shed this request under admission control.

    Only raised client-side, and only when a
    :class:`~repro.serving.server.PolicyClient` was constructed with
    ``raise_on_overload=True``; the wire response itself still carries the
    safe-default decision, so lenient callers always get an answer.
    """


class PointFailureError(ReproError):
    """A supervised sweep point exhausted its retries under ``strict`` mode.

    Raised by the runner's supervised execution path when a grid point
    keeps failing past ``Supervision.max_retries`` and the sweep was asked
    to fail fast rather than quarantine the point and degrade to partial
    results.  Carries the failing spec and the final failure description.
    """

    def __init__(self, spec: object, attempts: int, reason: str) -> None:
        super().__init__(
            f"point {getattr(spec, 'label', spec)!s} failed {attempts} attempt(s): {reason}"
        )
        self.spec = spec
        self.attempts = attempts
        self.reason = reason
