"""Parsers that turn on-disk trace files into :class:`LinkTrace` artifacts.

Two input formats are accepted:

``mahimahi``
    The mahimahi ``--uplink-log``/trace convention: one integer millisecond
    timestamp per line, each marking the delivery opportunity of one
    MTU-sized packet.  The parser bins opportunities into fixed windows and
    converts counts to bits/s, flooring empty windows at a small positive
    rate (a ``LinkTrace`` rate must be positive; a true outage is modeled
    as a near-zero rate, which stalls a simulated link just the same).

``samples``
    The repository's native ``(time, rate)`` form: two columns per line
    (whitespace- or comma-separated), seconds and bits/s.  ``#`` comments
    and blank lines are ignored.

``load_trace_path`` auto-detects between them: a file whose data lines are
all single integers is a mahimahi trace; anything with two columns is a
sample file.
"""

from __future__ import annotations

from pathlib import Path

from repro.corpus.trace import LinkTrace
from repro.errors import ConfigurationError
from repro.units import DEFAULT_PACKET_BITS

__all__ = [
    "load_trace_path",
    "parse_mahimahi_text",
    "parse_samples_text",
]

#: Default bin width for mahimahi ingestion, in milliseconds.  100 ms is
#: wide enough that a saturated cellular trace has many packets per bin
#: (smooth rates) and narrow enough to keep sub-second capacity swings.
DEFAULT_BIN_MS = 100

#: Rate assigned to a bin with zero delivery opportunities.  Positive by
#: the LinkTrace invariant; 1 kbit/s serves one packet in ~12 s, which is
#: an outage at simulation timescales.
OUTAGE_FLOOR_BPS = 1000.0


def _data_lines(text: str) -> list[tuple[int, str]]:
    """Non-blank, non-comment lines with their 1-based line numbers."""
    out = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            out.append((number, line))
    return out


def parse_samples_text(text: str, name: str = "", source: str = "samples") -> LinkTrace:
    """Parse native ``time rate`` (or ``time,rate``) sample text."""
    times: list[float] = []
    rates: list[float] = []
    for number, line in _data_lines(text):
        parts = line.replace(",", " ").split()
        if len(parts) != 2:
            raise ConfigurationError(
                f"line {number}: expected 'time rate', got {line!r}"
            )
        try:
            times.append(float(parts[0]))
            rates.append(float(parts[1]))
        except ValueError as exc:
            raise ConfigurationError(f"line {number}: {exc}") from exc
    if not times:
        raise ConfigurationError("sample file contains no data lines")
    return LinkTrace(times=times, rates=rates, name=name, source=source)


def parse_mahimahi_text(
    text: str,
    name: str = "",
    source: str = "mahimahi",
    packet_bits: int = DEFAULT_PACKET_BITS,
    bin_ms: int = DEFAULT_BIN_MS,
    min_rate_bps: float = OUTAGE_FLOOR_BPS,
) -> LinkTrace:
    """Parse a mahimahi packet-delivery trace (one ms timestamp per line).

    Timestamps need not be unique (several packets can be delivered in the
    same millisecond) but must be non-decreasing, matching the files
    mahimahi itself accepts.
    """
    if bin_ms <= 0:
        raise ConfigurationError("bin_ms must be positive")
    if packet_bits <= 0:
        raise ConfigurationError("packet_bits must be positive")
    if min_rate_bps <= 0:
        raise ConfigurationError("min_rate_bps must be positive")
    stamps: list[int] = []
    for number, line in _data_lines(text):
        try:
            stamp = int(line)
        except ValueError as exc:
            raise ConfigurationError(
                f"line {number}: expected an integer millisecond timestamp, "
                f"got {line!r}"
            ) from exc
        if stamp < 0:
            raise ConfigurationError(f"line {number}: negative timestamp {stamp}")
        if stamps and stamp < stamps[-1]:
            raise ConfigurationError(
                f"line {number}: timestamp {stamp} precedes {stamps[-1]} "
                "(mahimahi traces are non-decreasing)"
            )
        stamps.append(stamp)
    if not stamps:
        raise ConfigurationError("mahimahi trace contains no data lines")

    bin_count = stamps[-1] // bin_ms + 1
    counts = [0] * bin_count
    for stamp in stamps:
        counts[stamp // bin_ms] += 1
    bin_s = bin_ms / 1000.0
    times = [index * bin_s for index in range(bin_count)]
    rates = [
        max(count * packet_bits / bin_s, min_rate_bps) for count in counts
    ]
    return LinkTrace(
        times=times,
        rates=rates,
        duration=bin_count * bin_s,
        name=name,
        source=source,
    )


def load_trace_path(
    path: str | Path,
    fmt: str = "auto",
    name: str = "",
    packet_bits: int = DEFAULT_PACKET_BITS,
    bin_ms: int = DEFAULT_BIN_MS,
) -> LinkTrace:
    """Load a trace file, auto-detecting its format unless ``fmt`` pins it.

    ``fmt`` is one of ``auto``, ``mahimahi``, ``samples``.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path}: {exc}") from exc
    if fmt == "auto":
        lines = _data_lines(text)
        if not lines:
            raise ConfigurationError(f"{path} contains no data lines")
        fmt = (
            "mahimahi"
            if all(_is_integer(line) for _, line in lines)
            else "samples"
        )
    trace_name = name or path.stem
    if fmt == "mahimahi":
        return parse_mahimahi_text(
            text,
            name=trace_name,
            source=str(path),
            packet_bits=packet_bits,
            bin_ms=bin_ms,
        )
    if fmt == "samples":
        return parse_samples_text(text, name=trace_name, source=str(path))
    raise ConfigurationError(
        f"unknown trace format {fmt!r} (expected auto, mahimahi, or samples)"
    )


def _is_integer(token: str) -> bool:
    try:
        int(token)
    except ValueError:
        return False
    return True
