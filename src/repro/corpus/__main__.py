"""Command-line management of the trace corpus.

::

    python -m repro.corpus ingest traces/verizon.pps --name verizon_lte
    python -m repro.corpus generate markov_onoff --name flaky \
        --seed 3 --set mean_off_s=4.0
    python -m repro.corpus list
    python -m repro.corpus describe verizon_lte

The corpus root defaults to ``<cache-dir>/corpus`` (``$REPRO_CACHE_DIR``
or the packaged default), overridable with ``--corpus-dir`` — the same
directory the ``corpus_trace`` / ``many_flow_contention`` scenarios read.
Exit codes: 0 success, 2 configuration error.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Sequence

from repro.corpus.generators import GENERATOR_FAMILIES
from repro.corpus.ingest import DEFAULT_BIN_MS
from repro.corpus.store import open_corpus_store
from repro.errors import ConfigurationError
from repro.units import DEFAULT_PACKET_BITS


def _parse_value(text: str) -> Any:
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for kind in (int, float):
        try:
            return kind(text)
        except ValueError:
            continue
    return text


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.corpus",
        description="Manage the trace corpus: ingest files, generate synthetic workloads.",
    )
    parser.add_argument(
        "--corpus-dir",
        default=None,
        metavar="PATH",
        help="corpus root (default: <cache-dir>/corpus)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    ingest = commands.add_parser(
        "ingest", help="parse a trace file and register it in the corpus"
    )
    ingest.add_argument("path", help="trace file (mahimahi ms-timestamps or 'time rate' samples)")
    ingest.add_argument("--name", default="", help="entry name (default: file stem)")
    ingest.add_argument(
        "--format",
        dest="fmt",
        choices=("auto", "mahimahi", "samples"),
        default="auto",
        help="input format (default: auto-detect)",
    )
    ingest.add_argument(
        "--packet-bits",
        type=int,
        default=DEFAULT_PACKET_BITS,
        help=f"bits per delivery opportunity for mahimahi input (default {DEFAULT_PACKET_BITS})",
    )
    ingest.add_argument(
        "--bin-ms",
        type=int,
        default=DEFAULT_BIN_MS,
        help=f"rate-estimation bin width for mahimahi input (default {DEFAULT_BIN_MS} ms)",
    )

    commands.add_parser("list", help="list corpus entries")

    describe = commands.add_parser("describe", help="print one entry's manifest record")
    describe.add_argument("name", help="corpus entry name")

    generate = commands.add_parser(
        "generate", help="materialize a synthetic generator family into the corpus"
    )
    generate.add_argument(
        "family",
        choices=tuple(sorted(GENERATOR_FAMILIES)),
        help="generator family",
    )
    generate.add_argument("--name", required=True, help="corpus entry name")
    generate.add_argument("--seed", type=int, default=0, help="build seed (default 0)")
    generate.add_argument(
        "--set",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override one family parameter (repeatable)",
    )
    return parser


def _cmd_ingest(args: argparse.Namespace) -> int:
    store = open_corpus_store(args.corpus_dir)
    entry = store.ingest(
        args.path,
        name=args.name,
        fmt=args.fmt,
        packet_bits=args.packet_bits,
        bin_ms=args.bin_ms,
    )
    name = args.name or entry["source"].rsplit("/", 1)[-1].rsplit(".", 1)[0]
    print(f"ingested {name}: digest={entry['digest']}")
    _print_entry(entry)
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    store = open_corpus_store(args.corpus_dir)
    names = store.names()
    if not names:
        print(f"corpus at {store.root} is empty")
        return 0
    print(f"corpus: {store.root}")
    for name in names:
        entry = store.describe(name)
        kind = entry.get("kind", "trace")
        print(
            f"{name:24s} {kind:9s} {entry['samples']:6d} samples "
            f"{entry['duration_s']:8.1f}s  mean {entry['mean_rate_bps'] / 1e6:7.3f} Mbps  "
            f"digest {str(entry['digest'])[:12]}"
        )
    return 0


def _print_entry(entry: dict) -> None:
    for key in sorted(entry):
        print(f"  {key}: {entry[key]}")


def _cmd_describe(args: argparse.Namespace) -> int:
    store = open_corpus_store(args.corpus_dir)
    entry = store.describe(args.name)
    print(f"{args.name}:")
    _print_entry(entry)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    params: dict[str, Any] = {}
    for assignment in args.params:
        if "=" not in assignment:
            raise ConfigurationError(f"expected key=value, got {assignment!r}")
        key, _, value = assignment.partition("=")
        params[key.strip()] = _parse_value(value)
    store = open_corpus_store(args.corpus_dir)
    entry = store.register_generator(
        args.name, args.family, params=params, seed=args.seed
    )
    print(f"generated {args.name}: digest={entry['digest']}")
    _print_entry(entry)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "ingest":
            return _cmd_ingest(args)
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "describe":
            return _cmd_describe(args)
        return _cmd_generate(args)
    except ConfigurationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
