"""Content-addressed on-disk corpus of link traces.

Layout under one root (by default ``<cache-dir>/corpus`` next to the
result cache)::

    corpus/
      manifest.json          # name -> entry metadata (the only index)
      traces/<digest>.json   # one blob per distinct trace content

The manifest is the source of truth; blobs are regenerable artifacts.  An
*ingested* entry's blob can be re-created by re-running ``ingest`` on the
original file; a *generator* entry's blob is rebuilt automatically from
the family parameters and seed recorded in the manifest.  That split is
what lets the runner's cache GC prune ``traces/*.json`` freely while the
manifest itself is never pruned (see ``ResultCache.corpus_files``).

Two names that resolve to identical trace content share one blob — the
digest is the address.  A blob read back from disk is digest-verified;
mismatches are quarantined (``quarantine/`` under the corpus root, same
convention as the result cache) and treated as missing.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Mapping, Optional

from repro._persist import (
    CACHE_DIR_ENV,
    atomic_write_text,
    default_cache_dir,
    quarantine_file,
)
from repro.corpus.generators import build_generator
from repro.corpus.ingest import DEFAULT_BIN_MS, load_trace_path
from repro.corpus.trace import LinkTrace
from repro.errors import ConfigurationError
from repro.units import DEFAULT_PACKET_BITS

__all__ = [
    "MANIFEST_SCHEMA_VERSION",
    "CorpusStore",
    "default_corpus_dir",
    "open_corpus_store",
]

#: Manifest layout version; unknown versions are rejected, not guessed at.
MANIFEST_SCHEMA_VERSION = 1


def default_corpus_dir() -> Optional[Path]:
    """The corpus root co-located with the default result cache (or None)."""
    cache_dir = default_cache_dir()
    return cache_dir / "corpus" if cache_dir is not None else None


def open_corpus_store(corpus_dir: "str | Path | None" = None) -> "CorpusStore":
    """A store at ``corpus_dir``, or at the default cache-relative root."""
    root = Path(corpus_dir) if corpus_dir else default_corpus_dir()
    if root is None:
        raise ConfigurationError(
            "no corpus directory: pass --corpus-dir / corpus_dir or set "
            f"${CACHE_DIR_ENV} (the corpus lives under the cache directory)"
        )
    return CorpusStore(root)


class CorpusStore:
    """Name-indexed, content-addressed trace store."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------ paths

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    def blob_path(self, digest: str) -> Path:
        return self.root / "traces" / f"{digest}.json"

    # --------------------------------------------------------------- manifest

    def _load_manifest(self) -> dict:
        try:
            payload = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return {"schema": MANIFEST_SCHEMA_VERSION, "entries": {}}
        except (OSError, ValueError) as exc:
            raise ConfigurationError(
                f"corpus manifest {self.manifest_path} is unreadable: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != MANIFEST_SCHEMA_VERSION
            or not isinstance(payload.get("entries"), dict)
        ):
            raise ConfigurationError(
                f"corpus manifest {self.manifest_path} has an unsupported layout"
            )
        return payload

    def _save_manifest(self, payload: dict) -> None:
        # sort_keys keeps the manifest byte-stable under re-registration
        # order, so repeated ingests of the same corpus diff clean.
        atomic_write_text(
            self.manifest_path,
            json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n",
        )

    # ---------------------------------------------------------------- writing

    def _write_blob(self, trace: LinkTrace) -> Path:
        path = self.blob_path(trace.digest)
        if not path.exists():
            atomic_write_text(
                path,
                json.dumps(trace.to_payload(), separators=(",", ":")) + "\n",
            )
        return path

    def _register(self, name: str, entry: dict) -> None:
        if not name:
            raise ConfigurationError("corpus entry name must be non-empty")
        manifest = self._load_manifest()
        manifest["entries"][name] = entry
        self._save_manifest(manifest)

    def add_trace(self, name: str, trace: LinkTrace, source: str = "") -> dict:
        """Store ``trace`` under ``name`` (re-registering replaces the name)."""
        self._write_blob(trace)
        entry = {
            "kind": "trace",
            "digest": trace.digest,
            "samples": len(trace),
            "duration_s": trace.duration,
            "mean_rate_bps": trace.mean_rate(),
            "min_rate_bps": trace.min_rate(),
            "source": source or trace.source,
        }
        self._register(name, entry)
        return entry

    def ingest(
        self,
        path: str | Path,
        name: str = "",
        fmt: str = "auto",
        packet_bits: int = DEFAULT_PACKET_BITS,
        bin_ms: int = DEFAULT_BIN_MS,
    ) -> dict:
        """Parse a trace file and register it (name defaults to the stem)."""
        trace = load_trace_path(
            path, fmt=fmt, name=name, packet_bits=packet_bits, bin_ms=bin_ms
        )
        return self.add_trace(name or Path(path).stem, trace, source=str(path))

    def register_generator(
        self,
        name: str,
        family: str,
        params: Mapping | None = None,
        seed: int = 0,
    ) -> dict:
        """Materialize a generator and register it like an ingested trace.

        The manifest records ``family``/``params``/``seed``, so the blob
        can always be rebuilt — it is a pure cache of the build.
        """
        generator = build_generator(family, params)
        trace = generator.build(seed)
        self._write_blob(trace)
        entry = {
            "kind": "generator",
            "digest": trace.digest,
            "samples": len(trace),
            "duration_s": trace.duration,
            "mean_rate_bps": trace.mean_rate(),
            "min_rate_bps": trace.min_rate(),
            "source": family,
            "family": family,
            "params": asdict(generator),
            "seed": seed,
        }
        self._register(name, entry)
        return entry

    # ---------------------------------------------------------------- reading

    def names(self) -> list[str]:
        """All registered entry names, sorted."""
        return sorted(self._load_manifest()["entries"])

    def describe(self, name: str) -> dict:
        """The manifest entry for ``name``."""
        entries = self._load_manifest()["entries"]
        try:
            return dict(entries[name])
        except KeyError:
            raise ConfigurationError(
                f"no corpus entry named {name!r} "
                f"(known: {', '.join(sorted(entries)) or 'none'})"
            ) from None

    def digest_of(self, name: str) -> str:
        """The content digest of entry ``name``."""
        return str(self.describe(name)["digest"])

    def _load_blob(self, digest: str) -> Optional[LinkTrace]:
        path = self.blob_path(digest)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            quarantine_file(self.root, path)
            return None
        try:
            trace = LinkTrace.from_payload(payload)
        except ConfigurationError:
            quarantine_file(self.root, path)
            return None
        if trace.digest != digest:
            # The blob parses but is not the content its address claims.
            quarantine_file(self.root, path)
            return None
        return trace

    def get(self, name_or_digest: str) -> LinkTrace:
        """Load a trace by entry name or by content digest.

        A generator entry whose blob was pruned is rebuilt from its
        recorded family/params/seed and re-cached; an ingested entry with
        a missing blob is an error naming the original source file.
        """
        entries = self._load_manifest()["entries"]
        entry = entries.get(name_or_digest)
        if entry is None:
            matches = [
                (name, meta)
                for name, meta in entries.items()
                if meta.get("digest") == name_or_digest
            ]
            if not matches:
                raise ConfigurationError(
                    f"no corpus entry or digest {name_or_digest!r} "
                    f"(known entries: {', '.join(sorted(entries)) or 'none'})"
                )
            _, entry = matches[0]
        digest = str(entry["digest"])
        trace = self._load_blob(digest)
        if trace is not None:
            return trace
        if entry.get("kind") == "generator":
            generator = build_generator(
                str(entry["family"]), entry.get("params") or {}
            )
            trace = generator.build(int(entry.get("seed", 0)))
            if trace.digest != digest:
                raise ConfigurationError(
                    f"rebuilt generator trace digest {trace.digest} does not "
                    f"match the manifest's {digest} — the generator code "
                    "changed since registration; re-run generate"
                )
            self._write_blob(trace)
            return trace
        raise ConfigurationError(
            f"corpus blob {digest} is missing and entry is not regenerable; "
            f"re-ingest {entry.get('source', 'the original file')!r}"
        )
