"""Seeded synthetic workload families for the trace corpus.

Each family is a small frozen dataclass whose ``build(seed)`` returns a
:class:`~repro.corpus.trace.LinkTrace`.  A family instance plus a seed is
a complete, reproducible description of a workload, which is exactly what
the corpus manifest records for generator entries: the family name, the
constructor parameters, and the seed.  Re-materializing the entry from the
manifest always reproduces the same trace (and hence the same digest), so
a pruned generator blob rebuilds transparently.

The four families cover the workload axes the paper's cellular setting
cares about:

* :class:`MarkovOnOffLink` — two-state capacity (coverage vs. shadowing),
  with exponentially-distributed dwell times;
* :class:`DiurnalLoadLink` — slow sinusoidal load curve between a trough
  and a peak capacity, with seeded multiplicative jitter;
* :class:`FlashCrowdLink` — a steady link whose capacity collapses for a
  crowd interval and ramps back linearly (cell overload);
* :class:`CorrelatedLossBurstLink` — a Gilbert–Elliott good/bad process;
  loss bursts are modeled as deep capacity fades, so the same artifact
  drives any rate-driven link without a separate loss channel.

All randomness flows through one ``random.Random(seed)`` per build, so
traces are deterministic per ``(family params, seed)``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, fields
from typing import Mapping

from repro.corpus.trace import LinkTrace
from repro.errors import ConfigurationError

__all__ = [
    "GENERATOR_FAMILIES",
    "CorrelatedLossBurstLink",
    "DiurnalLoadLink",
    "FlashCrowdLink",
    "MarkovOnOffLink",
    "build_generator",
]


def _require_positive(name: str, value: float) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value!r}")


@dataclass(frozen=True)
class MarkovOnOffLink:
    """Two-state Markov link: full capacity, or a degraded 'off' rate.

    Dwell times in each state are exponential with the given means, the
    classic on/off fluid model for a link that alternates between good
    coverage and deep shadowing.
    """

    on_rate_bps: float = 4_000_000.0
    off_rate_bps: float = 200_000.0
    mean_on_s: float = 8.0
    mean_off_s: float = 2.0
    duration: float = 120.0

    def build(self, seed: int = 0) -> LinkTrace:
        _require_positive("on_rate_bps", self.on_rate_bps)
        _require_positive("off_rate_bps", self.off_rate_bps)
        _require_positive("mean_on_s", self.mean_on_s)
        _require_positive("mean_off_s", self.mean_off_s)
        _require_positive("duration", self.duration)
        rng = random.Random(seed)
        times: list[float] = []
        rates: list[float] = []
        time = 0.0
        on = True
        while time < self.duration:
            times.append(time)
            rates.append(self.on_rate_bps if on else self.off_rate_bps)
            mean = self.mean_on_s if on else self.mean_off_s
            time += rng.expovariate(1.0 / mean)
            on = not on
        return LinkTrace(
            times=times, rates=rates, duration=self.duration, source="markov_onoff"
        )


@dataclass(frozen=True)
class DiurnalLoadLink:
    """Capacity following a day-scale cosine between trough and peak.

    The per-step multiplicative jitter keeps the curve from being exactly
    periodic, the way background cell load never is.
    """

    peak_rate_bps: float = 6_000_000.0
    trough_rate_bps: float = 1_000_000.0
    period_s: float = 60.0
    step_interval: float = 1.0
    jitter: float = 0.05
    duration: float = 120.0

    def build(self, seed: int = 0) -> LinkTrace:
        _require_positive("peak_rate_bps", self.peak_rate_bps)
        _require_positive("trough_rate_bps", self.trough_rate_bps)
        _require_positive("period_s", self.period_s)
        _require_positive("step_interval", self.step_interval)
        _require_positive("duration", self.duration)
        if self.trough_rate_bps > self.peak_rate_bps:
            raise ConfigurationError("trough_rate_bps must not exceed peak_rate_bps")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must lie in [0, 1)")
        rng = random.Random(seed)
        mid = (self.peak_rate_bps + self.trough_rate_bps) / 2.0
        swing = (self.peak_rate_bps - self.trough_rate_bps) / 2.0
        times: list[float] = []
        rates: list[float] = []
        time = 0.0
        while time < self.duration:
            base = mid + swing * math.cos(2.0 * math.pi * time / self.period_s)
            factor = 1.0 + rng.uniform(-self.jitter, self.jitter)
            times.append(time)
            rates.append(max(base * factor, self.trough_rate_bps * (1.0 - self.jitter)))
            time += self.step_interval
        return LinkTrace(
            times=times, rates=rates, duration=self.duration, source="diurnal"
        )


@dataclass(frozen=True)
class FlashCrowdLink:
    """A steady link hit by a crowd: capacity collapses, then ramps back.

    The crowd arrives at a seeded instant in the middle third of the
    trace, drops per-user capacity to ``crowd_rate_bps`` for
    ``crowd_duration_s``, then recovers linearly over ``recovery_s``.
    """

    base_rate_bps: float = 5_000_000.0
    crowd_rate_bps: float = 500_000.0
    crowd_duration_s: float = 15.0
    recovery_s: float = 10.0
    step_interval: float = 0.5
    duration: float = 120.0

    def build(self, seed: int = 0) -> LinkTrace:
        _require_positive("base_rate_bps", self.base_rate_bps)
        _require_positive("crowd_rate_bps", self.crowd_rate_bps)
        _require_positive("crowd_duration_s", self.crowd_duration_s)
        _require_positive("recovery_s", self.recovery_s)
        _require_positive("step_interval", self.step_interval)
        _require_positive("duration", self.duration)
        if self.crowd_rate_bps > self.base_rate_bps:
            raise ConfigurationError("crowd_rate_bps must not exceed base_rate_bps")
        rng = random.Random(seed)
        onset = rng.uniform(self.duration / 3.0, 2.0 * self.duration / 3.0)
        crowd_end = onset + self.crowd_duration_s
        # Sample on the step grid plus the exact breakpoints, so the seeded
        # onset is visible in the trace even when it falls between steps.
        grid = [
            index * self.step_interval
            for index in range(math.ceil(self.duration / self.step_interval))
        ]
        breaks = (onset, crowd_end, crowd_end + self.recovery_s)
        sample_times = sorted(
            set(grid) | {point for point in breaks if 0.0 < point < self.duration}
        )
        times: list[float] = []
        rates: list[float] = []
        for time in sample_times:
            if time < onset or time >= crowd_end + self.recovery_s:
                rate = self.base_rate_bps
            elif time < crowd_end:
                rate = self.crowd_rate_bps
            else:
                frac = (time - crowd_end) / self.recovery_s
                rate = self.crowd_rate_bps + frac * (
                    self.base_rate_bps - self.crowd_rate_bps
                )
            times.append(time)
            rates.append(rate)
        return LinkTrace(
            times=times, rates=rates, duration=self.duration, source="flash_crowd"
        )


@dataclass(frozen=True)
class CorrelatedLossBurstLink:
    """Gilbert–Elliott bursty degradation as a capacity process.

    A two-state chain stepped every ``step_interval``: in the good state
    the link runs at ``good_rate_bps``; in the bad state capacity fades to
    ``good_rate_bps * bad_rate_fraction``.  Transition probabilities are
    per step, so bursts are geometrically distributed and correlated —
    the loss pattern the paper's cellular setting exhibits, expressed as
    deep rate fades so any rate-driven link consumes it directly.
    """

    good_rate_bps: float = 4_000_000.0
    bad_rate_fraction: float = 0.02
    p_good_to_bad: float = 0.02
    p_bad_to_good: float = 0.25
    step_interval: float = 0.2
    duration: float = 120.0

    def build(self, seed: int = 0) -> LinkTrace:
        _require_positive("good_rate_bps", self.good_rate_bps)
        _require_positive("step_interval", self.step_interval)
        _require_positive("duration", self.duration)
        if not 0.0 < self.bad_rate_fraction <= 1.0:
            raise ConfigurationError("bad_rate_fraction must lie in (0, 1]")
        for name in ("p_good_to_bad", "p_bad_to_good"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must lie in [0, 1]")
        rng = random.Random(seed)
        bad_rate = self.good_rate_bps * self.bad_rate_fraction
        times: list[float] = []
        rates: list[float] = []
        time = 0.0
        good = True
        while time < self.duration:
            times.append(time)
            rates.append(self.good_rate_bps if good else bad_rate)
            flip = self.p_good_to_bad if good else self.p_bad_to_good
            if rng.random() < flip:
                good = not good
            time += self.step_interval
        return LinkTrace(
            times=times, rates=rates, duration=self.duration, source="loss_burst"
        )


#: Family name -> dataclass, the registry the manifest and CLI share.
GENERATOR_FAMILIES = {
    "markov_onoff": MarkovOnOffLink,
    "diurnal": DiurnalLoadLink,
    "flash_crowd": FlashCrowdLink,
    "loss_burst": CorrelatedLossBurstLink,
}


def build_generator(family: str, params: Mapping | None = None):
    """Instantiate a generator family by name with keyword parameters."""
    try:
        cls = GENERATOR_FAMILIES[family]
    except KeyError:
        raise ConfigurationError(
            f"unknown generator family {family!r} "
            f"(known: {', '.join(sorted(GENERATOR_FAMILIES))})"
        ) from None
    params = dict(params or {})
    known = {f.name for f in fields(cls)}
    unknown = sorted(set(params) - known)
    if unknown:
        raise ConfigurationError(
            f"unknown parameter(s) for {family}: {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(known))})"
        )
    return cls(**params)
