"""Trace corpus: ingested real link traces and seeded synthetic workloads.

The corpus is the workload base for trace-driven scenarios: a
content-addressed on-disk store (:class:`CorpusStore`) of
:class:`LinkTrace` artifacts, filled either by ingesting mahimahi-style or
``(time, rate)`` sample files, or by materializing one of the registered
generator families (:data:`GENERATOR_FAMILIES`).  Scenarios reference
entries by name; the result cache folds the entry's content digest into
the point key, so re-ingesting different data under an unchanged name
invalidates cached points.

Manage a corpus from the command line via ``python -m repro.corpus``.
"""

from repro.corpus.generators import (
    GENERATOR_FAMILIES,
    CorrelatedLossBurstLink,
    DiurnalLoadLink,
    FlashCrowdLink,
    MarkovOnOffLink,
    build_generator,
)
from repro.corpus.ingest import (
    load_trace_path,
    parse_mahimahi_text,
    parse_samples_text,
)
from repro.corpus.store import CorpusStore, default_corpus_dir, open_corpus_store
from repro.corpus.trace import LinkTrace, trace_digest

__all__ = [
    "GENERATOR_FAMILIES",
    "CorpusStore",
    "CorrelatedLossBurstLink",
    "DiurnalLoadLink",
    "FlashCrowdLink",
    "LinkTrace",
    "MarkovOnOffLink",
    "build_generator",
    "default_corpus_dir",
    "load_trace_path",
    "open_corpus_store",
    "parse_mahimahi_text",
    "parse_samples_text",
    "trace_digest",
]
