"""The corpus's canonical trace artifact: a validated, digestable rate trace.

A :class:`LinkTrace` is the load-once representation every corpus entry —
ingested real-world trace or seeded synthetic generator — resolves to: a
piecewise-constant ``(time, rate)`` schedule with an explicit duration, a
content digest that keys it in the on-disk store, and the same read surface
as :class:`~repro.cellular.trace.RateProcess` (``rate_at`` / ``mean_rate``
/ ``min_rate`` / ``samples`` / ``len``), so anything that drives a link
from a rate process — :class:`~repro.cellular.link.CellularLink`,
:class:`~repro.cellular.link.TraceDrivenLink` — accepts a corpus trace
unchanged.

Validation happens at construction, never at read time: times must be
strictly increasing and start at or after zero, rates must be strictly
positive, and the duration must cover the last segment.  The digest hashes
only the data (times, rates, duration) under the repository's one
canonical-JSON convention, so renaming a corpus entry or re-ingesting the
same bytes under a different name never changes the digest the result
cache keys on.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_right
from typing import Iterable, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: Trace payload layout version; part of the digest, so a layout change
#: re-keys every stored artifact instead of silently aliasing old ones.
TRACE_SCHEMA_VERSION = 1


def trace_digest(
    times: Sequence[float], rates: Sequence[float], duration: float
) -> str:
    """Content digest of a trace's data (name- and source-independent).

    The same canonical-JSON-then-sha256 convention as
    :func:`repro.api.config.canonical_digest`, spelled locally so the
    corpus layer stays importable without pulling in the inference stack.
    """
    canonical = json.dumps(
        {
            "schema": TRACE_SCHEMA_VERSION,
            "times": [float(t) for t in times],
            "rates": [float(r) for r in rates],
            "duration": float(duration),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class LinkTrace:
    """A validated piecewise-constant link-rate trace.

    Parameters
    ----------
    times:
        Segment start times in seconds, strictly increasing, first >= 0.
    rates:
        Service rate in bits/s for each segment; strictly positive.
    duration:
        Total trace length in seconds (must reach past the last segment
        start).  ``None`` extends the last segment by the trace's final
        inter-sample gap (or 1 s for a single-segment trace).
    name / source:
        Free-form provenance, excluded from the digest.
    """

    def __init__(
        self,
        times: Iterable[float],
        rates: Iterable[float],
        duration: Optional[float] = None,
        name: str = "",
        source: str = "",
    ) -> None:
        self.times: tuple[float, ...] = tuple(float(t) for t in times)
        self.rates: tuple[float, ...] = tuple(float(r) for r in rates)
        if not self.times:
            raise ConfigurationError("a LinkTrace needs at least one sample")
        if len(self.times) != len(self.rates):
            raise ConfigurationError(
                f"times ({len(self.times)}) and rates ({len(self.rates)}) "
                "must have equal length"
            )
        if self.times[0] < 0.0:
            raise ConfigurationError(
                f"trace must start at or after t=0, got {self.times[0]!r}"
            )
        for index in range(1, len(self.times)):
            if self.times[index] <= self.times[index - 1]:
                raise ConfigurationError(
                    f"trace times must be strictly increasing; sample {index} "
                    f"({self.times[index]!r}) does not follow "
                    f"{self.times[index - 1]!r}"
                )
        for index, rate in enumerate(self.rates):
            if rate <= 0.0:
                raise ConfigurationError(
                    f"trace rates must be positive; sample {index} is {rate!r}"
                )
        if duration is None:
            if len(self.times) >= 2:
                duration = self.times[-1] + (self.times[-1] - self.times[-2])
            else:
                duration = self.times[-1] + 1.0
        duration = float(duration)
        if duration <= self.times[-1]:
            raise ConfigurationError(
                f"duration ({duration!r}) must extend past the last segment "
                f"start ({self.times[-1]!r})"
            )
        self.duration = duration
        self.name = name
        self.source = source

        # Segment lengths close the trace at `duration`, so the mean is the
        # true time-weighted average rate (what utilization is judged
        # against), not a sample average skewed by irregular segments.
        spans = [
            (self.times[i + 1] if i + 1 < len(self.times) else duration)
            - self.times[i]
            for i in range(len(self.times))
        ]
        self._mean_rate = (
            sum(rate * span for rate, span in zip(self.rates, spans))
            / (duration - self.times[0])
        )
        self._min_rate = min(self.rates)
        self._max_rate = max(self.rates)
        self._digest: Optional[str] = None

    # ------------------------------------------------------------ identity

    @property
    def digest(self) -> str:
        """Content digest (lazy; hashes data only, never name/source)."""
        if self._digest is None:
            self._digest = trace_digest(self.times, self.rates, self.duration)
        return self._digest

    # ----------------------------------------- RateProcess-compatible surface

    def rate_at(self, time: float) -> float:
        """Instantaneous service rate at ``time`` (clamped to the trace ends)."""
        if time <= self.times[0]:
            return self.rates[0]
        index = bisect_right(self.times, time) - 1
        index = min(max(index, 0), len(self.rates) - 1)
        return self.rates[index]

    def segments_from(self, start: float):
        """Yield ``(rate, segment_end)`` from the segment containing ``start``.

        Mirrors :meth:`repro.cellular.trace.RateProcess.segments_from` so
        both rate-process flavors drive the same segment-integrating link
        code: the first yielded rate equals ``rate_at(start)`` and the last
        segment is unbounded (``segment_end = math.inf``), matching
        :meth:`rate_at`'s end clamping.
        """
        index = bisect_right(self.times, start) - 1
        index = min(max(index, 0), len(self.rates) - 1)
        while index + 1 < len(self.times):
            yield self.rates[index], self.times[index + 1]
            index += 1
        yield self.rates[index], math.inf

    def mean_rate(self) -> float:
        """Time-weighted mean rate over the trace's duration."""
        return self._mean_rate

    def min_rate(self) -> float:
        """Smallest rate in the trace."""
        return self._min_rate

    def max_rate(self) -> float:
        """Largest rate in the trace."""
        return self._max_rate

    def samples(self) -> list[tuple[float, float]]:
        """The full ``(time, rate)`` trace."""
        return list(zip(self.times, self.rates))

    def __len__(self) -> int:
        return len(self.rates)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LinkTrace(samples={len(self)}, duration={self.duration:g}s, "
            f"mean={self._mean_rate:g}bps, digest={self.digest[:12]})"
        )

    # ------------------------------------------------------------ round trip

    def to_payload(self) -> dict:
        """JSON-serializable blob form (the corpus store's on-disk layout)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "digest": self.digest,
            "name": self.name,
            "source": self.source,
            "times": list(self.times),
            "rates": list(self.rates),
            "duration": self.duration,
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "LinkTrace":
        """Rebuild a trace from :meth:`to_payload` output, re-validating it."""
        if not isinstance(payload, Mapping):
            raise ConfigurationError("trace payload must be a mapping")
        if payload.get("schema") != TRACE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported trace schema {payload.get('schema')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        trace = cls(
            times=payload.get("times", ()),
            rates=payload.get("rates", ()),
            duration=payload.get("duration"),
            name=str(payload.get("name", "")),
            source=str(payload.get("source", "")),
        )
        recorded = payload.get("digest")
        if recorded is not None and recorded != trace.digest:
            raise ConfigurationError(
                f"trace payload digest {recorded!r} does not match its "
                f"content digest {trace.digest!r} (corrupt or edited blob)"
            )
        return trace

    @classmethod
    def from_rate_process(cls, process, name: str = "", source: str = "rate_process") -> "LinkTrace":
        """Freeze a :class:`~repro.cellular.trace.RateProcess` into a trace."""
        samples = process.samples()
        return cls(
            times=[t for t, _ in samples],
            rates=[r for _, r in samples],
            duration=getattr(process, "duration", None),
            name=name,
            source=source,
        )
