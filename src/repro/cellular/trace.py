"""Synthetic time-varying link-rate traces.

A cellular downlink's capacity varies on sub-second timescales with fading,
scheduling, and cell load.  :class:`RateProcess` generates a piecewise-
constant rate trace from a bounded multiplicative random walk, which captures
the two properties Figure 1 depends on: the rate is sometimes much lower
than its nominal value (so queues build) and it is autocorrelated (so the
queues persist long enough to matter).
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right

from repro.errors import ConfigurationError


class RateProcess:
    """A piecewise-constant, mean-reverting random-walk rate trace.

    Parameters
    ----------
    nominal_bps:
        Long-run central rate of the process.
    min_bps / max_bps:
        Hard bounds on the instantaneous rate.
    step_interval:
        Seconds between rate changes.
    volatility:
        Standard deviation of the per-step log-rate innovation.
    reversion:
        Strength of mean reversion toward ``nominal_bps`` per step (0..1).
    duration:
        Length of trace to pre-generate, in seconds.
    seed:
        Seed for the private random stream.
    """

    def __init__(
        self,
        nominal_bps: float,
        min_bps: float,
        max_bps: float,
        step_interval: float = 0.5,
        volatility: float = 0.35,
        reversion: float = 0.15,
        duration: float = 600.0,
        seed: int = 0,
    ) -> None:
        if nominal_bps <= 0 or min_bps <= 0 or max_bps <= 0:
            raise ConfigurationError("rates must be positive")
        if not min_bps <= nominal_bps <= max_bps:
            raise ConfigurationError("require min_bps <= nominal_bps <= max_bps")
        if step_interval <= 0 or duration <= 0:
            raise ConfigurationError("step_interval and duration must be positive")
        if not 0.0 <= reversion <= 1.0:
            raise ConfigurationError("reversion must lie in [0, 1]")
        self.nominal_bps = nominal_bps
        self.min_bps = min_bps
        self.max_bps = max_bps
        self.step_interval = step_interval
        self.duration = duration
        rng = random.Random(seed)
        self._times: list[float] = []
        self._rates: list[float] = []
        log_rate = math.log(nominal_bps)
        log_nominal = math.log(nominal_bps)
        if volatility == 0.0:
            # The walk starts at the nominal rate and a zero-volatility
            # innovation never moves it (reversion pulls toward where it
            # already is), so the whole trace is one segment — don't
            # materialize duration/step_interval identical samples.
            self._times.append(0.0)
            self._rates.append(min(max_bps, max(min_bps, nominal_bps)))
        else:
            time = 0.0
            while time < duration:
                self._times.append(time)
                rate = min(max_bps, max(min_bps, math.exp(log_rate)))
                self._rates.append(rate)
                log_rate += reversion * (log_nominal - log_rate) + rng.gauss(0.0, volatility)
                time += step_interval
        self._mean_rate = sum(self._rates) / len(self._rates)
        self._min_rate = min(self._rates)

    def rate_at(self, time: float) -> float:
        """Instantaneous service rate at ``time`` (clamped to the trace ends)."""
        if time <= 0:
            return self._rates[0]
        index = bisect_right(self._times, time) - 1
        index = min(max(index, 0), len(self._rates) - 1)
        return self._rates[index]

    def segments_from(self, start: float):
        """Yield ``(rate, segment_end)`` from the segment containing ``start``.

        The same end-clamping as :meth:`rate_at`: the first yielded rate is
        ``rate_at(start)``, and the final segment is unbounded
        (``segment_end = math.inf``) because the trace holds its last rate
        forever.  This is the iterator a link uses to integrate a packet's
        serialization across rate-step boundaries instead of freezing the
        rate sampled when service began.
        """
        index = bisect_right(self._times, start) - 1
        index = min(max(index, 0), len(self._rates) - 1)
        while index + 1 < len(self._times):
            yield self._rates[index], self._times[index + 1]
            index += 1
        yield self._rates[index], math.inf

    def mean_rate(self) -> float:
        """Arithmetic mean of the generated trace (cached at construction)."""
        return self._mean_rate

    def min_rate(self) -> float:
        """Smallest rate in the generated trace (cached at construction)."""
        return self._min_rate

    def samples(self) -> list[tuple[float, float]]:
        """The full ``(time, rate)`` trace."""
        return list(zip(self._times, self._rates))

    def __len__(self) -> int:
        return len(self._rates)


def constant_rate_process(
    rate_bps: float,
    duration: float = 600.0,
    step_interval: float = 0.5,
    seed: int = 0,
) -> RateProcess:
    """A degenerate :class:`RateProcess` pinned to a single rate (for tests).

    With zero volatility the process collapses to a single segment, so this
    is cheap at any duration.  ``step_interval`` and ``seed`` pass through
    for call-site symmetry with the full constructor.
    """
    return RateProcess(
        nominal_bps=rate_bps,
        min_bps=rate_bps,
        max_bps=rate_bps,
        step_interval=step_interval,
        volatility=0.0,
        reversion=0.0,
        duration=duration,
        seed=seed,
    )
