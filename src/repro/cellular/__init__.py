"""A synthetic bufferbloated cellular link.

Figure 1 of the paper shows the round-trip time of a TCP download over a
commercial LTE network climbing from ~100 ms to roughly ten seconds because
the network hides non-congestive losses behind link-layer retransmission and
provisions very deep buffers.  We cannot replay the original Verizon trace,
so this package builds the closest synthetic equivalent (see DESIGN.md,
substitutions):

* :class:`~repro.cellular.trace.RateProcess` — a bounded random-walk
  service-rate process mimicking a time-varying radio channel.
* :class:`~repro.cellular.link.CellularLink` — a deep tail-drop buffer
  drained at the time-varying rate, with link-layer ARQ that converts
  stochastic loss into delay instead of exposing it to the sender.
"""

from repro.cellular.link import CellularLink, TraceDrivenLink
from repro.cellular.trace import RateProcess, constant_rate_process

__all__ = [
    "CellularLink",
    "RateProcess",
    "TraceDrivenLink",
    "constant_rate_process",
]
