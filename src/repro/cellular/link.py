"""The bufferbloated, loss-hiding cellular link element.

This is the stand-in for the LTE downlink of Figure 1.  It combines three
behaviours that RFC 3819-style subnetwork engineering encourages and that
the paper argues confound TCP:

* a **very deep tail-drop buffer** (seconds of traffic at the nominal rate),
* a **time-varying service rate** drawn from a
  :class:`~repro.cellular.trace.RateProcess`,
* **link-layer ARQ**: each transmission attempt fails independently with
  ``loss_rate`` and is retried after ``retransmit_delay`` rather than being
  exposed to the endpoints, so stochastic loss shows up as extra delay.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cellular.trace import RateProcess
from repro.elements.throughput import Throughput
from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet


class TraceDrivenLink(Throughput):
    """A :class:`~repro.elements.throughput.Throughput` whose rate follows a trace.

    The one override is :meth:`service_time`: each packet is serialized at
    the rate process's instantaneous rate when its transmission begins.
    Unlike :class:`CellularLink`, this element keeps the standard
    buffer-pull protocol — pair it with an upstream
    :class:`~repro.elements.buffer.Buffer` for bounded tail-drop queueing,
    which is how the many-flow contention scenarios share one bottleneck
    across N senders.

    ``rate_process`` is anything with ``rate_at(t)`` — a
    :class:`~repro.cellular.trace.RateProcess` or a corpus
    :class:`~repro.corpus.trace.LinkTrace`.
    """

    def __init__(self, rate_process, name: str | None = None) -> None:
        # The nominal Throughput rate is the process's starting rate; it is
        # never used for service times, only reported.
        super().__init__(rate_process.rate_at(0.0), name)
        self.rate_process = rate_process

    def service_time(self, packet: Packet) -> float:
        return packet.size_bits / self.rate_process.rate_at(self.sim.now)


class CellularLink(Element):
    """A deep-buffered, variable-rate link with loss-hiding retransmission.

    Parameters
    ----------
    rate_process:
        The time-varying service-rate trace.
    buffer_bits:
        Buffer capacity in bits.  The Figure-1 default used by the
        experiment corresponds to roughly ten seconds of traffic at the
        nominal rate — deliberately bloated.
    loss_rate:
        Probability that one transmission attempt fails and is retried.
    retransmit_delay:
        Extra delay, in seconds, before a failed attempt is retried.
    max_attempts:
        Attempts before the link finally gives up and drops the packet.
    propagation_delay:
        Fixed one-way delay added after a successful transmission.
    """

    def __init__(
        self,
        rate_process: RateProcess,
        buffer_bits: float,
        loss_rate: float = 0.0,
        retransmit_delay: float = 0.05,
        max_attempts: int = 10,
        propagation_delay: float = 0.03,
        name: str | None = None,
    ) -> None:
        if buffer_bits <= 0:
            raise ConfigurationError(f"buffer_bits must be positive, got {buffer_bits!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must lie in [0, 1), got {loss_rate!r}")
        if retransmit_delay < 0 or propagation_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be at least 1, got {max_attempts!r}")
        super().__init__(name)
        self.rate_process = rate_process
        self.buffer_bits = float(buffer_bits)
        self.loss_rate = float(loss_rate)
        self.retransmit_delay = float(retransmit_delay)
        self.max_attempts = max_attempts
        self.propagation_delay = float(propagation_delay)

        self._queue: deque[Packet] = deque()
        self._occupancy_bits = 0.0
        self._busy = False
        self.drop_count = 0
        self.link_layer_retransmissions = 0
        self.abandoned_packets = 0
        self.peak_occupancy_bits = 0.0
        self.occupancy_trace: list[tuple[float, float]] = []

    # ------------------------------------------------------------------ state

    @property
    def occupancy_bits(self) -> float:
        """Bits currently queued (excluding the packet in service)."""
        return self._occupancy_bits

    def queueing_delay_estimate(self) -> float:
        """Current queue drain time at the instantaneous service rate."""
        return self._occupancy_bits / self.rate_process.rate_at(self.sim.now)

    # -------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if not self._busy and not self._queue:
            self._begin_service(packet)
            return
        if self._occupancy_bits + packet.size_bits > self.buffer_bits + 1e-9:
            self.drop_count += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("drop", seq=packet.seq, flow=packet.flow)
            return
        self._queue.append(packet)
        self._occupancy_bits += packet.size_bits
        if self._occupancy_bits > self.peak_occupancy_bits:
            self.peak_occupancy_bits = self._occupancy_bits
        self.occupancy_trace.append((self.sim.now, self._occupancy_bits))

    def _begin_service(self, packet: Packet, attempt: int = 1) -> None:
        self._busy = True
        rate = self.rate_process.rate_at(self.sim.now)
        service_time = packet.size_bits / rate
        self.sim.schedule(service_time, self._attempt_done, packet, attempt)

    def _attempt_done(self, packet: Packet, attempt: int) -> None:
        if self.loss_rate > 0.0 and self.rng("arq").random() < self.loss_rate:
            # The attempt failed; hide the loss behind a retransmission.
            if attempt >= self.max_attempts:
                self.abandoned_packets += 1
                packet.mark_dropped(self.sim.now, self.name)
                self.trace("abandon", seq=packet.seq, flow=packet.flow)
                self._serve_next()
                return
            self.link_layer_retransmissions += 1
            packet.meta["ll_retransmissions"] = packet.meta.get("ll_retransmissions", 0) + 1
            self.trace("ll_retransmit", seq=packet.seq, attempt=attempt)
            self.sim.schedule(self.retransmit_delay, self._begin_service, packet, attempt + 1)
            return
        self.trace("tx_done", seq=packet.seq, flow=packet.flow)
        if self.propagation_delay > 0:
            self.sim.schedule(self.propagation_delay, self.emit, packet)
        else:
            self.emit(packet)
        self._serve_next()

    def _serve_next(self) -> None:
        self._busy = False
        if not self._queue:
            return
        nxt = self._queue.popleft()
        self._occupancy_bits -= nxt.size_bits
        if self._occupancy_bits < 1e-9:
            self._occupancy_bits = 0.0
        self._begin_service(nxt)

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._occupancy_bits = 0.0
        self._busy = False
        self.drop_count = 0
        self.link_layer_retransmissions = 0
        self.abandoned_packets = 0
        self.peak_occupancy_bits = 0.0
        self.occupancy_trace = []
