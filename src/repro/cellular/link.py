"""The bufferbloated, loss-hiding cellular link element.

This is the stand-in for the LTE downlink of Figure 1.  It combines three
behaviours that RFC 3819-style subnetwork engineering encourages and that
the paper argues confound TCP:

* a **very deep tail-drop buffer** (seconds of traffic at the nominal rate),
* a **time-varying service rate** drawn from a
  :class:`~repro.cellular.trace.RateProcess`,
* **link-layer ARQ**: each transmission attempt fails independently with
  ``loss_rate`` and is retried after ``retransmit_delay`` rather than being
  exposed to the endpoints, so stochastic loss shows up as extra delay.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.cellular.trace import RateProcess
from repro.elements.throughput import Throughput
from repro.errors import ConfigurationError
from repro.sim.element import Element
from repro.sim.packet import Packet

#: Floor applied to a trace's instantaneous rate wherever a link divides by
#: it.  A generator trace with a deep fade (e.g. ``loss_burst`` with a tiny
#: ``bad_rate_fraction``) can report micro-bps rates; dividing by those
#: silently schedules multi-hour service times for a single packet.  Rates
#: below this floor serve at the floor instead — 1 kbit/s, slow enough that
#: a fade still stalls the link for seconds per packet, bounded enough that
#: the simulation keeps making progress.
MIN_SERVICE_RATE_BPS = 1_000.0


class TraceDrivenLink(Throughput):
    """A :class:`~repro.elements.throughput.Throughput` whose rate follows a trace.

    The one override is :meth:`service_time`: each packet's serialization is
    *integrated across the trace's rate segments* from the instant its
    transmission begins.  (Sampling ``rate_at`` once at service start — the
    old behaviour — let a packet straddling a sharp rate drop serialize
    entirely at the stale pre-drop rate, skipping outage bins for free.)
    Unlike :class:`CellularLink`, this element keeps the standard
    buffer-pull protocol — pair it with an upstream
    :class:`~repro.elements.buffer.Buffer` for bounded tail-drop queueing,
    which is how the many-flow contention scenarios share one bottleneck
    across N senders.

    ``rate_process`` is anything with ``rate_at(t)``/``mean_rate()`` — a
    :class:`~repro.cellular.trace.RateProcess` or a corpus
    :class:`~repro.corpus.trace.LinkTrace`.  Segment integration uses the
    ``segments_from(start)`` iterator both provide; a duck-typed process
    without one falls back to the start-instant rate.  Rates are floored at
    :data:`MIN_SERVICE_RATE_BPS` (deep fades must not schedule unbounded
    service times).
    """

    def __init__(self, rate_process, name: str | None = None) -> None:
        # The nominal Throughput rate is never used for service times, only
        # reported — so report the trace's *mean* rate.  (Reporting
        # ``rate_at(0.0)`` meant a trace that starts inside an outage
        # advertised a misleading ~0 nominal rate in results.)
        super().__init__(rate_process.mean_rate(), name)
        self.rate_process = rate_process

    def service_time(self, packet: Packet) -> float:
        start = self.sim.now
        segments_from = getattr(self.rate_process, "segments_from", None)
        if segments_from is None:
            rate = max(self.rate_process.rate_at(start), MIN_SERVICE_RATE_BPS)
            return packet.size_bits / rate
        remaining = packet.size_bits
        elapsed = 0.0
        for rate, segment_end in segments_from(start):
            rate = max(rate, MIN_SERVICE_RATE_BPS)
            span = segment_end - (start + elapsed)
            if span <= 0.0:
                continue
            drained = rate * span  # inf for the final, unbounded segment
            if remaining <= drained:
                # Constant traces take this branch on the first segment
                # with elapsed == 0.0, so their service times are
                # bit-identical to the single-rate formula.
                return elapsed + remaining / rate
            remaining -= drained
            elapsed += span
        raise AssertionError(
            "segments_from() ended before the packet finished serializing "
            "(the final segment must be unbounded)"
        )


class CellularLink(Element):
    """A deep-buffered, variable-rate link with loss-hiding retransmission.

    Parameters
    ----------
    rate_process:
        The time-varying service-rate trace.
    buffer_bits:
        Buffer capacity in bits.  The Figure-1 default used by the
        experiment corresponds to roughly ten seconds of traffic at the
        nominal rate — deliberately bloated.
    loss_rate:
        Probability that one transmission attempt fails and is retried.
    retransmit_delay:
        Extra delay, in seconds, before a failed attempt is retried.
    max_attempts:
        Attempts before the link finally gives up and drops the packet.
    propagation_delay:
        Fixed one-way delay added after a successful transmission.
    """

    def __init__(
        self,
        rate_process: RateProcess,
        buffer_bits: float,
        loss_rate: float = 0.0,
        retransmit_delay: float = 0.05,
        max_attempts: int = 10,
        propagation_delay: float = 0.03,
        name: str | None = None,
    ) -> None:
        if buffer_bits <= 0:
            raise ConfigurationError(f"buffer_bits must be positive, got {buffer_bits!r}")
        if not 0.0 <= loss_rate < 1.0:
            raise ConfigurationError(f"loss_rate must lie in [0, 1), got {loss_rate!r}")
        if retransmit_delay < 0 or propagation_delay < 0:
            raise ConfigurationError("delays must be non-negative")
        if max_attempts < 1:
            raise ConfigurationError(f"max_attempts must be at least 1, got {max_attempts!r}")
        super().__init__(name)
        self.rate_process = rate_process
        self.buffer_bits = float(buffer_bits)
        self.loss_rate = float(loss_rate)
        self.retransmit_delay = float(retransmit_delay)
        self.max_attempts = max_attempts
        self.propagation_delay = float(propagation_delay)

        self._queue: deque[Packet] = deque()
        self._occupancy_bits = 0.0
        self._busy = False
        self.drop_count = 0
        self.link_layer_retransmissions = 0
        self.abandoned_packets = 0
        self.peak_occupancy_bits = 0.0
        self.occupancy_trace: list[tuple[float, float]] = []

    # ------------------------------------------------------------------ state

    @property
    def occupancy_bits(self) -> float:
        """Bits currently queued (excluding the packet in service)."""
        return self._occupancy_bits

    def queueing_delay_estimate(self) -> float:
        """Current queue drain time at the instantaneous service rate.

        The rate is floored at :data:`MIN_SERVICE_RATE_BPS` so a deep fade
        yields a large-but-finite estimate rather than an absurd one.
        """
        rate = max(self.rate_process.rate_at(self.sim.now), MIN_SERVICE_RATE_BPS)
        return self._occupancy_bits / rate

    # -------------------------------------------------------------- data path

    def receive(self, packet: Packet) -> None:
        self.received_count += 1
        if not self._busy and not self._queue:
            self._begin_service(packet)
            return
        if self._occupancy_bits + packet.size_bits > self.buffer_bits + 1e-9:
            self.drop_count += 1
            packet.mark_dropped(self.sim.now, self.name)
            self.trace("drop", seq=packet.seq, flow=packet.flow)
            return
        self._queue.append(packet)
        self._occupancy_bits += packet.size_bits
        if self._occupancy_bits > self.peak_occupancy_bits:
            self.peak_occupancy_bits = self._occupancy_bits
        self.occupancy_trace.append((self.sim.now, self._occupancy_bits))

    def _begin_service(self, packet: Packet, attempt: int = 1) -> None:
        self._busy = True
        # Floored so a deep trace fade schedules a long-but-bounded attempt
        # instead of a silent multi-hour one (see MIN_SERVICE_RATE_BPS).
        rate = max(self.rate_process.rate_at(self.sim.now), MIN_SERVICE_RATE_BPS)
        service_time = packet.size_bits / rate
        self.sim.schedule(service_time, self._attempt_done, packet, attempt)

    def _attempt_done(self, packet: Packet, attempt: int) -> None:
        if self.loss_rate > 0.0 and self.rng("arq").random() < self.loss_rate:
            # The attempt failed; hide the loss behind a retransmission.
            if attempt >= self.max_attempts:
                self.abandoned_packets += 1
                packet.mark_dropped(self.sim.now, self.name)
                self.trace("abandon", seq=packet.seq, flow=packet.flow)
                self._serve_next()
                return
            self.link_layer_retransmissions += 1
            packet.meta["ll_retransmissions"] = packet.meta.get("ll_retransmissions", 0) + 1
            self.trace("ll_retransmit", seq=packet.seq, attempt=attempt)
            self.sim.schedule(self.retransmit_delay, self._begin_service, packet, attempt + 1)
            return
        self.trace("tx_done", seq=packet.seq, flow=packet.flow)
        if self.propagation_delay > 0:
            self.sim.schedule(self.propagation_delay, self.emit, packet)
        else:
            self.emit(packet)
        self._serve_next()

    def _serve_next(self) -> None:
        self._busy = False
        if not self._queue:
            return
        nxt = self._queue.popleft()
        self._occupancy_bits -= nxt.size_bits
        if self._occupancy_bits < 1e-9:
            self._occupancy_bits = 0.0
        self._begin_service(nxt)

    def reset(self) -> None:
        super().reset()
        self._queue.clear()
        self._occupancy_bits = 0.0
        self._busy = False
        self.drop_count = 0
        self.link_layer_retransmissions = 0
        self.abandoned_packets = 0
        self.peak_occupancy_bits = 0.0
        self.occupancy_trace = []
