"""repro — a reproduction of "End-to-End Transmission Control by Modeling
Uncertainty about the Network State" (Winstein & Balakrishnan, HotNets 2011).

The package is organized as:

* :mod:`repro.sim` — discrete-event simulation substrate.
* :mod:`repro.elements` — the paper's language of network elements (§3.1).
* :mod:`repro.topology` — wiring helpers and preset networks (Figure 2).
* :mod:`repro.inference` — priors, hypotheses, and the Bayesian belief state.
* :mod:`repro.core` — utility functions, the expected-utility planner, and
  the model-based ISender (the paper's contribution).
* :mod:`repro.api` — the configuration layer: ``SenderConfig`` +
  ``build_sender`` (the one construction path), the engine backend
  registry, and precomputed §3.3 policy tables.
* :mod:`repro.baselines` — TCP-like window senders and rate senders.
* :mod:`repro.cellular` — the synthetic bufferbloated cellular link used to
  reproduce Figure 1.
* :mod:`repro.metrics`, :mod:`repro.viz` — measurement and reporting.
* :mod:`repro.experiments` — runners that regenerate every figure.
"""

from repro._version import __version__

__all__ = ["__version__"]
