"""Shared persistence plumbing for the fingerprint-keyed caches.

Deliberately dependency-free (stdlib only) so both sides of the
runner ↔ api boundary — :mod:`repro.runner.cache` for grid-point results,
:mod:`repro.api.policy` for precomputed policy tables — can use one
write-path and one cache-directory convention without importing each
other.
"""

from __future__ import annotations

import contextlib
import inspect
import os
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

#: Environment variable naming the shared cache directory.  The runner
#: CLI's ``--cache-dir`` exports it for the duration of a run so worker
#: processes and the policy-table precompute path all reuse one location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Optional[Path]:
    """The cache directory named by ``$REPRO_CACHE_DIR``, or ``None``."""
    value = os.environ.get(CACHE_DIR_ENV, "").strip()
    return Path(value) if value else None


@contextlib.contextmanager
def cache_dir_override(
    value: Optional[str], *, clear: bool = False
) -> Iterator[None]:
    """Temporarily set (or, with ``clear``, remove) ``$REPRO_CACHE_DIR``.

    ``value=None`` without ``clear`` is a no-op — the environment is left
    exactly as found.  The previous value is always restored on exit.
    Runner workers use this around a *single* point execution in their own
    process, so concurrent runs with different cache directories never
    observe each other's export.
    """
    if value is None and not clear:
        yield
        return
    saved = os.environ.get(CACHE_DIR_ENV)
    if clear:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = value
    try:
        yield
    finally:
        if saved is None:
            os.environ.pop(CACHE_DIR_ENV, None)
        else:
            os.environ[CACHE_DIR_ENV] = saved


def signature_defaults(
    fn: Callable, exclude: Sequence[str] = ()
) -> dict[str, object]:
    """``fn``'s defaulted parameters as a name → default dict.

    The one effective-parameter rule both caches key on: an omitted
    parameter and its explicitly spelled-out default must address the same
    artifact, and a changed default must invalidate.  Used by the scenario
    registry (grid-point keys) and the policy-table cache (sweep-parameter
    digests) so the two invalidation rules cannot drift.
    """
    return {
        name: parameter.default
        for name, parameter in inspect.signature(fn).parameters.items()
        if parameter.default is not inspect.Parameter.empty and name not in exclude
    }


def quarantine_file(root: Path, path: Path) -> Optional[Path]:
    """Move an untrusted artifact into ``root/quarantine/`` (never delete it).

    The one corruption-handling convention every fingerprint-keyed store
    follows (:class:`~repro.runner.cache.ResultCache` entries, cached
    policy tables, serving-registry artifacts): evidence of a torn write or
    a stale schema is preserved for :mod:`repro.diagnostics` triage instead
    of being silently unlinked.  Returns the destination, or ``None`` when
    a racing reader already moved the file.
    """
    destination = Path(root) / "quarantine" / Path(path).name
    try:
        destination.parent.mkdir(parents=True, exist_ok=True)
        os.replace(path, destination)
    except OSError:  # pragma: no cover - racing reader already moved it
        return None
    return destination


def atomic_write_text(path: Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically (last writer wins).

    The content lands in a process-unique scratch file first and is moved
    into place with :func:`os.replace`, so concurrent writers racing on a
    shared cache directory each leave a complete file — never a torn one —
    and a failed write leaves no scratch debris behind.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    scratch = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        scratch.write_text(text, encoding="utf-8")
        os.replace(scratch, path)
    except BaseException:
        scratch.unlink(missing_ok=True)
        raise
    return path
