"""Liveness and readiness probes for the policy server.

Two distinct questions, per the usual orchestration contract:

* ``/healthz`` — *is the process alive?*  Always ``ok`` while the event
  loop can answer at all; a hung or dead server simply fails to respond,
  which is the signal.
* ``/readyz`` — *should this instance receive traffic?*  Ready means the
  degradation ladder has a first rung (at least one published table, or a
  live-plannable config) **and** admission control has headroom (pending
  requests below the shed threshold).  A server that would shed or
  safe-default everything it receives reports 503 so a load balancer can
  prefer a healthier peer — while still answering anything that arrives.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["healthz_payload", "readyz_payload"]


def healthz_payload(uptime_s: float) -> dict:
    """The liveness body: alive, and for how long."""
    return {"status": "ok", "uptime_s": round(uptime_s, 3)}


def readyz_payload(
    *,
    tables: int,
    configs: int,
    pending: int,
    max_pending: int,
    breaker_states: Optional[dict[str, str]] = None,
) -> tuple[bool, dict]:
    """The readiness verdict and body.

    Returns ``(ready, payload)``; the transport maps ``ready`` to 200/503.
    """
    reasons = []
    if tables == 0 and configs == 0:
        reasons.append("no published tables and no live-plannable configs")
    if pending >= max_pending:
        reasons.append(f"admission control saturated ({pending}/{max_pending})")
    payload = {
        "status": "ready" if not reasons else "unready",
        "tables": tables,
        "configs": configs,
        "pending": pending,
        "max_pending": max_pending,
    }
    if breaker_states:
        payload["breakers"] = dict(sorted(breaker_states.items()))
    if reasons:
        payload["reasons"] = reasons
    return (not reasons, payload)
