"""Versioned, content-addressed registry of servable policy tables.

The offline half of §3.3 produces :class:`~repro.api.policy.PolicyTable`
artifacts keyed by :meth:`~repro.api.config.SenderConfig.fingerprint`; this
module is the online half's source of truth for *which* table answers a
fingerprint right now:

* **Content addressing** — a published table lives at
  ``tables/<fingerprint>/<digest>.json`` where ``digest`` is the sha256 of
  the file's bytes.  Publishing the same table twice is idempotent;
  publishing a changed table adds a *new* version file next to the old one.
* **Versioning** — the ``CURRENT`` pointer file names the served digest.
  It is swapped with an atomic rename, so two server instances (or a
  publisher racing a reader) sharing one registry directory always observe
  either the old complete version or the new complete one, never a tear.
* **Load-time integrity validation** — on every (re)load the file's bytes
  are re-digested and checked against the content address, the payload's
  schema version and fingerprint are checked against the request, and any
  failure quarantines the file (``quarantine/``, the
  :class:`~repro.runner.cache.ResultCache` convention) and reads as a miss:
  a corrupt table is **never served**.
* **Hot reload** — lookups are answered from an in-memory cache that
  revalidates the ``CURRENT`` pointer on every call, so publishing a new
  version takes effect without restarting the server, and requests already
  holding the old table object finish on it undisturbed.
"""

from __future__ import annotations

import hashlib
import json
import threading
from pathlib import Path
from typing import Optional

from repro._persist import atomic_write_text, quarantine_file
from repro.api.policy import TABLE_SCHEMA_VERSION, PolicyTable
from repro.errors import TableIntegrityError

__all__ = ["PolicyTableRegistry", "content_digest"]

#: Hex digits of the sha256 content address in version filenames.
DIGEST_LENGTH = 16


def content_digest(data: bytes) -> str:
    """The content address of one serialized table artifact."""
    return hashlib.sha256(data).hexdigest()[:DIGEST_LENGTH]


class PolicyTableRegistry:
    """Disk-backed map from config fingerprint to the served policy table.

    Parameters
    ----------
    root:
        Registry directory (created lazily on first publish).  Layout:
        ``tables/<fingerprint>/<digest>.json`` version files,
        ``tables/<fingerprint>/CURRENT`` pointer, ``quarantine/`` for
        artifacts that failed validation.

    Thread-safe: lookups and publishes may race freely; the in-memory
    cache holds immutable ``(digest, table)`` pairs swapped under a lock.
    Counters (``loads``, ``corrupt``) accumulate on the instance and feed
    the serving layer's ``table_corrupt`` counter and readiness probe.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()
        #: fingerprint -> (digest, PolicyTable) for the served version.
        self._loaded: dict[str, tuple[str, PolicyTable]] = {}
        #: Artifacts read from disk (cold loads and hot reloads).
        self.loads = 0
        #: Artifacts that failed validation and were quarantined.
        self.corrupt = 0

    # ---------------------------------------------------------------- layout

    def _table_dir(self, fingerprint: str) -> Path:
        return self.root / "tables" / fingerprint

    def _current_path(self, fingerprint: str) -> Path:
        return self._table_dir(fingerprint) / "CURRENT"

    # --------------------------------------------------------------- publish

    def publish(self, table: PolicyTable) -> Path:
        """Store ``table`` as a new version and point ``CURRENT`` at it.

        The table must carry its owning config's fingerprint (every table
        built by :func:`~repro.api.policy.precompute_policy_table` does).
        Returns the version file's path.  Safe against concurrent
        publishers: both version writes and the pointer swap are atomic
        renames, so the loser of a race leaves a complete, valid registry.
        """
        if not table.fingerprint:
            raise TableIntegrityError(
                "cannot publish a policy table without a config fingerprint; "
                "precompute it via precompute_policy_table(config)"
            )
        text = json.dumps(table.to_payload(), sort_keys=True, indent=1) + "\n"
        digest = content_digest(text.encode("utf-8"))
        version = self._table_dir(table.fingerprint) / f"{digest}.json"
        if not version.exists():
            atomic_write_text(version, text)
        atomic_write_text(self._current_path(table.fingerprint), digest + "\n")
        return version

    def versions(self, fingerprint: str) -> list[str]:
        """Every published version digest for ``fingerprint``, sorted."""
        table_dir = self._table_dir(fingerprint)
        if not table_dir.is_dir():
            return []
        return sorted(path.stem for path in table_dir.glob("*.json"))

    def current_digest(self, fingerprint: str) -> Optional[str]:
        """The digest ``CURRENT`` points at, or ``None`` when unpublished."""
        try:
            value = self._current_path(fingerprint).read_text(encoding="utf-8").strip()
        except OSError:
            return None
        return value or None

    def fingerprints(self) -> list[str]:
        """Every fingerprint with at least one published version."""
        tables = self.root / "tables"
        if not tables.is_dir():
            return []
        return sorted(path.name for path in tables.iterdir() if path.is_dir())

    # ---------------------------------------------------------------- lookup

    def lookup(self, fingerprint: str) -> Optional[PolicyTable]:
        """The currently served table for ``fingerprint``, or ``None``.

        Revalidates the ``CURRENT`` pointer on every call (hot reload is
        automatic), loads and integrity-checks the version file when the
        pointer moved, and returns the cached immutable table otherwise.
        A file that fails validation is quarantined and the lookup misses —
        the caller falls through to the live-planner tier.
        """
        digest = self.current_digest(fingerprint)
        if digest is None:
            return None
        with self._lock:
            cached = self._loaded.get(fingerprint)
            if cached is not None and cached[0] == digest:
                return cached[1]
        table = self._load_version(fingerprint, digest)
        if table is None:
            return None
        with self._lock:
            self._loaded[fingerprint] = (digest, table)
        return table

    def reload(self) -> int:
        """Drop the in-memory cache; the next lookups re-read from disk.

        Returns the number of cached tables dropped.  In-flight requests
        holding a table object keep using it — the swap only affects which
        object *future* lookups receive.
        """
        with self._lock:
            dropped = len(self._loaded)
            self._loaded.clear()
        return dropped

    # ------------------------------------------------------------ validation

    def _load_version(self, fingerprint: str, digest: str) -> Optional[PolicyTable]:
        path = self._table_dir(fingerprint) / f"{digest}.json"
        try:
            table = self._validate(path, fingerprint, digest)
        except OSError:
            # Dangling CURRENT (version pruned or racing publisher) or an
            # unreadable file: a miss, not corruption.
            return None
        except TableIntegrityError:
            self.corrupt += 1
            quarantine_file(self.root, path)
            return None
        self.loads += 1
        return table

    def _validate(self, path: Path, fingerprint: str, digest: str) -> PolicyTable:
        """Load one version file, raising :class:`TableIntegrityError` on
        any mismatch between bytes, content address, schema, and request."""
        data = path.read_bytes()
        actual = content_digest(data)
        if actual != digest:
            raise TableIntegrityError(
                f"policy table {path.name} content digests to {actual}, not "
                f"its address {digest} — torn write or tampering"
            )
        try:
            payload = json.loads(data.decode("utf-8"))
        except ValueError as error:
            raise TableIntegrityError(f"policy table {path.name}: {error}") from error
        if not isinstance(payload, dict) or payload.get("schema") != TABLE_SCHEMA_VERSION:
            raise TableIntegrityError(
                f"policy table {path.name} has schema "
                f"{payload.get('schema') if isinstance(payload, dict) else payload!r}, "
                f"this build serves version {TABLE_SCHEMA_VERSION}"
            )
        if payload.get("fingerprint") != fingerprint:
            raise TableIntegrityError(
                f"policy table {path.name} was computed for fingerprint "
                f"{payload.get('fingerprint')!r}, not {fingerprint!r}"
            )
        try:
            # learn=False: a served table is immutable — runtime misses are
            # the fallback tiers' business, not the artifact's.
            return PolicyTable.from_payload(payload, learn=False)
        except Exception as error:  # noqa: BLE001 - any malformed payload
            raise TableIntegrityError(
                f"policy table {path.name} failed to deserialize: {error}"
            ) from error
